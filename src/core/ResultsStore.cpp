//===- core/ResultsStore.cpp - Result & checkpoint files (§3.6) ----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/ResultsStore.h"

#include "parmonc/fault/FaultPlan.h"
#include "parmonc/mpsim/Serialize.h"
#include "parmonc/obs/Stopwatch.h"
#include "parmonc/support/Checksum.h"
#include "parmonc/support/Text.h"

#include <algorithm>
#include <filesystem>

namespace parmonc {

std::string MomentSnapshot::toFileContents() const {
  std::string Text;
  Text += "# PARMONC moment snapshot: raw sums, full precision\n";
  Text += "seqnum " + std::to_string(SequenceNumber) + "\n";
  Text += "shape " + std::to_string(Moments.rows()) + " " +
          std::to_string(Moments.columns()) + "\n";
  Text += "volume " + std::to_string(Moments.sampleVolume()) + "\n";
  Text += "compute_seconds " + formatScientific(ComputeSeconds) + "\n";
  Text += "sums";
  for (double Sum : Moments.valueSums())
    Text += " " + formatScientific(Sum);
  Text += "\nsquares";
  for (double Square : Moments.squareSums())
    Text += " " + formatScientific(Square);
  Text += "\n";
  for (const HistogramEstimator &Histogram : Histograms) {
    Text += "histogram " + formatScientific(Histogram.low()) + " " +
            formatScientific(Histogram.high()) + " " +
            std::to_string(Histogram.binCount()) + " " +
            std::to_string(Histogram.underflowCount()) + " " +
            std::to_string(Histogram.overflowCount());
    for (size_t Index = 0; Index < Histogram.binCount(); ++Index)
      Text += " " + std::to_string(Histogram.countOf(Index));
    Text += "\n";
  }
  return Text;
}

/// Parses one "histogram <low> <high> <bins> <under> <over> <counts...>"
/// line back into an estimator.
static Result<HistogramEstimator> parseHistogramLine(
    const std::vector<std::string_view> &Fields) {
  if (Fields.size() < 6)
    return parseError("malformed histogram line in snapshot");
  Result<double> Low = parseDouble(Fields[1]);
  Result<double> High = parseDouble(Fields[2]);
  Result<uint64_t> Bins = parseUInt64(Fields[3]);
  Result<int64_t> Under = parseInt64(Fields[4]);
  Result<int64_t> Over = parseInt64(Fields[5]);
  if (!Low || !High || !Bins || !Under || !Over)
    return parseError("malformed histogram header in snapshot");
  if (Low.value() >= High.value() || Bins.value() == 0 ||
      Under.value() < 0 || Over.value() < 0)
    return parseError("invalid histogram geometry in snapshot");
  if (Fields.size() != 6 + Bins.value())
    return parseError("histogram count list does not match bin count");
  // Rebuild via the histogram's own text format so all invariants are
  // enforced in one place.
  std::string Text = "range " + std::string(Fields[1]) + " " +
                     std::string(Fields[2]) + "\n" + "bins " +
                     std::to_string(Bins.value()) + "\n" + "underflow " +
                     std::to_string(Under.value()) + "\n" + "overflow " +
                     std::to_string(Over.value()) + "\ncounts";
  for (size_t Index = 6; Index < Fields.size(); ++Index)
    Text += " " + std::string(Fields[Index]);
  Text += "\n";
  return HistogramEstimator::fromFileContents(Text);
}

Result<MomentSnapshot> MomentSnapshot::fromFileContents(
    std::string_view Contents) {
  uint64_t SequenceNumber = 0;
  size_t Rows = 0, Columns = 0;
  int64_t Volume = -1;
  double ComputeSeconds = 0.0;
  std::vector<double> Sums, Squares;
  std::vector<HistogramEstimator> PendingHistograms;
  bool HaveShape = false, HaveVolume = false, HaveSums = false,
       HaveSquares = false;

  for (std::string_view Line : splitChar(Contents, '\n')) {
    std::string_view Stripped = trim(Line);
    if (Stripped.empty() || Stripped[0] == '#')
      continue;
    auto Fields = splitWhitespace(Stripped);
    const std::string_view Key = Fields[0];
    if (Key == "seqnum" && Fields.size() == 2) {
      Result<uint64_t> Value = parseUInt64(Fields[1]);
      if (!Value)
        return Value.status();
      SequenceNumber = Value.value();
    } else if (Key == "shape" && Fields.size() == 3) {
      Result<uint64_t> RowsValue = parseUInt64(Fields[1]);
      Result<uint64_t> ColumnsValue = parseUInt64(Fields[2]);
      if (!RowsValue || !ColumnsValue)
        return parseError("bad shape line in snapshot");
      Rows = RowsValue.value();
      Columns = ColumnsValue.value();
      HaveShape = true;
    } else if (Key == "volume" && Fields.size() == 2) {
      Result<int64_t> Value = parseInt64(Fields[1]);
      if (!Value)
        return Value.status();
      Volume = Value.value();
      HaveVolume = true;
    } else if (Key == "compute_seconds" && Fields.size() == 2) {
      Result<double> Value = parseDouble(Fields[1]);
      if (!Value)
        return Value.status();
      ComputeSeconds = Value.value();
    } else if (Key == "sums") {
      for (size_t Index = 1; Index < Fields.size(); ++Index) {
        Result<double> Value = parseDouble(Fields[Index]);
        if (!Value)
          return Value.status();
        Sums.push_back(Value.value());
      }
      HaveSums = true;
    } else if (Key == "histogram") {
      Result<HistogramEstimator> Histogram = parseHistogramLine(Fields);
      if (!Histogram)
        return Histogram.status();
      // Collected below once the snapshot object exists.
      PendingHistograms.push_back(std::move(Histogram).value());
    } else if (Key == "squares") {
      for (size_t Index = 1; Index < Fields.size(); ++Index) {
        Result<double> Value = parseDouble(Fields[Index]);
        if (!Value)
          return Value.status();
        Squares.push_back(Value.value());
      }
      HaveSquares = true;
    } else {
      return parseError("unknown snapshot directive '" + std::string(Key) +
                        "'");
    }
  }

  if (!HaveShape || !HaveVolume || !HaveSums || !HaveSquares)
    return parseError("snapshot file is missing required entries");

  Result<EstimatorMatrix> Moments = EstimatorMatrix::fromRawSums(
      Rows, Columns, std::move(Sums), std::move(Squares), Volume);
  if (!Moments)
    return Moments.status();

  MomentSnapshot Snapshot;
  Snapshot.SequenceNumber = SequenceNumber;
  Snapshot.ComputeSeconds = ComputeSeconds;
  Snapshot.Moments = std::move(Moments).value();
  Snapshot.Histograms = std::move(PendingHistograms);
  return Snapshot;
}

std::vector<uint8_t> MomentSnapshot::toBytes() const {
  ByteWriter Writer;
  Writer.writeU64(SequenceNumber);
  Writer.writeU64(Moments.rows());
  Writer.writeU64(Moments.columns());
  Writer.writeI64(Moments.sampleVolume());
  Writer.writeDouble(ComputeSeconds);
  Writer.writeDoubleVector(Moments.valueSums());
  Writer.writeDoubleVector(Moments.squareSums());
  Writer.writeU64(Histograms.size());
  for (const HistogramEstimator &Histogram : Histograms)
    Writer.writeString(Histogram.toFileContents());
  return Writer.takeBytes();
}

Result<MomentSnapshot> MomentSnapshot::fromBytes(
    const std::vector<uint8_t> &Bytes) {
  ByteReader Reader(Bytes);
  Result<uint64_t> SequenceNumber = Reader.readU64();
  Result<uint64_t> Rows = Reader.readU64();
  Result<uint64_t> Columns = Reader.readU64();
  Result<int64_t> Volume = Reader.readI64();
  Result<double> ComputeSeconds = Reader.readDouble();
  if (!SequenceNumber || !Rows || !Columns || !Volume || !ComputeSeconds)
    return parseError("truncated snapshot message header");
  Result<std::vector<double>> Sums = Reader.readDoubleVector();
  if (!Sums)
    return Sums.status();
  Result<std::vector<double>> Squares = Reader.readDoubleVector();
  if (!Squares)
    return Squares.status();
  Result<uint64_t> HistogramCount = Reader.readU64();
  if (!HistogramCount)
    return HistogramCount.status();
  std::vector<HistogramEstimator> Histograms;
  for (uint64_t Index = 0; Index < HistogramCount.value(); ++Index) {
    Result<std::string> Text = Reader.readString();
    if (!Text)
      return Text.status();
    Result<HistogramEstimator> Histogram =
        HistogramEstimator::fromFileContents(Text.value());
    if (!Histogram)
      return Histogram.status();
    Histograms.push_back(std::move(Histogram).value());
  }
  if (!Reader.atEnd())
    return parseError("trailing bytes in snapshot message");

  Result<EstimatorMatrix> Moments = EstimatorMatrix::fromRawSums(
      Rows.value(), Columns.value(), std::move(Sums).value(),
      std::move(Squares).value(), Volume.value());
  if (!Moments)
    return Moments.status();

  MomentSnapshot Snapshot;
  Snapshot.SequenceNumber = SequenceNumber.value();
  Snapshot.ComputeSeconds = ComputeSeconds.value();
  Snapshot.Moments = std::move(Moments).value();
  Snapshot.Histograms = std::move(Histograms);
  return Snapshot;
}

Status MomentSnapshot::mergeFrom(const MomentSnapshot &Other) {
  if (Status MergedOk = Moments.merge(Other.Moments); !MergedOk)
    return MergedOk;
  ComputeSeconds += Other.ComputeSeconds;
  if (Histograms.size() != Other.Histograms.size())
    return failedPrecondition("snapshot histogram count mismatch");
  for (size_t Index = 0; Index < Histograms.size(); ++Index)
    if (Status HistogramOk = Histograms[Index].merge(Other.Histograms[Index]);
        !HistogramOk)
      return HistogramOk;
  return Status::ok();
}

ResultsStore::ResultsStore(std::string WorkDir)
    : WorkDir(std::move(WorkDir)) {
  assert(!this->WorkDir.empty() && "work directory must not be empty");
}

Status ResultsStore::prepareDirectories() const {
  if (Status Created = createDirectories(resultsDir()); !Created)
    return Created;
  return createDirectories(subtotalsDir());
}

std::string ResultsStore::dataDir() const {
  return WorkDir + "/parmonc_data";
}
std::string ResultsStore::resultsDir() const {
  return dataDir() + "/results";
}
std::string ResultsStore::subtotalsDir() const {
  return dataDir() + "/subtotals";
}
std::string ResultsStore::checkpointDir() const {
  return dataDir() + "/ckpt";
}
std::string ResultsStore::checkpointPath() const {
  return dataDir() + "/checkpoint.dat";
}
std::string ResultsStore::basePath() const { return dataDir() + "/base.dat"; }
std::string ResultsStore::subtotalPath(int Rank) const {
  return subtotalsDir() + "/rank_" + std::to_string(Rank) + ".dat";
}
std::string ResultsStore::meansPath() const {
  return resultsDir() + "/func.dat";
}
std::string ResultsStore::confidencePath() const {
  return resultsDir() + "/func_ci.dat";
}
std::string ResultsStore::logPath() const {
  return resultsDir() + "/func_log.dat";
}
std::string ResultsStore::experimentLogPath() const {
  return dataDir() + "/parmonc_exp.dat";
}
std::string ResultsStore::genparamPath() const {
  return WorkDir + "/parmonc_genparam.dat";
}
std::string ResultsStore::metricsPath() const {
  return resultsDir() + "/metrics.dat";
}
std::string ResultsStore::tracePath() const {
  return resultsDir() + "/trace.json";
}
std::string ResultsStore::backupPath(const std::string &Path) {
  return Path + ".prev";
}

void ResultsStore::attachObservers(obs::MetricsRegistry *Metrics,
                                   obs::TraceWriter *Trace,
                                   const Clock *TimeSource) {
  this->Metrics = Metrics;
  this->Trace = Trace;
  this->Time = TimeSource;
}

void ResultsStore::setFaultInjector(fault::FaultInjector *Injector) {
  this->Injector = Injector;
}

Status ResultsStore::writeSnapshot(const std::string &Path,
                                   const MomentSnapshot &Snapshot) const {
  const int64_t Start = Time ? Time->nowNanos() : 0;
  std::string Contents = sealFileContents(Snapshot.toFileContents());
  if (Injector)
    if (std::optional<std::string> Damaged =
            // mclint: allow(R8): fault-injection seam; the injector is
            // plain data here, its raw-sync lives in the fault harness.
            Injector->corruptWrite(Path, Contents))
      Contents = std::move(*Damaged);
  // Rotate the intact previous generation aside before the replace, so a
  // corrupted new file (crash, bad disk, injected fault) still leaves a
  // loadable checkpoint behind.
  if (fileExists(Path)) {
    std::error_code RotateError;
    std::filesystem::rename(Path, backupPath(Path), RotateError);
    // Best effort: an unrotatable backup must not block the save itself.
    if (!RotateError) {
      // Persist the rotation before the replace lands: after a power cut
      // mid-save the .prev generation must actually be on disk, or the
      // fallback ladder has nothing to stand on.
      const std::string Parent =
          std::filesystem::path(Path).parent_path().string();
      (void)fsyncDirectory(Parent.empty() ? "." : Parent);
    }
  }
  Status Written = writeFileAtomic(Path, Contents);
  if (Metrics && Written) {
    Metrics->counter("store.snapshots_written").add();
    Metrics->counter("store.snapshot_bytes_written")
        .add(int64_t(Contents.size()));
    if (Time)
      Metrics->latency("store.snapshot_write")
          .recordNanos(Time->nowNanos() - Start);
  }
  if (Trace && Time)
    Trace->completeSpan("store.snapshot_write", 0, Start, Time->nowNanos());
  return Written;
}

Result<MomentSnapshot> ResultsStore::readSnapshot(
    const std::string &Path) const {
  const int64_t Start = Time ? Time->nowNanos() : 0;
  Result<std::string> Contents = readFileToString(Path);
  if (!Contents)
    return Contents.status();
  std::string Body = std::move(Contents).value();
  if (hasFileSeal(Body)) {
    Result<std::string> Unsealed = unsealFileContents(Path, Body);
    if (!Unsealed)
      return Unsealed.status();
    Body = std::move(Unsealed).value();
  }
  Result<MomentSnapshot> Parsed = MomentSnapshot::fromFileContents(Body);
  if (Parsed && Metrics) {
    Metrics->counter("store.snapshots_read").add();
    if (Time)
      Metrics->latency("store.snapshot_read")
          .recordNanos(Time->nowNanos() - Start);
  }
  if (Trace && Time)
    Trace->completeSpan("store.snapshot_read", 0, Start, Time->nowNanos());
  return Parsed;
}

Result<ResultsStore::RecoveredSnapshot>
ResultsStore::readSnapshotWithFallback(const std::string &Path) const {
  Result<MomentSnapshot> Primary = readSnapshot(Path);
  if (Primary)
    return RecoveredSnapshot{std::move(Primary).value(), false};
  const std::string Backup = backupPath(Path);
  if (fileExists(Backup)) {
    Result<MomentSnapshot> Previous = readSnapshot(Backup);
    if (Previous) {
      if (Metrics)
        Metrics->counter("store.snapshot_fallbacks").add();
      return RecoveredSnapshot{std::move(Previous).value(), true};
    }
  }
  // Both generations unreadable: the primary's error is the useful one.
  return Primary.status();
}

Status ResultsStore::writeResults(const EstimatorMatrix &Merged,
                                  const RunLogInfo &Log,
                                  double ErrorMultiplier) const {
  if (Merged.sampleVolume() <= 0)
    return failedPrecondition("cannot write results with zero volume");

  std::vector<double> Means, AbsoluteErrors, RelativeErrors, Variances;
  Merged.computeMatrices(&Means, &AbsoluteErrors, &RelativeErrors,
                         &Variances, ErrorMultiplier);

  // func.dat: one row of the mean matrix per line.
  std::string MeansText;
  for (size_t Row = 0; Row < Merged.rows(); ++Row) {
    for (size_t Column = 0; Column < Merged.columns(); ++Column) {
      if (Column > 0)
        MeansText += " ";
      MeansText += formatScientific(Means[Row * Merged.columns() + Column]);
    }
    MeansText += "\n";
  }
  if (Status Written =
          writeFileAtomic(meansPath(), sealFileContents(MeansText));
      !Written)
    return Written;

  // func_ci.dat: one entry per line with all four statistics.
  std::string ConfidenceText =
      "# row col mean abs_error rel_error_percent variance\n";
  for (size_t Row = 0; Row < Merged.rows(); ++Row) {
    for (size_t Column = 0; Column < Merged.columns(); ++Column) {
      const size_t Index = Row * Merged.columns() + Column;
      ConfidenceText += std::to_string(Row + 1) + " " +
                        std::to_string(Column + 1) + " " +
                        formatScientific(Means[Index]) + " " +
                        formatScientific(AbsoluteErrors[Index]) + " " +
                        formatScientific(RelativeErrors[Index]) + " " +
                        formatScientific(Variances[Index]) + "\n";
    }
  }
  if (Status Written = writeFileAtomic(confidencePath(),
                                       sealFileContents(ConfidenceText));
      !Written)
    return Written;

  // func_log.dat: the run summary of §3.6.
  std::string LogText;
  LogText += "total_sample_volume " + std::to_string(Log.TotalSampleVolume) +
             "\n";
  LogText += "new_sample_volume " + std::to_string(Log.NewSampleVolume) +
             "\n";
  LogText += "mean_time_per_realization_seconds " +
             formatScientific(Log.MeanRealizationSeconds, 6) + "\n";
  LogText += "elapsed_seconds " + formatScientific(Log.ElapsedSeconds, 6) +
             "\n";
  LogText += "max_absolute_error " +
             formatScientific(Log.MaxAbsoluteError, 6) + "\n";
  LogText += "max_relative_error_percent " +
             formatScientific(Log.MaxRelativeErrorPercent, 6) + "\n";
  LogText += "max_variance " + formatScientific(Log.MaxVariance, 6) + "\n";
  LogText += "processors " + std::to_string(Log.ProcessorCount) + "\n";
  LogText += "experiment " + std::to_string(Log.SequenceNumber) + "\n";
  LogText += std::string("resumed ") + (Log.Resumed ? "1" : "0") + "\n";
  LogText += std::string("degraded ") + (Log.Degraded ? "1" : "0") + "\n";
  LogText += "dead_workers " + std::to_string(Log.DeadWorkerCount) + "\n";
  LogText += std::string("resumed_from_backup ") +
             (Log.ResumedFromBackup ? "1" : "0") + "\n";
  return writeFileAtomic(logPath(), sealFileContents(LogText));
}

/// Eight lowercase hex digits, the same rendering the file seals use.
static std::string formatCrc32(uint32_t Value) {
  static const char Digits[] = "0123456789abcdef";
  std::string Text(8, '0');
  for (int Index = 7; Index >= 0; --Index) {
    Text[Index] = Digits[Value & 0xF];
    Value >>= 4;
  }
  return Text;
}

/// Parses exactly eight lowercase/uppercase hex digits.
static Result<uint32_t> parseCrc32(std::string_view Hex) {
  if (Hex.size() != 8)
    return parseError("CRC suffix must be eight hex digits");
  uint32_t Value = 0;
  for (char Digit : Hex) {
    Value <<= 4;
    if (Digit >= '0' && Digit <= '9')
      Value |= uint32_t(Digit - '0');
    else if (Digit >= 'a' && Digit <= 'f')
      Value |= uint32_t(Digit - 'a' + 10);
    else if (Digit >= 'A' && Digit <= 'F')
      Value |= uint32_t(Digit - 'A' + 10);
    else
      return parseError("CRC suffix holds a non-hex digit");
  }
  return Value;
}

Status ResultsStore::appendExperimentLog(const RunLogInfo &Log) const {
  std::string Line = "experiment " + std::to_string(Log.SequenceNumber) +
                     " resumed " + (Log.Resumed ? "1" : "0") +
                     " processors " + std::to_string(Log.ProcessorCount) +
                     " start_volume " +
                     std::to_string(Log.TotalSampleVolume);
  // The backend field is appended only when known, so registries written
  // by older engines and new ones interleave in one file.
  if (!Log.RngBackend.empty())
    Line += " rng " + Log.RngBackend;
  // Per-line CRC over everything before the suffix: the whole-file seal
  // does not fit an append-only registry, but a torn or rotted line must
  // still be detectable on load.
  Line += " crc " + formatCrc32(crc32(Line));
  // Durable O_APPEND write: the registry accumulates one line per started
  // experiment across the directory's lifetime, and a crash mid-append can
  // tear at most the line being written — which the CRC then catches.
  return appendLineDurable(experimentLogPath(), Line + "\n");
}

Result<ResultsStore::ExperimentLogContents>
ResultsStore::readExperimentLog() const {
  ExperimentLogContents Registry;
  if (!fileExists(experimentLogPath()))
    return Registry; // no experiments started yet
  Result<std::string> Contents = readFileToString(experimentLogPath());
  if (!Contents)
    return Contents.status();
  int LineNumber = 0;
  for (std::string_view Line : splitChar(Contents.value(), '\n')) {
    ++LineNumber;
    std::string_view Stripped = trim(Line);
    if (Stripped.empty() || Stripped[0] == '#')
      continue;
    // Verify the CRC suffix when present (pre-CRC-era lines have none).
    std::string_view Body = Stripped;
    const size_t CrcAt = Stripped.rfind(" crc ");
    if (CrcAt != std::string_view::npos) {
      Result<uint32_t> Declared = parseCrc32(trim(Stripped.substr(CrcAt + 5)));
      Body = Stripped.substr(0, CrcAt);
      if (!Declared || Declared.value() != crc32(Body)) {
        Registry.SkippedLines.push_back(LineNumber);
        continue;
      }
    }
    auto Fields = splitWhitespace(Body);
    ExperimentLogEntry Entry;
    bool Parsed = false;
    // Eight fields is the pre-backend-era line; ten adds "rng <token>".
    const bool Shape =
        (Fields.size() == 8 ||
         (Fields.size() == 10 && Fields[8] == "rng")) &&
        Fields[0] == "experiment" && Fields[2] == "resumed" &&
        Fields[4] == "processors" && Fields[6] == "start_volume";
    if (Shape) {
      Result<uint64_t> Sequence = parseUInt64(Fields[1]);
      Result<int64_t> Resumed = parseInt64(Fields[3]);
      Result<int64_t> Processors = parseInt64(Fields[5]);
      Result<int64_t> Volume = parseInt64(Fields[7]);
      if (Sequence && Resumed && Processors && Volume) {
        Entry.SequenceNumber = Sequence.value();
        Entry.Resumed = Resumed.value() != 0;
        Entry.ProcessorCount = int(Processors.value());
        Entry.StartVolume = Volume.value();
        if (Fields.size() == 10)
          Entry.RngBackend = std::string(Fields[9]);
        Parsed = true;
      }
    }
    if (Parsed)
      Registry.Entries.push_back(Entry);
    else
      Registry.SkippedLines.push_back(LineNumber);
  }
  return Registry;
}

Result<std::vector<double>> ResultsStore::readMeans(size_t Rows,
                                                    size_t Columns) const {
  Result<std::string> Contents = readFileToString(meansPath());
  if (!Contents)
    return Contents.status();
  std::string Body = std::move(Contents).value();
  if (hasFileSeal(Body)) {
    Result<std::string> Unsealed = unsealFileContents(meansPath(), Body);
    if (!Unsealed)
      return Unsealed.status();
    Body = std::move(Unsealed).value();
  }
  std::vector<double> Means;
  Means.reserve(Rows * Columns);
  for (std::string_view Line : splitChar(Body, '\n')) {
    std::string_view Stripped = trim(Line);
    if (Stripped.empty() || Stripped[0] == '#')
      continue;
    for (std::string_view Field : splitWhitespace(Stripped)) {
      Result<double> Value = parseDouble(Field);
      if (!Value)
        return Value.status();
      Means.push_back(Value.value());
    }
  }
  if (Means.size() != Rows * Columns)
    return parseError("'" + meansPath() + "' holds " +
                      std::to_string(Means.size()) + " entries, expected " +
                      std::to_string(Rows * Columns));
  return Means;
}

std::vector<std::pair<int, std::string>>
ResultsStore::listSubtotalFiles() const {
  std::vector<std::pair<int, std::string>> Files;
  std::error_code Error;
  std::filesystem::directory_iterator Directory(subtotalsDir(), Error);
  if (Error)
    return Files;
  for (const auto &Entry : Directory) {
    const std::string Name = Entry.path().filename().string();
    if (!startsWith(Name, "rank_") || Entry.path().extension() != ".dat")
      continue;
    Result<int64_t> Rank =
        parseInt64(Name.substr(5, Name.size() - 5 - 4));
    if (!Rank)
      continue;
    Files.emplace_back(int(Rank.value()), Entry.path().string());
  }
  std::sort(Files.begin(), Files.end());
  return Files;
}

Status ResultsStore::clearPreviousRun() const {
  std::error_code Error;
  for (const std::string &Path :
       {checkpointPath(), basePath(), meansPath(), confidencePath(),
        logPath(), metricsPath(), tracePath()}) {
    std::filesystem::remove(Path, Error); // missing files are fine
    std::filesystem::remove(backupPath(Path), Error);
  }
  for (const auto &[Rank, Path] : listSubtotalFiles()) {
    std::filesystem::remove(Path, Error);
    std::filesystem::remove(backupPath(Path), Error);
  }
  // The sharded checkpoint tree (manifest + shards) belongs to the run
  // being discarded as well.
  std::filesystem::remove_all(checkpointDir(), Error);
  return Status::ok();
}

std::string histogramPath(const ResultsStore &Store, size_t Row,
                          size_t Column) {
  return Store.resultsDir() + "/hist_r" + std::to_string(Row + 1) + "_c" +
         std::to_string(Column + 1) + ".dat";
}

Result<MomentSnapshot> runManualAverage(const ResultsStore &Store,
                                        double ErrorMultiplier,
                                        std::vector<std::string> *RecoveredPaths) {
  // Start from the base (resumed) moments if present, else from scratch
  // with the shape of the first subtotal.
  const auto SubtotalFiles = Store.listSubtotalFiles();
  if (SubtotalFiles.empty() && !fileExists(Store.basePath()))
    return notFound("no base.dat and no subtotal files under " +
                    Store.subtotalsDir());

  MomentSnapshot Merged;
  bool HaveShape = false;
  if (fileExists(Store.basePath())) {
    Result<ResultsStore::RecoveredSnapshot> Base =
        Store.readSnapshotWithFallback(Store.basePath());
    if (!Base)
      return Base.status();
    if (Base.value().FromBackup && RecoveredPaths)
      RecoveredPaths->push_back(Store.basePath());
    Merged = std::move(Base).value().Snapshot;
    HaveShape = true;
  }

  for (const auto &[Rank, Path] : SubtotalFiles) {
    Result<ResultsStore::RecoveredSnapshot> Recovered =
        Store.readSnapshotWithFallback(Path);
    if (!Recovered)
      return Recovered.status();
    if (Recovered.value().FromBackup && RecoveredPaths)
      RecoveredPaths->push_back(Path);
    const MomentSnapshot &Part = Recovered.value().Snapshot;
    if (!HaveShape) {
      Merged.Moments =
          EstimatorMatrix(Part.Moments.rows(), Part.Moments.columns());
      Merged.SequenceNumber = Part.SequenceNumber;
      HaveShape = true;
    }
    if (Status MergedOk = Merged.Moments.merge(Part.Moments); !MergedOk)
      return MergedOk;
    if (Merged.Histograms.empty() && !Part.Histograms.empty() &&
        Merged.Moments.sampleVolume() == Part.Moments.sampleVolume())
      // First contribution defines the histogram set (no base file case).
      Merged.Histograms = Part.Histograms;
    else if (Part.Histograms.size() != Merged.Histograms.size())
      return failedPrecondition(
          "subtotal files disagree on histogram observables");
    else
      for (size_t Index = 0; Index < Merged.Histograms.size(); ++Index)
        if (Status HistogramOk =
                Merged.Histograms[Index].merge(Part.Histograms[Index]);
            !HistogramOk)
          return HistogramOk;
    Merged.ComputeSeconds += Part.ComputeSeconds;
    Merged.SequenceNumber = Part.SequenceNumber;
  }

  if (Merged.Moments.sampleVolume() <= 0)
    return failedPrecondition("manual average found zero sample volume");

  RunLogInfo Log;
  Log.TotalSampleVolume = Merged.Moments.sampleVolume();
  Log.NewSampleVolume = 0; // unknown after a crash; manaver reports totals
  Log.MeanRealizationSeconds =
      Merged.ComputeSeconds / double(Merged.Moments.sampleVolume());
  Log.SequenceNumber = Merged.SequenceNumber;
  Log.ProcessorCount = int(SubtotalFiles.size());
  const ErrorBounds Bounds = Merged.Moments.errorBounds(ErrorMultiplier);
  Log.MaxAbsoluteError = Bounds.MaxAbsoluteError;
  Log.MaxRelativeErrorPercent = Bounds.MaxRelativeError;
  Log.MaxVariance = Bounds.MaxVariance;

  if (Status Written =
          Store.writeResults(Merged.Moments, Log, ErrorMultiplier);
      !Written)
    return Written;
  if (Status Written = Store.writeSnapshot(Store.checkpointPath(), Merged);
      !Written)
    return Written;
  return Merged;
}

} // namespace parmonc
