//===- core/CApi.cpp - The paper's C calling convention -------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/CApi.h"

#include "parmonc/core/Runner.h"
#include "parmonc/rng/Lcg128.h"

#include <cstdio>
#include <cstdlib>
#include <thread> // mclint: allow(R8): hardware_concurrency query only

namespace parmonc {

namespace {

/// The stream rnd128() reads on this thread. Set by the engine around each
/// realization; null outside of one.
thread_local RandomSource *ThreadStream = nullptr;

/// Fallback stream for rnd128() outside a parmoncc run: the plain general
/// sequence, one instance per thread so standalone sequential programs
/// behave like the paper's sequential example.
Lcg128 &fallbackStream() {
  // mclint: allow(R6): the documented sequential-mode escape hatch —
  // one private stream per thread, never overlapping an engine run.
  thread_local Lcg128 Fallback;
  return Fallback;
}

int readEnvironmentInt(const char *Name, int Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  const long Parsed = std::strtol(Value, nullptr, 10);
  return Parsed >= 1 ? int(Parsed) : Default;
}

} // namespace

void setThreadRandomSource(RandomSource *Source) { ThreadStream = Source; }

} // namespace parmonc

extern "C" {

double rnd128(void) {
  using namespace parmonc;
  RandomSource *Stream = ThreadStream;
  return Stream ? Stream->nextUniform() : fallbackStream().nextUniform();
}

int parmoncc(parmonc_realization_fn realization, const int *nrow,
             const int *ncol, const long long *maxsv, const int *res,
             const int *seqnum, const int *perpass, const int *peraver) {
  using namespace parmonc;
  if (!realization || !nrow || !ncol || !maxsv || !res || !seqnum ||
      !perpass || !peraver) {
    std::fprintf(stderr, "parmoncc: null argument\n");
    return 1;
  }
  if (*nrow < 1 || *ncol < 1 || *maxsv < 1 || *perpass < 0 || *peraver < 0 ||
      *seqnum < 0) {
    std::fprintf(stderr, "parmoncc: argument out of range\n");
    return 1;
  }

  RunConfig Config;
  Config.Rows = size_t(*nrow);
  Config.Columns = size_t(*ncol);
  Config.MaxSampleVolume = *maxsv;
  Config.Resume = *res != 0;
  Config.SequenceNumber = uint64_t(*seqnum);
  // perpass/peraver are minutes in the paper's interface.
  Config.PassPeriodNanos = int64_t(*perpass) * 60'000'000'000;
  Config.AveragePeriodNanos = int64_t(*peraver) * 60'000'000'000;
  // mclint: allow(R8): read-only core-count query, no threads are created
  const unsigned HardwareThreads = std::thread::hardware_concurrency();
  Config.ProcessorCount = readEnvironmentInt(
      "PARMONC_NP", HardwareThreads > 0 ? int(HardwareThreads) : 1);
  if (const char *WorkDir = std::getenv("PARMONC_WORKDIR");
      WorkDir && *WorkDir)
    Config.WorkDir = WorkDir;

  // Bind the engine-provided stream to rnd128() for the duration of each
  // realization call.
  RealizationFn Wrapped = [realization](RandomSource &Source, double *Out) {
    setThreadRandomSource(&Source);
    realization(Out);
    setThreadRandomSource(nullptr);
  };

  Result<RunReport> Outcome = runSimulation(Wrapped, Config);
  if (!Outcome) {
    std::fprintf(stderr, "parmoncc: %s\n",
                 Outcome.status().toString().c_str());
    return 1;
  }
  return 0;
}

int parmoncf_(parmonc_realization_fn realization, const int *nrow,
              const int *ncol, const long long *maxsv, const int *res,
              const int *seqnum, const int *perpass, const int *peraver) {
  // The FORTRAN binding is the same engine behind a mangled symbol; the
  // by-reference convention already matches.
  return parmoncc(realization, nrow, ncol, maxsv, res, seqnum, perpass,
                  peraver);
}

double rnd128_(void) { return rnd128(); }

} // extern "C"
