//===- vr/VarianceReduction.cpp - Variance-reduction toolkit -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/vr/VarianceReduction.h"

#include "parmonc/stats/RunningStat.h"

#include <cmath>

namespace parmonc {

static VrEstimate finalize(const RunningStat &Stats) {
  VrEstimate Estimate;
  Estimate.SampleCount = Stats.count();
  Estimate.Mean = Stats.mean();
  Estimate.Variance = Stats.count() > 1 ? Stats.sampleVariance() : 0.0;
  Estimate.StandardError =
      std::sqrt(Estimate.Variance / double(Stats.count()));
  return Estimate;
}

VrEstimate estimatePlain(ScalarRealization Realization,
                         RandomSource &Source, int64_t Pairs) {
  assert(Pairs >= 1 && "need at least one pair");
  // Same budget as the antithetic estimator: average per *pair* of
  // independent realizations, so the variances compare like for like.
  RunningStat Stats;
  for (int64_t Pair = 0; Pair < Pairs; ++Pair) {
    const double First = Realization(Source);
    const double Second = Realization(Source);
    Stats.add(0.5 * (First + Second));
  }
  return finalize(Stats);
}

VrEstimate estimateAntithetic(ScalarRealization Realization,
                              RandomSource &Source, int64_t Pairs) {
  assert(Pairs >= 1 && "need at least one pair");
  RunningStat Stats;
  RecordingSource Recorder(Source);
  for (int64_t Pair = 0; Pair < Pairs; ++Pair) {
    Recorder.clear();
    const double Plain = Realization(Recorder);
    ReplaySource Mirrored(Recorder.recorded(), /*Mirror=*/true);
    const double Twin = Realization(Mirrored);
    assert(Mirrored.consumed() == Recorder.recorded().size() &&
           "antithetic twin consumed fewer numbers than the original");
    Stats.add(0.5 * (Plain + Twin));
  }
  return finalize(Stats);
}

VrEstimate estimateWithControlVariate(ControlledRealization Realization,
                                      RandomSource &Source,
                                      int64_t SampleCount,
                                      double ControlExpectation) {
  assert(SampleCount >= 2 && "need at least two samples");
  std::vector<ValueWithControl> Samples;
  Samples.reserve(size_t(SampleCount));
  RunningStat ValueStats, ControlStats;
  for (int64_t Index = 0; Index < SampleCount; ++Index) {
    const ValueWithControl Sample = Realization(Source);
    Samples.push_back(Sample);
    ValueStats.add(Sample.Value);
    ControlStats.add(Sample.Control);
  }

  // β* = Cov(Y, C) / Var(C); fall back to β = 0 for a degenerate control.
  double Covariance = 0.0;
  for (const ValueWithControl &Sample : Samples)
    Covariance += (Sample.Value - ValueStats.mean()) *
                  (Sample.Control - ControlStats.mean());
  Covariance /= double(SampleCount - 1);
  const double ControlVariance = ControlStats.sampleVariance();
  const double Beta =
      ControlVariance > 0.0 ? Covariance / ControlVariance : 0.0;

  RunningStat Adjusted;
  for (const ValueWithControl &Sample : Samples)
    Adjusted.add(Sample.Value -
                 Beta * (Sample.Control - ControlExpectation));
  return finalize(Adjusted);
}

VrEstimate estimateStratified(ScalarRealization Realization,
                              RandomSource &Source, int StrataCount,
                              int64_t SamplesPerStratum) {
  assert(StrataCount >= 1 && "need at least one stratum");
  assert(SamplesPerStratum >= 2 &&
         "need two samples per stratum to estimate its variance");

  // Proportional allocation: the estimator is the mean of stratum means;
  // its variance is (1/K²) Σ s_k²/n_k.
  double MeanOfStrata = 0.0;
  double VarianceOfEstimator = 0.0;
  for (int Stratum = 0; Stratum < StrataCount; ++Stratum) {
    RunningStat StratumStats;
    for (int64_t Index = 0; Index < SamplesPerStratum; ++Index) {
      StratifiedFirstDraw Confined(Source, Stratum, StrataCount);
      StratumStats.add(Realization(Confined));
    }
    MeanOfStrata += StratumStats.mean();
    VarianceOfEstimator +=
        StratumStats.sampleVariance() / double(SamplesPerStratum);
  }
  const double K = double(StrataCount);

  VrEstimate Estimate;
  Estimate.SampleCount = int64_t(StrataCount) * SamplesPerStratum;
  Estimate.Mean = MeanOfStrata / K;
  Estimate.StandardError = std::sqrt(VarianceOfEstimator) / K;
  // Report variance on the per-sample scale so it is comparable with the
  // plain estimator's: Var_per_sample = SE² * n.
  Estimate.Variance = Estimate.StandardError * Estimate.StandardError *
                      double(Estimate.SampleCount);
  return Estimate;
}

TiltedUniform::TiltedUniform(double Theta) : Theta(Theta) {
  assert(Theta != 0.0 && "theta 0 is the untilted distribution");
  Normalizer = std::expm1(Theta); // e^θ - 1, accurate for small θ
}

double TiltedUniform::sample(RandomSource &Source,
                             double *LikelihoodRatio) const {
  assert(LikelihoodRatio && "likelihood ratio output required");
  // Inversion of G(x) = (e^{θx} - 1)/(e^θ - 1).
  const double U = Source.nextUniform();
  const double X = std::log1p(U * Normalizer) / Theta;
  *LikelihoodRatio = Normalizer / (Theta * std::exp(Theta * X));
  return X;
}

} // namespace parmonc
