//===- fault/FaultPlan.cpp - Deterministic fault injection ---------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/fault/FaultPlan.h"

#include <algorithm>

// mclint: allow-file(R3): see the header — the injector's counters are a
// reviewed synchronization seam shared by every rank's hooks.

namespace parmonc {
namespace fault {

bool FaultPlan::enabled() const {
  return DropProbability > 0.0 || DuplicateProbability > 0.0 ||
         DelayProbability > 0.0 || SendFailProbability > 0.0 ||
         !WorkerCrashes.empty() || CollectorCrash.AtSavePoint > 0 ||
         CollectorCrash.AtFinalSave || !FileCorruptions.empty();
}

Status FaultPlan::validate() const {
  for (double Probability :
       {DropProbability, DuplicateProbability, DelayProbability,
        SendFailProbability})
    if (Probability < 0.0 || Probability > 1.0)
      return invalidArgument("fault probabilities must lie in [0, 1]");
  if (DropProbability + DuplicateProbability + DelayProbability +
          SendFailProbability >
      1.0)
    return invalidArgument(
        "fault probabilities partition [0, 1); their sum must not "
        "exceed 1");
  if (DelayNanos < 0)
    return invalidArgument("message delay must be non-negative");
  for (const WorkerCrashSpec &Crash : WorkerCrashes) {
    if (Crash.Rank < 1)
      return invalidArgument(
          "worker crashes need rank >= 1 (rank 0 dies via the collector "
          "crash schedule)");
    if (Crash.AfterRealizations < 1)
      return invalidArgument(
          "worker crashes fire after at least one realization");
  }
  if (CollectorCrash.AtSavePoint < 0)
    return invalidArgument("collector crash save-point must be >= 0");
  for (const FileCorruptionSpec &Corruption : FileCorruptions) {
    if (Corruption.PathSubstring.empty())
      return invalidArgument("file corruption needs a path substring");
    if (Corruption.WriteIndex < 0)
      return invalidArgument("file corruption write index must be >= 0");
    if (Corruption.KeepFraction < 0.0 || Corruption.KeepFraction >= 1.0)
      return invalidArgument(
          "file corruption keep fraction must lie in [0, 1)");
  }
  return Status::ok();
}

FaultInjector::FaultInjector(FaultPlan Plan) : Plan(std::move(Plan)) {
  CorruptionWriteCounts.assign(this->Plan.FileCorruptions.size(), 0);
}

void FaultInjector::attachObservers(obs::MetricsRegistry *Metrics,
                                    obs::TraceWriter *Trace,
                                    const Clock *TimeSource) {
  this->Metrics = Metrics;
  this->Trace = Trace;
  this->Time = TimeSource;
}

void FaultInjector::instant(const char *Name, int Lane) {
  if (Trace && Time)
    Trace->instantAt(Name, Lane, Time->nowNanos());
}

double FaultInjector::drawUnit(int Source) {
  uint64_t Index;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Index = SendIndexBySource[Source]++;
  }
  // SplitMix64-style finalizer over (seed, source, index): deterministic
  // regardless of how rank threads interleave, unlike a global counter.
  uint64_t Hash = Plan.Seed ^ (uint64_t(Source) * 0x9e3779b97f4a7c15ull) ^
                  (Index * 0xbf58476d1ce4e5b9ull);
  Hash += 0x9e3779b97f4a7c15ull;
  Hash = (Hash ^ (Hash >> 30)) * 0xbf58476d1ce4e5b9ull;
  Hash = (Hash ^ (Hash >> 27)) * 0x94d049bb133111ebull;
  Hash ^= Hash >> 31;
  return double(Hash >> 11) * 0x1.0p-53;
}

MessageDecision FaultInjector::onSendAttempt(int Source, int Destination,
                                             int Tag) {
  MessageDecision Decision;
  if (Source == Destination)
    return Decision; // self-delivery never crosses a network
  if (std::find(Plan.ExemptTags.begin(), Plan.ExemptTags.end(), Tag) !=
      Plan.ExemptTags.end())
    return Decision;
  if (Plan.DropProbability <= 0.0 && Plan.DuplicateProbability <= 0.0 &&
      Plan.DelayProbability <= 0.0 && Plan.SendFailProbability <= 0.0)
    return Decision;

  const double Draw = drawUnit(Source);
  double Threshold = Plan.DropProbability;
  if (Draw < Threshold) {
    Decision.Action = MessageAction::Drop;
    if (Metrics)
      Metrics->counter("fault.msgs_dropped").add();
    instant("fault.msg_drop", Source);
    return Decision;
  }
  Threshold += Plan.DuplicateProbability;
  if (Draw < Threshold) {
    Decision.Action = MessageAction::Duplicate;
    if (Metrics)
      Metrics->counter("fault.msgs_duplicated").add();
    instant("fault.msg_duplicate", Source);
    return Decision;
  }
  Threshold += Plan.DelayProbability;
  if (Draw < Threshold) {
    Decision.Action = MessageAction::Delay;
    Decision.DelayNanos = Plan.DelayNanos;
    if (Metrics)
      Metrics->counter("fault.msgs_delayed").add();
    instant("fault.msg_delay", Source);
    return Decision;
  }
  Threshold += Plan.SendFailProbability;
  if (Draw < Threshold) {
    Decision.Action = MessageAction::FailSend;
    if (Metrics)
      Metrics->counter("fault.send_failures").add();
    instant("fault.send_failure", Source);
    return Decision;
  }
  return Decision;
}

const WorkerCrashSpec *FaultInjector::workerCrash(int Rank) const {
  for (const WorkerCrashSpec &Crash : Plan.WorkerCrashes)
    if (Crash.Rank == Rank)
      return &Crash;
  return nullptr;
}

bool FaultInjector::takeCollectorCrash(int SavePointIndex,
                                       bool IsFinalSave) {
  const bool Scheduled =
      (IsFinalSave && Plan.CollectorCrash.AtFinalSave) ||
      (Plan.CollectorCrash.AtSavePoint > 0 &&
       SavePointIndex == Plan.CollectorCrash.AtSavePoint);
  if (!Scheduled)
    return false;
  std::lock_guard<std::mutex> Lock(Mutex);
  if (CollectorCrashFired)
    return false;
  CollectorCrashFired = true;
  return true;
}

std::optional<std::string>
FaultInjector::corruptWrite(const std::string &Path,
                            std::string_view Contents) {
  std::optional<std::string> Corrupted;
  std::lock_guard<std::mutex> Lock(Mutex);
  for (size_t Index = 0; Index < Plan.FileCorruptions.size(); ++Index) {
    const FileCorruptionSpec &Spec = Plan.FileCorruptions[Index];
    if (Path.find(Spec.PathSubstring) == std::string::npos)
      continue;
    const int MatchIndex = CorruptionWriteCounts[Index]++;
    if (MatchIndex != Spec.WriteIndex || Corrupted.has_value())
      continue;
    std::string Damaged(Contents);
    if (Spec.Action == FileCorruptionSpec::Mode::Truncate) {
      Damaged.resize(size_t(double(Damaged.size()) * Spec.KeepFraction));
    } else if (!Damaged.empty()) {
      const size_t Offset =
          std::min(Spec.FlipByteOffset, Damaged.size() - 1);
      Damaged[Offset] = char(uint8_t(Damaged[Offset]) ^ 0x01u);
    }
    Corrupted = std::move(Damaged);
    if (Metrics)
      Metrics->counter("fault.writes_corrupted").add();
    instant("fault.write_corrupted", 0);
  }
  return Corrupted;
}

void FaultInjector::noteWorkerCrashed(int Rank) {
  if (Metrics)
    Metrics->counter("fault.worker_crashes").add();
  instant("fault.worker_crash", Rank);
}

void FaultInjector::noteCollectorCrashed() {
  if (Metrics)
    Metrics->counter("fault.collector_crashes").add();
  instant("fault.collector_crash", 0);
}

} // namespace fault
} // namespace parmonc
