//===- mpsim/Collectives.cpp - Collective operations ----------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Each collective finishes with a barrier, which is what keeps
// back-to-back collectives of the same kind from interleaving their
// point-to-point traffic (a rank cannot enter round k+1 before every rank
// has drained round k).
//
//===----------------------------------------------------------------------===//

#include "parmonc/mpsim/Collectives.h"

#include "parmonc/mpsim/Serialize.h"

#include <cassert>

namespace parmonc {

namespace {

enum CollectiveTag : int {
  TagBroadcast = FirstCollectiveTag + 1,
  TagReduce = FirstCollectiveTag + 2,
  TagGather = FirstCollectiveTag + 3,
  TagAllReduceDown = FirstCollectiveTag + 4,
};

constexpr int64_t CollectiveTimeoutNanos = 60'000'000'000; // 60 s

std::vector<uint8_t> encodeDoubles(const std::vector<double> &Values) {
  ByteWriter Writer;
  Writer.writeDoubleVector(Values);
  return Writer.takeBytes();
}

std::vector<double> decodeDoubles(const Message &Incoming) {
  ByteReader Reader(Incoming.Payload);
  Result<std::vector<double>> Values = Reader.readDoubleVector();
  assert(Values.isOk() && "malformed collective payload");
  return std::move(Values).value();
}

Message receiveOrDie(Communicator &Comm, int Tag) {
  std::optional<Message> Incoming =
      Comm.receiveWait(Tag, CollectiveTimeoutNanos);
  assert(Incoming && "collective timed out: a rank did not participate");
  return std::move(*Incoming);
}

} // namespace

void broadcast(Communicator &Comm, std::vector<double> &Values, int Root) {
  assert(Root >= 0 && Root < Comm.size() && "root rank out of range");
  if (Comm.rank() == Root) {
    std::vector<uint8_t> Payload = encodeDoubles(Values);
    for (int Destination = 0; Destination < Comm.size(); ++Destination)
      if (Destination != Root)
        Comm.send(Destination, TagBroadcast, Payload);
  } else {
    Values = decodeDoubles(receiveOrDie(Comm, TagBroadcast));
  }
  Comm.barrier();
}

void reduceSum(Communicator &Comm, std::vector<double> &Values, int Root) {
  assert(Root >= 0 && Root < Comm.size() && "root rank out of range");
  if (Comm.rank() == Root) {
    for (int Contribution = 0; Contribution < Comm.size() - 1;
         ++Contribution) {
      const std::vector<double> Part =
          decodeDoubles(receiveOrDie(Comm, TagReduce));
      assert(Part.size() == Values.size() &&
             "reduce contributions must have equal length");
      for (size_t Index = 0; Index < Values.size(); ++Index)
        Values[Index] += Part[Index];
    }
  } else {
    Comm.send(Root, TagReduce, encodeDoubles(Values));
  }
  Comm.barrier();
}

void allReduceSum(Communicator &Comm, std::vector<double> &Values) {
  // Reduce to rank 0, then broadcast back down on a distinct tag.
  reduceSum(Comm, Values, 0);
  if (Comm.rank() == 0) {
    std::vector<uint8_t> Payload = encodeDoubles(Values);
    for (int Destination = 1; Destination < Comm.size(); ++Destination)
      Comm.send(Destination, TagAllReduceDown, Payload);
  } else {
    Values = decodeDoubles(receiveOrDie(Comm, TagAllReduceDown));
  }
  Comm.barrier();
}

void gather(Communicator &Comm, double Value,
            std::vector<double> &GatheredOut, int Root) {
  std::vector<std::vector<double>> Vectors;
  gatherVectors(Comm, {Value}, Vectors, Root);
  GatheredOut.clear();
  if (Comm.rank() == Root)
    for (const std::vector<double> &Part : Vectors)
      GatheredOut.push_back(Part.at(0));
}

void gatherVectors(Communicator &Comm, const std::vector<double> &Values,
                   std::vector<std::vector<double>> &GatheredOut,
                   int Root) {
  assert(Root >= 0 && Root < Comm.size() && "root rank out of range");
  GatheredOut.clear();
  if (Comm.rank() == Root) {
    GatheredOut.resize(size_t(Comm.size()));
    GatheredOut[size_t(Root)] = Values;
    for (int Contribution = 0; Contribution < Comm.size() - 1;
         ++Contribution) {
      Message Incoming = receiveOrDie(Comm, TagGather);
      GatheredOut[size_t(Incoming.Source)] = decodeDoubles(Incoming);
    }
  } else {
    Comm.send(Root, TagGather, encodeDoubles(Values));
  }
  Comm.barrier();
}

} // namespace parmonc
