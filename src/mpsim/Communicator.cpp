//===- mpsim/Communicator.cpp - In-process message passing ---------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/mpsim/Communicator.h"

#include <chrono>
#include <thread>

namespace parmonc {

void Mailbox::push(Message Incoming) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Incoming));
  }
  Available.notify_all();
}

std::optional<Message> Mailbox::tryPop(int Tag) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto Iterator = Queue.begin(); Iterator != Queue.end(); ++Iterator) {
    if (Tag < 0 || Iterator->Tag == Tag) {
      Message Found = std::move(*Iterator);
      Queue.erase(Iterator);
      return Found;
    }
  }
  return std::nullopt;
}

std::optional<Message> Mailbox::popWait(int Tag, int64_t TimeoutNanos) {
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(TimeoutNanos);
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    for (auto Iterator = Queue.begin(); Iterator != Queue.end();
         ++Iterator) {
      if (Tag < 0 || Iterator->Tag == Tag) {
        Message Found = std::move(*Iterator);
        Queue.erase(Iterator);
        return Found;
      }
    }
    if (Available.wait_until(Lock, Deadline) == std::cv_status::timeout) {
      // One final scan: a message may have arrived with the deadline.
      for (auto Iterator = Queue.begin(); Iterator != Queue.end();
           ++Iterator) {
        if (Tag < 0 || Iterator->Tag == Tag) {
          Message Found = std::move(*Iterator);
          Queue.erase(Iterator);
          return Found;
        }
      }
      return std::nullopt;
    }
  }
}

size_t Mailbox::pendingCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Queue.size();
}

bool Mailbox::contains(int Tag) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const Message &Queued : Queue)
    if (Tag < 0 || Queued.Tag == Tag)
      return true;
  return false;
}

Fabric::Fabric(int RankCount) {
  assert(RankCount >= 1 && "fabric needs at least one rank");
  Mailboxes.reserve(size_t(RankCount));
  for (int Rank = 0; Rank < RankCount; ++Rank)
    Mailboxes.push_back(std::make_unique<Mailbox>());
}

uint64_t Fabric::bytesTransferred() const {
  return TotalBytes.load(std::memory_order_relaxed);
}

void Fabric::addBytesTransferred(uint64_t Bytes) {
  TotalBytes.fetch_add(Bytes, std::memory_order_relaxed);
}

void Fabric::attachMetrics(obs::MetricsRegistry &Registry) {
  MessagesSent = &Registry.counter("comm.messages_sent");
  BytesSent = &Registry.counter("comm.bytes_sent");
  CollectorQueueDepth = &Registry.gauge("comm.collector_queue_depth");
}

void Fabric::arriveAtBarrier() {
  std::unique_lock<std::mutex> Lock(BarrierMutex);
  const uint64_t MyGeneration = BarrierGeneration;
  if (++BarrierWaiting == rankCount()) {
    BarrierWaiting = 0;
    ++BarrierGeneration;
    BarrierRelease.notify_all();
    return;
  }
  BarrierRelease.wait(Lock, [this, MyGeneration] {
    return BarrierGeneration != MyGeneration;
  });
}

void Communicator::send(int Destination, int Tag,
                        std::vector<uint8_t> Payload) {
  assert(Destination >= 0 && Destination < size() &&
         "destination rank out of range");
  SharedFabric.addBytesTransferred(Payload.size());
  if (obs::Counter *Messages = SharedFabric.messagesSentCounter())
    Messages->add();
  if (obs::Counter *Bytes = SharedFabric.bytesSentCounter())
    Bytes->add(int64_t(Payload.size()));
  Message Outgoing;
  Outgoing.Source = Rank;
  Outgoing.Tag = Tag;
  Outgoing.Payload = std::move(Payload);
  SharedFabric.mailboxOf(Destination).push(std::move(Outgoing));
  // Queue-delay signal: depth of the collector's mailbox right after a
  // subtotal lands there. The §2.2 claim is that this stays near zero.
  if (Destination == 0)
    if (obs::Gauge *Depth = SharedFabric.collectorQueueDepthGauge())
      Depth->set(double(SharedFabric.mailboxOf(0).pendingCount()));
}

std::optional<Message> Communicator::tryReceive(int Tag) {
  return SharedFabric.mailboxOf(Rank).tryPop(Tag);
}

std::optional<Message> Communicator::receiveWait(int Tag,
                                                 int64_t TimeoutNanos) {
  return SharedFabric.mailboxOf(Rank).popWait(Tag, TimeoutNanos);
}

bool Communicator::probe(int Tag) {
  return SharedFabric.mailboxOf(Rank).contains(Tag);
}

void runThreadEngine(int RankCount,
                     const std::function<void(Communicator &)> &Body,
                     obs::MetricsRegistry *Metrics) {
  assert(RankCount >= 1 && "need at least one rank");
  Fabric SharedFabric(RankCount);
  if (Metrics)
    SharedFabric.attachMetrics(*Metrics);
  std::vector<std::thread> Threads;
  Threads.reserve(size_t(RankCount));
  for (int Rank = 0; Rank < RankCount; ++Rank) {
    Threads.emplace_back([&SharedFabric, &Body, Rank] {
      Communicator Self(SharedFabric, Rank);
      Body(Self);
    });
  }
  for (std::thread &Thread : Threads)
    Thread.join();
}

} // namespace parmonc
