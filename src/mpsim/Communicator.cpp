//===- mpsim/Communicator.cpp - In-process message passing ---------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/mpsim/Communicator.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace parmonc {

void Mailbox::push(Message Incoming) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Closed)
      return; // the backend is tearing down; nobody will pop this
    Queue.push_back(std::move(Incoming));
  }
  Available.notify_all();
}

std::optional<Message> Mailbox::popMatchingLocked(int Tag) {
  for (auto Iterator = Queue.begin(); Iterator != Queue.end(); ++Iterator) {
    if (Tag < 0 || Iterator->Tag == Tag) {
      Message Found = std::move(*Iterator);
      Queue.erase(Iterator);
      return Found;
    }
  }
  return std::nullopt;
}

bool Mailbox::containsLocked(int Tag) const {
  for (const Message &Queued : Queue)
    if (Tag < 0 || Queued.Tag == Tag)
      return true;
  return false;
}

std::optional<Message> Mailbox::tryPop(int Tag) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return popMatchingLocked(Tag);
}

std::optional<Message> Mailbox::popWait(int Tag, int64_t TimeoutNanos,
                                        const Clock *TimeSource) {
  if (TimeSource) {
    // Injected-clock deadline: the condition variable cannot wait on a
    // virtual clock, so poll in short real-time slices. The predicate is
    // rechecked on every wakeup and the deadline is checked on the
    // injected clock, so a frozen ManualClock waiter returns promptly
    // once the test advances time past the deadline.
    const int64_t Deadline = TimeSource->nowNanos() + TimeoutNanos;
    std::unique_lock<std::mutex> Lock(Mutex);
    for (;;) {
      if (std::optional<Message> Found = popMatchingLocked(Tag))
        return Found;
      if (Closed || TimeSource->nowNanos() >= Deadline)
        return std::nullopt;
      Available.wait_for(Lock, std::chrono::microseconds(100));
    }
  }
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(TimeoutNanos);
  std::unique_lock<std::mutex> Lock(Mutex);
  // wait_until with a predicate rechecks after every wakeup: spurious
  // wakeups and notifications for non-matching tags neither return early
  // nor push the deadline out; false means the deadline passed (or the
  // mailbox closed) with no matching message queued.
  Available.wait_until(Lock, Deadline,
                       [this, Tag] { return Closed || containsLocked(Tag); });
  return popMatchingLocked(Tag);
}

void Mailbox::close() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Closed = true;
  }
  Available.notify_all();
}

bool Mailbox::isClosed() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Closed;
}

size_t Mailbox::pendingCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Queue.size();
}

bool Mailbox::contains(int Tag) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return containsLocked(Tag);
}

Fabric::Fabric(int RankCount) {
  assert(RankCount >= 1 && "fabric needs at least one rank");
  Mailboxes.reserve(size_t(RankCount));
  for (int Rank = 0; Rank < RankCount; ++Rank)
    Mailboxes.push_back(std::make_unique<Mailbox>());
  DeadByRank.assign(size_t(RankCount), false);
}

uint64_t Fabric::bytesTransferred() const {
  return TotalBytes.load(std::memory_order_relaxed);
}

void Fabric::addBytesTransferred(uint64_t Bytes) {
  TotalBytes.fetch_add(Bytes, std::memory_order_relaxed);
}

void Fabric::attachMetrics(obs::MetricsRegistry &Registry) {
  MessagesSent = &Registry.counter("comm.messages_sent");
  BytesSent = &Registry.counter("comm.bytes_sent");
  SendRetries = &Registry.counter("comm.send_retries");
  SendsFailed = &Registry.counter("comm.sends_failed");
  CollectorQueueDepth = &Registry.gauge("comm.collector_queue_depth");
}

void Fabric::setSendFaultHook(SendFaultHook Hook, const Clock *TimeSource) {
  FaultHook = std::move(Hook);
  FaultTime = TimeSource;
}

void Fabric::markDead(int Rank) {
  assert(Rank >= 0 && Rank < rankCount() && "rank out of range");
  std::lock_guard<std::mutex> Lock(BarrierMutex);
  if (DeadByRank[size_t(Rank)])
    return;
  DeadByRank[size_t(Rank)] = true;
  ++DeadRanks;
  // The death may have been the barrier's missing arrival.
  if (BarrierWaiting > 0 && BarrierWaiting >= rankCount() - DeadRanks) {
    BarrierWaiting = 0;
    ++BarrierGeneration;
    BarrierRelease.notify_all();
  }
}

int Fabric::aliveRankCount() const {
  std::lock_guard<std::mutex> Lock(BarrierMutex);
  return rankCount() - DeadRanks;
}

void Fabric::requestStop(StopReason Reason) {
  StopBits.fetch_or(uint8_t(Reason), std::memory_order_relaxed);
  StopFlag.store(true, std::memory_order_relaxed);
}

bool Fabric::stopRequested() const {
  return StopFlag.load(std::memory_order_relaxed);
}

uint8_t Fabric::stopReasonBits() const {
  return StopBits.load(std::memory_order_relaxed);
}

void Fabric::requestAbort() {
  AbortFlag.store(true, std::memory_order_relaxed);
  StopFlag.store(true, std::memory_order_relaxed);
}

bool Fabric::abortRequested() const {
  return AbortFlag.load(std::memory_order_relaxed);
}

void Fabric::shutdown() {
  requestStop(StopReason::None);
  for (std::unique_ptr<Mailbox> &Box : Mailboxes)
    Box->close();
  // Release any rank parked at the barrier: a shutdown must leave every
  // rank joinable in whatever order the caller picks.
  std::lock_guard<std::mutex> Lock(BarrierMutex);
  BarrierWaiting = 0;
  ++BarrierGeneration;
  BarrierRelease.notify_all();
}

void Fabric::arriveAtBarrier() {
  std::unique_lock<std::mutex> Lock(BarrierMutex);
  const uint64_t MyGeneration = BarrierGeneration;
  if (++BarrierWaiting >= rankCount() - DeadRanks) {
    BarrierWaiting = 0;
    ++BarrierGeneration;
    BarrierRelease.notify_all();
    return;
  }
  BarrierRelease.wait(Lock, [this, MyGeneration] {
    return BarrierGeneration != MyGeneration;
  });
}

void Fabric::pumpDelayedMessages() {
  if (!FaultTime)
    return;
  std::vector<DelayedMessage> Due;
  {
    std::lock_guard<std::mutex> Lock(DelayedMutex);
    if (Delayed.empty())
      return;
    const int64_t Now = FaultTime->nowNanos();
    auto FirstDue = std::partition(
        Delayed.begin(), Delayed.end(),
        [Now](const DelayedMessage &Held) { return Held.ReleaseNanos > Now; });
    Due.assign(std::make_move_iterator(FirstDue),
               std::make_move_iterator(Delayed.end()));
    Delayed.erase(FirstDue, Delayed.end());
  }
  for (DelayedMessage &Release : Due)
    mailboxOf(Release.Destination).push(std::move(Release.Held));
}

void Fabric::delayMessage(int Destination, int64_t ReleaseNanos,
                          Message Held) {
  std::lock_guard<std::mutex> Lock(DelayedMutex);
  Delayed.push_back(DelayedMessage{ReleaseNanos, Destination, std::move(Held)});
}

void Communicator::crashHard() {
  // Only the process transport can kill a single rank; a thread-backed
  // rank shares the host process with every other rank and the caller.
  assert(false && "crashHard() requires the process transport");
  std::abort();
}

Status FabricCommunicator::sendReliable(int Destination, int Tag,
                                        std::vector<uint8_t> Payload,
                                        int MaxAttempts, int64_t BackoffNanos,
                                        const Clock *TimeSource) {
  assert(Destination >= 0 && Destination < size() &&
         "destination rank out of range");
  assert(MaxAttempts >= 1 && "need at least one send attempt");
  SharedFabric.pumpDelayedMessages();

  SendFault Verdict;
  const SendFaultHook &Hook = SharedFabric.sendFaultHook();
  for (int Attempt = 1;; ++Attempt) {
    Verdict = Hook ? Hook(Rank, Destination, Tag) : SendFault{};
    if (Verdict.Act != SendFault::Action::Fail)
      break;
    if (Attempt >= MaxAttempts) {
      if (obs::Counter *Failed = SharedFabric.sendsFailedCounter())
        Failed->add();
      return ioError("send from rank " + std::to_string(Rank) +
                     " to rank " + std::to_string(Destination) +
                     " failed after " + std::to_string(MaxAttempts) +
                     " attempts");
    }
    if (obs::Counter *Retries = SharedFabric.sendRetriesCounter())
      Retries->add();
    if (TimeSource)
      TimeSource->sleepNanos(BackoffNanos);
  }

  if (obs::Counter *Messages = SharedFabric.messagesSentCounter())
    Messages->add();
  if (obs::Counter *Bytes = SharedFabric.bytesSentCounter())
    Bytes->add(int64_t(Payload.size()));
  if (Verdict.Act == SendFault::Action::Drop) {
    // The network ate it; the sender has no way to know.
    return Status::ok();
  }
  SharedFabric.addBytesTransferred(Payload.size());

  Message Outgoing;
  Outgoing.Source = Rank;
  Outgoing.Tag = Tag;
  Outgoing.Payload = std::move(Payload);
  if (Verdict.Act == SendFault::Action::Delay &&
      SharedFabric.faultClock()) {
    SharedFabric.delayMessage(Destination,
                              SharedFabric.faultClock()->nowNanos() +
                                  Verdict.DelayNanos,
                              std::move(Outgoing));
    return Status::ok();
  }
  if (Verdict.Act == SendFault::Action::Duplicate)
    SharedFabric.mailboxOf(Destination).push(Outgoing);
  SharedFabric.mailboxOf(Destination).push(std::move(Outgoing));
  // Queue-delay signal: depth of the collector's mailbox right after a
  // subtotal lands there. The §2.2 claim is that this stays near zero.
  if (Destination == 0)
    if (obs::Gauge *Depth = SharedFabric.collectorQueueDepthGauge())
      Depth->set(double(SharedFabric.mailboxOf(0).pendingCount()));
  return Status::ok();
}

std::optional<Message> FabricCommunicator::tryReceive(int Tag) {
  SharedFabric.pumpDelayedMessages();
  return SharedFabric.mailboxOf(Rank).tryPop(Tag);
}

std::optional<Message> FabricCommunicator::receiveWait(
    int Tag, int64_t TimeoutNanos, const Clock *TimeSource) {
  SharedFabric.pumpDelayedMessages();
  return SharedFabric.mailboxOf(Rank).popWait(Tag, TimeoutNanos,
                                              TimeSource);
}

bool FabricCommunicator::probe(int Tag) {
  SharedFabric.pumpDelayedMessages();
  return SharedFabric.mailboxOf(Rank).contains(Tag);
}

void runThreadEngine(int RankCount,
                     const std::function<void(Communicator &)> &Body,
                     obs::MetricsRegistry *Metrics,
                     const std::function<void(Fabric &)> &Setup) {
  assert(RankCount >= 1 && "need at least one rank");
  Fabric SharedFabric(RankCount);
  if (Metrics)
    SharedFabric.attachMetrics(*Metrics);
  if (Setup)
    Setup(SharedFabric);
  std::vector<std::thread> Threads;
  Threads.reserve(size_t(RankCount));
  for (int Rank = 0; Rank < RankCount; ++Rank) {
    Threads.emplace_back([&SharedFabric, &Body, Rank] {
      FabricCommunicator Self(SharedFabric, Rank);
      Body(Self);
    });
  }
  for (std::thread &Thread : Threads)
    Thread.join();
}

WorkerGroup::WorkerGroup(int Count, const std::function<void(int)> &Body) {
  assert(Count >= 1 && "need at least one worker");
  Threads.reserve(size_t(Count));
  // Each thread owns a copy of the callable, so a temporary lambda passed
  // by the caller cannot dangle once this constructor returns.
  for (int Worker = 0; Worker < Count; ++Worker)
    Threads.emplace_back([Body, Worker] { Body(Worker); });
}

void WorkerGroup::join() {
  for (std::thread &Thread : Threads)
    if (Thread.joinable())
      Thread.join();
  Threads.clear();
}

} // namespace parmonc
