//===- mpsim/Engine.cpp - Transport-selecting rank engine ----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/mpsim/Engine.h"

#include "parmonc/mpsim/SocketTransport.h"

#include <thread>

namespace parmonc {

const char *transportName(TransportKind Kind) {
  switch (Kind) {
  case TransportKind::Threads:
    return "threads";
  case TransportKind::Processes:
    return "processes";
  }
  return "unknown";
}

std::optional<TransportKind> parseTransport(std::string_view Name) {
  if (Name == "threads" || Name == "thread")
    return TransportKind::Threads;
  if (Name == "processes" || Name == "process" || Name == "procs")
    return TransportKind::Processes;
  return std::nullopt;
}

Result<EngineReport>
runEngine(TransportKind Kind, int RankCount,
          const std::function<void(Communicator &)> &Body,
          const EngineOptions &Options) {
  if (RankCount < 1)
    return invalidArgument("engine needs at least one rank");
  if (Kind == TransportKind::Processes)
    return runProcessEngine(RankCount, Body, Options);

  // Thread transport: the original fabric, one thread per rank. Keep the
  // fabric on this frame so its stop flags survive into the report.
  Fabric SharedFabric(RankCount);
  if (Options.Metrics)
    SharedFabric.attachMetrics(*Options.Metrics);
  if (Options.FaultHook)
    SharedFabric.setSendFaultHook(Options.FaultHook, Options.FaultClock);
  std::vector<std::thread> Threads;
  Threads.reserve(size_t(RankCount));
  for (int Rank = 0; Rank < RankCount; ++Rank) {
    Threads.emplace_back([&SharedFabric, &Body, Rank] {
      FabricCommunicator Self(SharedFabric, Rank);
      Body(Self);
    });
  }
  for (std::thread &Thread : Threads)
    Thread.join();

  EngineReport Report;
  const uint8_t Bits = SharedFabric.stopReasonBits();
  Report.StopOnTimeLimit = (Bits & uint8_t(StopReason::TimeLimit)) != 0;
  Report.StopOnErrorTarget = (Bits & uint8_t(StopReason::ErrorTarget)) != 0;
  Report.BytesTransferred = SharedFabric.bytesTransferred();
  return Report;
}

} // namespace parmonc
