//===- mpsim/SocketTransport.cpp - Ranks as forked processes -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Star topology: every worker process holds one end of a socket pair whose
// other end lives in the parent. A parent router thread polls the worker
// sockets, delivers worker->rank0 data into rank 0's mailbox, forwards
// worker->worker data, runs the barrier, and fans out stop/abort
// broadcasts. Rank 0 itself runs on the caller's thread in the parent, so
// everything rank 0 computes (collector state, reports, result files) is
// visible to the caller exactly as under the thread transport.
//
// Failure semantics: a worker that exits without a GOODBYE frame is dead —
// the router drops it from barrier accounting on EOF, and teardown decodes
// its waitpid status into the engine report. Frames are CRC-checked; a
// corrupt stream poisons that worker's decoder and is treated as a death,
// never as a partial message.
//
//===----------------------------------------------------------------------===//

#include "parmonc/mpsim/SocketTransport.h"

#include "parmonc/mpsim/Serialize.h"
#include "parmonc/mpsim/Wire.h"
#include "parmonc/support/Contract.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

namespace parmonc {

namespace {

/// Writes the whole buffer, retrying on EINTR and short writes; suppresses
/// SIGPIPE so a dead peer surfaces as an error, not a process kill.
Status sendAllBytes(int Fd, const uint8_t *Data, size_t Size) {
  size_t Sent = 0;
  while (Sent < Size) {
    const ssize_t Wrote =
        ::send(Fd, Data + Sent, Size - Sent, MSG_NOSIGNAL);
    if (Wrote < 0) {
      if (errno == EINTR)
        continue;
      return ioError(std::string("socket write failed: ") +
                     std::strerror(errno));
    }
    Sent += size_t(Wrote);
  }
  return Status::ok();
}

/// A frame held back by a Delay fault verdict.
struct DelayedFrame {
  int64_t ReleaseNanos = 0;
  Frame Held;
};

/// Serializes the per-worker GOODBYE diagnostics payload.
std::vector<uint8_t> encodeGoodbye(int64_t FailedSends, int64_t MessagesSent,
                                   int64_t BytesSent) {
  ByteWriter Writer;
  Writer.writeI64(FailedSends);
  Writer.writeI64(MessagesSent);
  Writer.writeI64(BytesSent);
  return Writer.takeBytes();
}

//===----------------------------------------------------------------------===//
// Worker (child-process) side
//===----------------------------------------------------------------------===//

/// The rank handle inside a forked worker: one socket to the parent, a
/// reader thread feeding the local mailbox, and the same fault-hook send
/// semantics as the fabric — consulted per attempt, drop/duplicate/delay
/// handled at this layer so deterministic injectors replay identically
/// across transports.
class ChildCommunicator final : public Communicator {
public:
  ChildCommunicator(int Rank, int Size, int Fd,
                    const EngineOptions &Options)
      : Rank(Rank), RankCount(Size), Fd(Fd), Hook(Options.FaultHook),
        FaultClock(Options.FaultClock) {}

  void start() {
    Frame Hello;
    Hello.Kind = FrameKind::Hello;
    Hello.A = Rank;
    writeFrame(Hello);
    Reader = std::thread([this] { readerMain(); });
  }

  /// Orderly shutdown: diagnostics to the supervisor. The caller _exits
  /// right after, so the reader thread is never joined — the process
  /// teardown reaps it.
  void sendGoodbye() {
    Frame Goodbye;
    Goodbye.Kind = FrameKind::Goodbye;
    Goodbye.A = Rank;
    Goodbye.Payload = encodeGoodbye(
        FailedSends.load(std::memory_order_relaxed),
        MessagesSent.load(std::memory_order_relaxed),
        BytesSent.load(std::memory_order_relaxed));
    writeFrame(Goodbye);
  }

  int rank() const override { return Rank; }
  int size() const override { return RankCount; }

  Status sendReliable(int Destination, int Tag,
                      std::vector<uint8_t> Payload, int MaxAttempts,
                      int64_t BackoffNanos,
                      const Clock *TimeSource) override {
    PARMONC_ASSERT(Destination >= 0 && Destination < RankCount,
                   "destination rank out of range");
    pumpDelayedFrames();

    SendFault Verdict;
    for (int Attempt = 1;; ++Attempt) {
      Verdict = Hook ? Hook(Rank, Destination, Tag) : SendFault{};
      if (Verdict.Act != SendFault::Action::Fail)
        break;
      if (Attempt >= MaxAttempts) {
        FailedSends.fetch_add(1, std::memory_order_relaxed);
        return ioError("send from rank " + std::to_string(Rank) +
                       " to rank " + std::to_string(Destination) +
                       " failed after " + std::to_string(MaxAttempts) +
                       " attempts");
      }
      if (TimeSource)
        TimeSource->sleepNanos(BackoffNanos);
    }

    MessagesSent.fetch_add(1, std::memory_order_relaxed);
    BytesSent.fetch_add(int64_t(Payload.size()),
                        std::memory_order_relaxed);
    if (Verdict.Act == SendFault::Action::Drop)
      return Status::ok(); // the wire ate it; the sender cannot know

    Frame Outgoing;
    Outgoing.Kind = FrameKind::Data;
    Outgoing.A = Rank;
    Outgoing.B = Destination;
    Outgoing.C = Tag;
    Outgoing.Payload = std::move(Payload);
    if (Verdict.Act == SendFault::Action::Delay && FaultClock) {
      std::lock_guard<std::mutex> Lock(DelayedMutex);
      Delayed.push_back(DelayedFrame{FaultClock->nowNanos() +
                                         Verdict.DelayNanos,
                                     std::move(Outgoing)});
      return Status::ok();
    }
    if (Verdict.Act == SendFault::Action::Duplicate)
      deliverFrame(Outgoing);
    deliverFrame(Outgoing);
    return Status::ok();
  }

  std::optional<Message> tryReceive(int Tag) override {
    pumpDelayedFrames();
    return Inbox.tryPop(Tag);
  }

  std::optional<Message> receiveWait(int Tag, int64_t TimeoutNanos,
                                     const Clock *TimeSource) override {
    pumpDelayedFrames();
    return Inbox.popWait(Tag, TimeoutNanos, TimeSource);
  }

  bool probe(int Tag) override {
    pumpDelayedFrames();
    return Inbox.contains(Tag);
  }

  void barrier() override {
    const uint64_t Target = ++BarrierArrivals;
    Frame Arrive;
    Arrive.Kind = FrameKind::BarrierArrive;
    Arrive.A = Rank;
    writeFrame(Arrive);
    std::unique_lock<std::mutex> Lock(BarrierMutex);
    BarrierCv.wait(Lock, [this, Target] {
      return ReleasesSeen >= Target || ParentGone;
    });
  }

  void markDead(int DeadRank) override {
    Frame Death;
    Death.Kind = FrameKind::Dead;
    Death.A = DeadRank;
    writeFrame(Death);
  }

  void requestStop(StopReason Reason) override {
    StopBits.fetch_or(uint8_t(Reason), std::memory_order_relaxed);
    StopFlag.store(true, std::memory_order_relaxed);
    Frame Stop;
    Stop.Kind = FrameKind::Stop;
    Stop.A = int32_t(uint8_t(Reason));
    writeFrame(Stop); // the router rebroadcasts to every other rank
  }

  bool stopRequested() const override {
    return StopFlag.load(std::memory_order_relaxed);
  }

  void requestAbort() override {
    AbortFlag.store(true, std::memory_order_relaxed);
    StopFlag.store(true, std::memory_order_relaxed);
    Frame Abort;
    Abort.Kind = FrameKind::Abort;
    Abort.A = Rank;
    writeFrame(Abort);
  }

  bool abortRequested() const override {
    return AbortFlag.load(std::memory_order_relaxed);
  }

  [[noreturn]] void crashHard() override {
    // The harshest injected fault: the worker process dies on the spot,
    // exactly like a node loss — no goodbye, no flush, no destructors.
    ::raise(SIGKILL);
    ::_exit(137); // unreachable unless SIGKILL is somehow blocked
  }

private:
  void deliverFrame(const Frame &Outgoing) {
    if (Outgoing.B == Rank) {
      // Self-delivery never crosses the wire, mirroring the fabric.
      Inbox.push(Message{Outgoing.A, Outgoing.C, Outgoing.Payload});
      return;
    }
    writeFrame(Outgoing);
  }

  void pumpDelayedFrames() {
    if (!FaultClock)
      return;
    std::vector<DelayedFrame> Due;
    {
      std::lock_guard<std::mutex> Lock(DelayedMutex);
      if (Delayed.empty())
        return;
      const int64_t Now = FaultClock->nowNanos();
      auto FirstDue = std::partition(
          Delayed.begin(), Delayed.end(),
          [Now](const DelayedFrame &Held) { return Held.ReleaseNanos > Now; });
      Due.assign(std::make_move_iterator(FirstDue),
                 std::make_move_iterator(Delayed.end()));
      Delayed.erase(FirstDue, Delayed.end());
    }
    for (DelayedFrame &Release : Due)
      deliverFrame(Release.Held);
  }

  void writeFrame(const Frame &Outgoing) {
    const std::vector<uint8_t> Encoded = encodeFrame(Outgoing);
    std::lock_guard<std::mutex> Lock(WriteMutex);
    (void)sendAllBytes(Fd, Encoded.data(), Encoded.size());
  }

  void readerMain() {
    FrameDecoder Decoder;
    uint8_t Chunk[65536];
    bool Corrupt = false;
    for (;;) {
      const ssize_t Got = ::read(Fd, Chunk, sizeof(Chunk));
      if (Got < 0 && errno == EINTR)
        continue;
      if (Got <= 0)
        break; // parent closed the socket: the run is over
      Decoder.feed(Chunk, size_t(Got));
      for (;;) {
        Result<std::optional<Frame>> Next = Decoder.next();
        if (!Next) {
          Corrupt = true; // unrecoverable framing error: treat as EOF
          break;
        }
        if (!Next.value())
          break;
        dispatch(*Next.value());
      }
      if (Corrupt)
        break;
    }
    // Parent gone (or stream corrupt): wake everyone so the worker can
    // wind down instead of blocking on messages that will never come.
    AbortFlag.store(true, std::memory_order_relaxed);
    StopFlag.store(true, std::memory_order_relaxed);
    Inbox.close();
    {
      std::lock_guard<std::mutex> Lock(BarrierMutex);
      ParentGone = true;
    }
    BarrierCv.notify_all();
  }

  void dispatch(const Frame &Incoming) {
    switch (Incoming.Kind) {
    case FrameKind::Data:
      Inbox.push(Message{Incoming.A, Incoming.C, Incoming.Payload});
      break;
    case FrameKind::BarrierRelease: {
      {
        std::lock_guard<std::mutex> Lock(BarrierMutex);
        ++ReleasesSeen;
      }
      BarrierCv.notify_all();
      break;
    }
    case FrameKind::Stop:
      StopBits.fetch_or(uint8_t(Incoming.A), std::memory_order_relaxed);
      StopFlag.store(true, std::memory_order_relaxed);
      break;
    case FrameKind::Abort:
      AbortFlag.store(true, std::memory_order_relaxed);
      StopFlag.store(true, std::memory_order_relaxed);
      break;
    default:
      break; // Hello/Goodbye/Dead/BarrierArrive are root-bound frames
    }
  }

  const int Rank;
  const int RankCount;
  const int Fd;
  const SendFaultHook Hook;
  const Clock *FaultClock;

  Mailbox Inbox;
  std::mutex WriteMutex;
  std::thread Reader;

  std::atomic<bool> StopFlag{false};
  std::atomic<uint8_t> StopBits{0};
  std::atomic<bool> AbortFlag{false};

  std::mutex BarrierMutex;
  std::condition_variable BarrierCv;
  uint64_t ReleasesSeen = 0;
  uint64_t BarrierArrivals = 0; // only the rank thread calls barrier()
  bool ParentGone = false;

  std::mutex DelayedMutex;
  std::vector<DelayedFrame> Delayed;

  std::atomic<int64_t> FailedSends{0};
  std::atomic<int64_t> MessagesSent{0};
  std::atomic<int64_t> BytesSent{0};
};

//===----------------------------------------------------------------------===//
// Root (parent-process) side
//===----------------------------------------------------------------------===//

/// Everything the parent's rank-0 communicator and the router thread
/// share. Barrier and liveness live under one mutex; per-worker socket
/// writes are serialized by per-channel mutexes so the router can forward
/// while rank 0 sends.
struct RouterState {
  explicit RouterState(int RankCount)
      : RankCount(RankCount), ChildFd(size_t(RankCount), -1),
        FdOpen(size_t(RankCount), false), Dead(size_t(RankCount), false),
        GoodbyeSeen(size_t(RankCount), false),
        WriteMutexes(size_t(RankCount)) {
    for (auto &MutexPtr : WriteMutexes)
      MutexPtr = std::make_unique<std::mutex>();
    Diagnostics.resize(size_t(RankCount));
    for (int Rank = 0; Rank < RankCount; ++Rank)
      Diagnostics[size_t(Rank)].Rank = Rank;
  }

  const int RankCount;
  std::vector<int> ChildFd;
  std::vector<bool> FdOpen; // guarded by the matching write mutex
  Mailbox RootInbox;

  std::mutex Mutex; // barrier + liveness
  std::condition_variable BarrierCv;
  int Arrived = 0;
  uint64_t Generation = 0;
  std::vector<bool> Dead;
  int DeadCount = 0;

  std::atomic<bool> StopFlag{false};
  std::atomic<uint8_t> StopBits{0};
  std::atomic<bool> AbortFlag{false};
  std::atomic<uint64_t> BytesTransferred{0};

  std::vector<bool> GoodbyeSeen; // router thread only
  std::vector<ProcessRankStatus> Diagnostics;
  std::vector<std::unique_ptr<std::mutex>> WriteMutexes;

  obs::Counter *FramesRouted = nullptr;
  obs::Counter *BytesRouted = nullptr;
  obs::Counter *UnexpectedExits = nullptr;
  obs::Counter *Goodbyes = nullptr;
  obs::Counter *StopBroadcasts = nullptr;
  obs::Gauge *CollectorQueueDepth = nullptr;

  /// Writes one encoded frame to worker \p Rank; silently drops it when
  /// the channel is already closed (the peer is dead — same outcome as a
  /// fabric message to a mailbox nobody drains).
  void writeToRank(int Rank, const std::vector<uint8_t> &Encoded) {
    std::lock_guard<std::mutex> Lock(*WriteMutexes[size_t(Rank)]);
    if (!FdOpen[size_t(Rank)])
      return;
    (void)sendAllBytes(ChildFd[size_t(Rank)], Encoded.data(),
                       Encoded.size());
  }

  void closeChannel(int Rank) {
    std::lock_guard<std::mutex> Lock(*WriteMutexes[size_t(Rank)]);
    if (!FdOpen[size_t(Rank)])
      return;
    FdOpen[size_t(Rank)] = false;
    ::close(ChildFd[size_t(Rank)]);
    ChildFd[size_t(Rank)] = -1;
  }

  /// Broadcast to every open worker channel.
  void broadcastFrame(const Frame &Outgoing) {
    const std::vector<uint8_t> Encoded = encodeFrame(Outgoing);
    for (int Rank = 1; Rank < RankCount; ++Rank)
      writeToRank(Rank, Encoded);
    if (StopBroadcasts)
      StopBroadcasts->add();
  }

  /// Opens the barrier: bump the generation for the root waiter and send
  /// a release frame to every live worker. Caller holds Mutex.
  void releaseBarrierLocked() {
    Arrived = 0;
    ++Generation;
    BarrierCv.notify_all();
    Frame Release;
    Release.Kind = FrameKind::BarrierRelease;
    const std::vector<uint8_t> Encoded = encodeFrame(Release);
    for (int Rank = 1; Rank < RankCount; ++Rank)
      if (!Dead[size_t(Rank)])
        writeToRank(Rank, Encoded);
  }

  /// One rank reached the barrier. Caller holds Mutex.
  void arriveLocked() {
    if (++Arrived >= RankCount - DeadCount)
      releaseBarrierLocked();
  }

  /// Caller holds Mutex.
  void markDeadLocked(int Rank) {
    if (Rank < 0 || Rank >= RankCount || Dead[size_t(Rank)])
      return;
    Dead[size_t(Rank)] = true;
    ++DeadCount;
    // The death may have been the barrier's missing arrival.
    if (Arrived > 0 && Arrived >= RankCount - DeadCount)
      releaseBarrierLocked();
  }

  void noteStop(uint8_t ReasonBits) {
    StopBits.fetch_or(ReasonBits, std::memory_order_relaxed);
    StopFlag.store(true, std::memory_order_relaxed);
  }
};

/// Rank 0's communicator: local mailbox fed by the router; sends go
/// straight onto the destination worker's socket.
class RootCommunicator final : public Communicator {
public:
  RootCommunicator(RouterState &State, const EngineOptions &Options)
      : State(State), Hook(Options.FaultHook),
        FaultClock(Options.FaultClock) {
    if (Options.Metrics) {
      MessagesSent = &Options.Metrics->counter("comm.messages_sent");
      BytesSent = &Options.Metrics->counter("comm.bytes_sent");
      SendRetries = &Options.Metrics->counter("comm.send_retries");
      SendsFailed = &Options.Metrics->counter("comm.sends_failed");
    }
  }

  int rank() const override { return 0; }
  int size() const override { return State.RankCount; }

  Status sendReliable(int Destination, int Tag,
                      std::vector<uint8_t> Payload, int MaxAttempts,
                      int64_t BackoffNanos,
                      const Clock *TimeSource) override {
    PARMONC_ASSERT(Destination >= 0 && Destination < State.RankCount,
                   "destination rank out of range");
    pumpDelayedFrames();

    SendFault Verdict;
    for (int Attempt = 1;; ++Attempt) {
      Verdict = Hook ? Hook(0, Destination, Tag) : SendFault{};
      if (Verdict.Act != SendFault::Action::Fail)
        break;
      if (Attempt >= MaxAttempts) {
        if (SendsFailed)
          SendsFailed->add();
        return ioError("send from rank 0 to rank " +
                       std::to_string(Destination) + " failed after " +
                       std::to_string(MaxAttempts) + " attempts");
      }
      if (SendRetries)
        SendRetries->add();
      if (TimeSource)
        TimeSource->sleepNanos(BackoffNanos);
    }

    if (MessagesSent)
      MessagesSent->add();
    if (BytesSent)
      BytesSent->add(int64_t(Payload.size()));
    if (Verdict.Act == SendFault::Action::Drop)
      return Status::ok();
    State.BytesTransferred.fetch_add(Payload.size(),
                                     std::memory_order_relaxed);

    Frame Outgoing;
    Outgoing.Kind = FrameKind::Data;
    Outgoing.A = 0;
    Outgoing.B = Destination;
    Outgoing.C = Tag;
    Outgoing.Payload = std::move(Payload);
    if (Verdict.Act == SendFault::Action::Delay && FaultClock) {
      std::lock_guard<std::mutex> Lock(DelayedMutex);
      Delayed.push_back(DelayedFrame{FaultClock->nowNanos() +
                                         Verdict.DelayNanos,
                                     std::move(Outgoing)});
      return Status::ok();
    }
    if (Verdict.Act == SendFault::Action::Duplicate)
      deliverFrame(Outgoing);
    deliverFrame(Outgoing);
    return Status::ok();
  }

  std::optional<Message> tryReceive(int Tag) override {
    pumpDelayedFrames();
    return State.RootInbox.tryPop(Tag);
  }

  std::optional<Message> receiveWait(int Tag, int64_t TimeoutNanos,
                                     const Clock *TimeSource) override {
    pumpDelayedFrames();
    return State.RootInbox.popWait(Tag, TimeoutNanos, TimeSource);
  }

  bool probe(int Tag) override {
    pumpDelayedFrames();
    return State.RootInbox.contains(Tag);
  }

  void barrier() override {
    std::unique_lock<std::mutex> Lock(State.Mutex);
    const uint64_t MyGeneration = State.Generation;
    State.arriveLocked();
    if (State.Generation != MyGeneration)
      return; // this arrival completed the rendezvous
    State.BarrierCv.wait(Lock, [this, MyGeneration] {
      return State.Generation != MyGeneration;
    });
  }

  void markDead(int DeadRank) override {
    std::lock_guard<std::mutex> Lock(State.Mutex);
    State.markDeadLocked(DeadRank);
  }

  void requestStop(StopReason Reason) override {
    State.noteStop(uint8_t(Reason));
    Frame Stop;
    Stop.Kind = FrameKind::Stop;
    Stop.A = int32_t(uint8_t(Reason));
    State.broadcastFrame(Stop);
  }

  bool stopRequested() const override {
    return State.StopFlag.load(std::memory_order_relaxed);
  }

  void requestAbort() override {
    State.AbortFlag.store(true, std::memory_order_relaxed);
    State.StopFlag.store(true, std::memory_order_relaxed);
    Frame Abort;
    Abort.Kind = FrameKind::Abort;
    State.broadcastFrame(Abort);
  }

  bool abortRequested() const override {
    return State.AbortFlag.load(std::memory_order_relaxed);
  }

private:
  void deliverFrame(const Frame &Outgoing) {
    if (Outgoing.B == 0) {
      State.RootInbox.push(
          Message{Outgoing.A, Outgoing.C, Outgoing.Payload});
      if (State.CollectorQueueDepth)
        State.CollectorQueueDepth->set(
            double(State.RootInbox.pendingCount()));
      return;
    }
    State.writeToRank(Outgoing.B, encodeFrame(Outgoing));
  }

  void pumpDelayedFrames() {
    if (!FaultClock)
      return;
    std::vector<DelayedFrame> Due;
    {
      std::lock_guard<std::mutex> Lock(DelayedMutex);
      if (Delayed.empty())
        return;
      const int64_t Now = FaultClock->nowNanos();
      auto FirstDue = std::partition(
          Delayed.begin(), Delayed.end(),
          [Now](const DelayedFrame &Held) { return Held.ReleaseNanos > Now; });
      Due.assign(std::make_move_iterator(FirstDue),
                 std::make_move_iterator(Delayed.end()));
      Delayed.erase(FirstDue, Delayed.end());
    }
    for (DelayedFrame &Release : Due)
      deliverFrame(Release.Held);
  }

  RouterState &State;
  const SendFaultHook Hook;
  const Clock *FaultClock;
  std::mutex DelayedMutex;
  std::vector<DelayedFrame> Delayed;
  obs::Counter *MessagesSent = nullptr;
  obs::Counter *BytesSent = nullptr;
  obs::Counter *SendRetries = nullptr;
  obs::Counter *SendsFailed = nullptr;
};

/// The parent's router/supervisor loop: polls worker sockets until every
/// channel reached EOF, dispatching frames as they complete.
void routerMain(RouterState &State) {
  std::vector<FrameDecoder> Decoders(size_t(State.RankCount));
  std::vector<bool> StreamDone(size_t(State.RankCount), false);
  for (int Rank = 1; Rank < State.RankCount; ++Rank)
    if (State.ChildFd[size_t(Rank)] < 0)
      StreamDone[size_t(Rank)] = true;

  auto handleDeath = [&](int Rank) {
    StreamDone[size_t(Rank)] = true;
    if (!State.GoodbyeSeen[size_t(Rank)]) {
      // Died without the orderly-shutdown frame: a real crash. Keep the
      // run alive — drop the rank from barriers so survivors rendezvous
      // and the collector's straggler deadline can declare it dead.
      if (State.UnexpectedExits)
        State.UnexpectedExits->add();
      std::lock_guard<std::mutex> Lock(State.Mutex);
      State.markDeadLocked(Rank);
    }
    State.closeChannel(Rank);
  };

  auto dispatch = [&](int Source, const Frame &Incoming) {
    if (State.FramesRouted)
      State.FramesRouted->add();
    switch (Incoming.Kind) {
    case FrameKind::Hello:
      break; // liveness is implied by the open stream
    case FrameKind::Data:
      if (State.BytesRouted)
        State.BytesRouted->add(int64_t(Incoming.Payload.size()));
      State.BytesTransferred.fetch_add(Incoming.Payload.size(),
                                       std::memory_order_relaxed);
      if (Incoming.B == 0) {
        State.RootInbox.push(
            Message{Incoming.A, Incoming.C, Incoming.Payload});
        if (State.CollectorQueueDepth)
          State.CollectorQueueDepth->set(
              double(State.RootInbox.pendingCount()));
      } else {
        State.writeToRank(Incoming.B, encodeFrame(Incoming));
      }
      break;
    case FrameKind::BarrierArrive: {
      std::lock_guard<std::mutex> Lock(State.Mutex);
      State.arriveLocked();
      break;
    }
    case FrameKind::Dead: {
      std::lock_guard<std::mutex> Lock(State.Mutex);
      State.markDeadLocked(Incoming.A);
      break;
    }
    case FrameKind::Stop: {
      State.noteStop(uint8_t(Incoming.A));
      Frame Stop = Incoming;
      State.broadcastFrame(Stop);
      break;
    }
    case FrameKind::Abort: {
      State.AbortFlag.store(true, std::memory_order_relaxed);
      State.StopFlag.store(true, std::memory_order_relaxed);
      Frame Abort;
      Abort.Kind = FrameKind::Abort;
      State.broadcastFrame(Abort);
      break;
    }
    case FrameKind::Goodbye: {
      State.GoodbyeSeen[size_t(Source)] = true;
      if (State.Goodbyes)
        State.Goodbyes->add();
      ProcessRankStatus &Diag = State.Diagnostics[size_t(Source)];
      Diag.GoodbyeReceived = true;
      ByteReader Reader(Incoming.Payload);
      if (Result<int64_t> Value = Reader.readI64())
        Diag.FailedSends = Value.value();
      if (Result<int64_t> Value = Reader.readI64())
        Diag.MessagesSent = Value.value();
      if (Result<int64_t> Value = Reader.readI64())
        Diag.BytesSent = Value.value();
      break;
    }
    case FrameKind::BarrierRelease:
      break; // root-originated only; a worker never sends this
    }
  };

  uint8_t Chunk[65536];
  for (;;) {
    std::vector<pollfd> Polled;
    std::vector<int> PolledRank;
    for (int Rank = 1; Rank < State.RankCount; ++Rank) {
      if (StreamDone[size_t(Rank)])
        continue;
      Polled.push_back(pollfd{State.ChildFd[size_t(Rank)], POLLIN, 0});
      PolledRank.push_back(Rank);
    }
    if (Polled.empty())
      return; // every worker stream closed: the run is over
    const int Ready = ::poll(Polled.data(), nfds_t(Polled.size()), 100);
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      return; // poll itself failing is unrecoverable
    }
    for (size_t Index = 0; Index < Polled.size(); ++Index) {
      if ((Polled[Index].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
        continue;
      const int Rank = PolledRank[Index];
      const ssize_t Got =
          ::read(State.ChildFd[size_t(Rank)], Chunk, sizeof(Chunk));
      if (Got < 0 && errno == EINTR)
        continue;
      if (Got <= 0) {
        handleDeath(Rank);
        continue;
      }
      FrameDecoder &Decoder = Decoders[size_t(Rank)];
      Decoder.feed(Chunk, size_t(Got));
      bool Corrupt = false;
      for (;;) {
        Result<std::optional<Frame>> Next = Decoder.next();
        if (!Next) {
          Corrupt = true; // framing error: the stream is unusable
          break;
        }
        if (!Next.value())
          break;
        dispatch(Rank, *Next.value());
      }
      if (Corrupt)
        handleDeath(Rank);
    }
  }
}

} // namespace

Result<EngineReport>
runProcessEngine(int RankCount,
                 const std::function<void(Communicator &)> &Body,
                 const EngineOptions &Options) {
  if (RankCount < 1)
    return invalidArgument("engine needs at least one rank");

  RouterState State(RankCount);
  if (Options.Metrics) {
    State.FramesRouted = &Options.Metrics->counter("transport.frames_routed");
    State.BytesRouted = &Options.Metrics->counter("transport.bytes_routed");
    State.UnexpectedExits =
        &Options.Metrics->counter("transport.unexpected_exits");
    State.Goodbyes = &Options.Metrics->counter("transport.goodbyes");
    State.StopBroadcasts =
        &Options.Metrics->counter("transport.stop_broadcasts");
    State.CollectorQueueDepth =
        &Options.Metrics->gauge("comm.collector_queue_depth");
  }

  // One socket pair per worker, all created before the first fork so
  // every child can close exactly the descriptors it must not hold.
  std::vector<std::array<int, 2>> Pairs(size_t(RankCount), {-1, -1});
  for (int Rank = 1; Rank < RankCount; ++Rank) {
    int Fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) != 0) {
      const Status Failed = ioError(
          std::string("socketpair() failed: ") + std::strerror(errno));
      for (int Opened = 1; Opened < Rank; ++Opened) {
        ::close(Pairs[size_t(Opened)][0]);
        ::close(Pairs[size_t(Opened)][1]);
      }
      return Failed;
    }
    Pairs[size_t(Rank)] = {Fds[0], Fds[1]}; // [0] parent end, [1] child end
  }

  std::vector<pid_t> Pids(size_t(RankCount), -1);
  for (int Rank = 1; Rank < RankCount; ++Rank) {
    const pid_t Pid = ::fork();
    if (Pid < 0) {
      const Status Failed =
          ioError(std::string("fork() failed: ") + std::strerror(errno));
      for (int Forked = 1; Forked < Rank; ++Forked) {
        ::kill(Pids[size_t(Forked)], SIGKILL);
        int Ignored = 0;
        ::waitpid(Pids[size_t(Forked)], &Ignored, 0);
      }
      for (int Opened = 1; Opened < RankCount; ++Opened) {
        ::close(Pairs[size_t(Opened)][0]);
        ::close(Pairs[size_t(Opened)][1]);
      }
      return Failed;
    }
    if (Pid == 0) {
      // Worker process for this rank: keep only our own child-side end.
      for (int Other = 1; Other < RankCount; ++Other) {
        ::close(Pairs[size_t(Other)][0]);
        if (Other != Rank)
          ::close(Pairs[size_t(Other)][1]);
      }
      ChildCommunicator Self(Rank, RankCount, Pairs[size_t(Rank)][1],
                             Options);
      Self.start();
      Body(Self);
      Self.sendGoodbye();
      // Never return into the caller (a test harness would re-run its
      // epilogue once per worker); skip destructors and exit now. The
      // reader thread dies with the process.
      ::_exit(0);
    }
    Pids[size_t(Rank)] = Pid;
  }
  for (int Rank = 1; Rank < RankCount; ++Rank) {
    ::close(Pairs[size_t(Rank)][1]); // child ends belong to the children
    State.ChildFd[size_t(Rank)] = Pairs[size_t(Rank)][0];
    State.FdOpen[size_t(Rank)] = true;
  }

  std::thread Router;
  if (RankCount > 1)
    Router = std::thread([&State] { routerMain(State); });

  RootCommunicator Root(State, Options);
  Body(Root);

  // Supervised teardown: wait for each worker to exit on its own within
  // the grace period, then escalate to SIGKILL so a wedged worker cannot
  // hang the run. Reaping closes the worker's socket end, which is what
  // terminates the router loop.
  const auto Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::nanoseconds(Options.TeardownGraceNanos);
  for (int Rank = 1; Rank < RankCount; ++Rank) {
    ProcessRankStatus &Diag = State.Diagnostics[size_t(Rank)];
    int WaitStatus = 0;
    for (;;) {
      const pid_t Reaped =
          ::waitpid(Pids[size_t(Rank)], &WaitStatus, WNOHANG);
      if (Reaped == Pids[size_t(Rank)])
        break;
      if (Reaped < 0 && errno != EINTR)
        break; // already reaped or unwaitable; nothing more to learn
      if (std::chrono::steady_clock::now() >= Deadline) {
        ::kill(Pids[size_t(Rank)], SIGKILL);
        ::waitpid(Pids[size_t(Rank)], &WaitStatus, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (WIFEXITED(WaitStatus)) {
      Diag.ExitCode = WEXITSTATUS(WaitStatus);
      Diag.ExitedCleanly = Diag.ExitCode == 0;
    } else if (WIFSIGNALED(WaitStatus)) {
      Diag.Signaled = true;
      Diag.Signal = WTERMSIG(WaitStatus);
    }
  }
  if (Router.joinable())
    Router.join();
  for (int Rank = 1; Rank < RankCount; ++Rank)
    State.closeChannel(Rank);

  EngineReport Report;
  const uint8_t Bits = State.StopBits.load(std::memory_order_relaxed);
  Report.StopOnTimeLimit = (Bits & uint8_t(StopReason::TimeLimit)) != 0;
  Report.StopOnErrorTarget = (Bits & uint8_t(StopReason::ErrorTarget)) != 0;
  Report.BytesTransferred =
      State.BytesTransferred.load(std::memory_order_relaxed);
  for (int Rank = 1; Rank < RankCount; ++Rank) {
    Report.Ranks.push_back(State.Diagnostics[size_t(Rank)]);
    Report.ChildFailedSends += State.Diagnostics[size_t(Rank)].FailedSends;
  }
  return Report;
}

} // namespace parmonc
