//===- mpsim/VirtualCluster.cpp - Discrete-event cluster model -----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/mpsim/VirtualCluster.h"

#include "parmonc/rng/Baselines.h"
#include "parmonc/sde/Distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

namespace parmonc {

Status VirtualClusterConfig::validate() const {
  if (ProcessorCount < 1)
    return invalidArgument("processor count must be >= 1");
  if (MeanRealizationSeconds <= 0.0)
    return invalidArgument("mean realization time must be positive");
  if (RealizationJitter < 0.0 || RealizationJitter > 0.5)
    return invalidArgument("realization jitter must be in [0, 0.5]");
  if (MessageBytes < 0.0 || LinkLatencySeconds < 0.0)
    return invalidArgument("message cost parameters must be non-negative");
  if (LinkBandwidthBytesPerSecond <= 0.0)
    return invalidArgument("bandwidth must be positive");
  if (CollectorProcessSeconds < 0.0 || SaveSeconds < 0.0)
    return invalidArgument("collector costs must be non-negative");
  if (RealizationsPerSend < 1)
    return invalidArgument("realizations per send must be >= 1");
  if (!SpeedFactors.empty()) {
    if (SpeedFactors.size() != size_t(ProcessorCount))
      return invalidArgument(
          "speed factor count must equal the processor count");
    for (double Factor : SpeedFactors)
      if (Factor <= 0.0)
        return invalidArgument("speed factors must be positive");
  }
  for (const VirtualWorkerFailure &Failure : WorkerFailures) {
    if (Failure.Worker < 0 || Failure.Worker >= ProcessorCount)
      return invalidArgument("failure worker index out of range");
    if (Failure.AfterRealizations < 1)
      return invalidArgument(
          "failure must happen after at least one realization");
  }
  return Status::ok();
}

namespace {

/// A subtotal message in flight: sent by \p Worker covering \p NewCount
/// realizations not previously reported, arriving at \p ArrivalSeconds.
struct SubtotalArrival {
  double ArrivalSeconds;
  int Worker;
  int64_t NewCount;

  bool operator>(const SubtotalArrival &Other) const {
    return ArrivalSeconds > Other.ArrivalSeconds;
  }
};

/// A worker's next-realization-completion event.
struct WorkerCompletion {
  double CompletionSeconds;
  int Worker;

  bool operator>(const WorkerCompletion &Other) const {
    return CompletionSeconds > Other.CompletionSeconds;
  }
};

} // namespace

Result<VirtualClusterResult>
runVirtualCluster(const VirtualClusterConfig &Config,
                  const std::vector<int64_t> &TargetVolumes) {
  if (Status Valid = Config.validate(); !Valid)
    return Valid;
  if (TargetVolumes.empty())
    return invalidArgument("no target volumes requested");
  for (int64_t Target : TargetVolumes)
    if (Target < 1)
      return invalidArgument("target volumes must be >= 1");

  const int64_t LargestTarget =
      *std::max_element(TargetVolumes.begin(), TargetVolumes.end());
  const int WorkerCount = Config.ProcessorCount;
  const double TransferSeconds =
      Config.LinkLatencySeconds +
      Config.MessageBytes / Config.LinkBandwidthBytesPerSecond;

  // Per-worker jitter streams: deterministic and worker-independent so the
  // model replays identically for any M.
  std::vector<SplitMix64> JitterStreams;
  JitterStreams.reserve(size_t(WorkerCount));
  for (int Worker = 0; Worker < WorkerCount; ++Worker)
    JitterStreams.emplace_back(Config.Seed * 0x9e3779b97f4a7c15ull +
                               uint64_t(Worker) + 1);

  auto drawRealizationSeconds = [&](int Worker) {
    double Seconds = Config.MeanRealizationSeconds;
    if (!Config.SpeedFactors.empty())
      Seconds *= Config.SpeedFactors[size_t(Worker)];
    if (Config.RealizationJitter > 0.0) {
      const double Normal =
          sampleStandardNormal(JitterStreams[size_t(Worker)]);
      Seconds *= 1.0 + Config.RealizationJitter * Normal;
      // Keep the cost physical under extreme draws.
      Seconds = std::max(Seconds, 0.1 * Config.MeanRealizationSeconds);
    }
    return Seconds;
  };

  // Phase 1: generate worker completions in global time order until the
  // cluster as a whole has produced the largest target volume, emitting a
  // subtotal message every RealizationsPerSend completions per worker.
  std::priority_queue<WorkerCompletion, std::vector<WorkerCompletion>,
                      std::greater<WorkerCompletion>>
      Completions;
  for (int Worker = 0; Worker < WorkerCount; ++Worker)
    Completions.push({drawRealizationSeconds(Worker), Worker});

  // Failure schedule: per-worker realization count at which the worker
  // dies; 0 = never. The smallest scheduled count wins if a worker is
  // named twice.
  std::vector<int64_t> FailsAfter(size_t(WorkerCount), 0);
  for (const VirtualWorkerFailure &Failure : Config.WorkerFailures) {
    int64_t &Slot = FailsAfter[size_t(Failure.Worker)];
    if (Slot == 0 || Failure.AfterRealizations < Slot)
      Slot = Failure.AfterRealizations;
  }

  std::vector<int64_t> WorkerVolume(size_t(WorkerCount), 0);
  std::vector<int64_t> UnsentVolume(size_t(WorkerCount), 0);
  std::vector<SubtotalArrival> Arrivals;
  Arrivals.reserve(size_t(LargestTarget / Config.RealizationsPerSend +
                          WorkerCount + 1));
  std::vector<int> FailedWorkers;
  int64_t ProducedTotal = 0;

  while (ProducedTotal < LargestTarget) {
    if (Completions.empty())
      return internalError(
          "all virtual workers failed before the target volume was reached");
    WorkerCompletion Done = Completions.top();
    Completions.pop();
    const int Worker = Done.Worker;
    ++WorkerVolume[size_t(Worker)];
    ++UnsentVolume[size_t(Worker)];
    ++ProducedTotal;

    const bool LastEverywhere = ProducedTotal == LargestTarget;
    const bool Fails = FailsAfter[size_t(Worker)] > 0 &&
                       WorkerVolume[size_t(Worker)] >=
                           FailsAfter[size_t(Worker)];
    if (UnsentVolume[size_t(Worker)] >= Config.RealizationsPerSend ||
        LastEverywhere || Fails) {
      Arrivals.push_back({Done.CompletionSeconds + TransferSeconds, Worker,
                          UnsentVolume[size_t(Worker)]});
      UnsentVolume[size_t(Worker)] = 0;
    }
    if (Fails) {
      FailedWorkers.push_back(Worker);
      continue; // Never requeued: the worker is gone.
    }
    if (!LastEverywhere)
      Completions.push(
          {Done.CompletionSeconds + drawRealizationSeconds(Worker), Worker});
  }

  // Flush any worker subtotals that were still unsent when the run ended
  // (only possible with RealizationsPerSend > 1).
  // Note: their send time is the worker's last completion; approximate it
  // with the global end of production, which is when the engine would tell
  // workers to finalize.
  // (With RealizationsPerSend == 1 this loop never fires.)
  double LastProduction = Arrivals.empty() ? 0.0
                                           : Arrivals.back().ArrivalSeconds -
                                                 TransferSeconds;
  for (int Worker = 0; Worker < WorkerCount; ++Worker) {
    if (UnsentVolume[size_t(Worker)] > 0) {
      Arrivals.push_back({LastProduction + TransferSeconds, Worker,
                          UnsentVolume[size_t(Worker)]});
      UnsentVolume[size_t(Worker)] = 0;
    }
  }

  std::sort(Arrivals.begin(), Arrivals.end(),
            [](const SubtotalArrival &A, const SubtotalArrival &B) {
              return A.ArrivalSeconds < B.ArrivalSeconds;
            });

  // Phase 2: the collector is a single FIFO server; after processing a
  // message it has "received and averaged" the realizations it covers. A
  // target volume L is complete once coverage reaches L and the save cost
  // has been paid (the paper measures Tcomp after save).
  std::vector<int64_t> SortedTargets(TargetVolumes);
  std::sort(SortedTargets.begin(), SortedTargets.end());

  VirtualClusterResult Outcome;
  Outcome.CompletionSeconds.assign(TargetVolumes.size(), 0.0);
  std::vector<double> CompletionBySortedTarget(SortedTargets.size(), 0.0);

  double CollectorFreeAt = 0.0;
  double BusySeconds = 0.0;
  double QueueDelaySum = 0.0;
  int64_t Covered = 0;
  size_t NextTarget = 0;

  // Virtual seconds -> trace nanoseconds. Purely arithmetic, so traces of
  // the virtual cluster are deterministic for a fixed Seed.
  auto virtualNanos = [](double Seconds) { return int64_t(Seconds * 1e9); };

  for (const SubtotalArrival &Arrival : Arrivals) {
    const double Start = std::max(Arrival.ArrivalSeconds, CollectorFreeAt);
    const double Finish = Start + Config.CollectorProcessSeconds;
    QueueDelaySum += Start - Arrival.ArrivalSeconds;
    BusySeconds += Config.CollectorProcessSeconds;
    CollectorFreeAt = Finish;
    Covered += Arrival.NewCount;
    ++Outcome.MessagesProcessed;
    Outcome.BytesTransferred += Config.MessageBytes;
    if (Config.Trace)
      Config.Trace->completeSpan("vcluster.collector.process", 0,
                                 virtualNanos(Start), virtualNanos(Finish));

    while (NextTarget < SortedTargets.size() &&
           Covered >= SortedTargets[NextTarget]) {
      // Saving happens at the save-point that covers this volume.
      CompletionBySortedTarget[NextTarget] = Finish + Config.SaveSeconds;
      if (Config.Trace)
        Config.Trace->completeSpan(
            "vcluster.collector.save", 0, virtualNanos(Finish),
            virtualNanos(Finish + Config.SaveSeconds));
      ++NextTarget;
    }
    if (NextTarget == SortedTargets.size())
      break;
  }

  if (NextTarget < SortedTargets.size())
    return internalError("virtual cluster under-produced realizations");

  // Map completions back to the caller's ordering.
  for (size_t Index = 0; Index < TargetVolumes.size(); ++Index) {
    const auto Position =
        std::lower_bound(SortedTargets.begin(), SortedTargets.end(),
                         TargetVolumes[Index]);
    Outcome.CompletionSeconds[Index] =
        CompletionBySortedTarget[size_t(Position - SortedTargets.begin())];
  }

  const double FinalTime =
      *std::max_element(CompletionBySortedTarget.begin(),
                        CompletionBySortedTarget.end());
  Outcome.CollectorBusyFraction =
      FinalTime > 0.0 ? BusySeconds / FinalTime : 0.0;
  Outcome.MeanCollectorQueueDelay =
      Outcome.MessagesProcessed > 0
          ? QueueDelaySum / double(Outcome.MessagesProcessed)
          : 0.0;
  Outcome.PerWorkerVolumes = std::move(WorkerVolume);
  std::sort(FailedWorkers.begin(), FailedWorkers.end());
  Outcome.FailedWorkers = std::move(FailedWorkers);

  if (Config.Metrics) {
    obs::MetricsRegistry &Registry = *Config.Metrics;
    Registry.gauge("vcluster.collector_busy_fraction")
        .set(Outcome.CollectorBusyFraction);
    Registry.gauge("vcluster.collector_queue_delay_seconds")
        .set(Outcome.MeanCollectorQueueDelay);
    Registry.counter("vcluster.messages_processed")
        .add(Outcome.MessagesProcessed);
    Registry.counter("vcluster.bytes_transferred")
        .add(int64_t(Outcome.BytesTransferred));
    if (!Outcome.FailedWorkers.empty())
      Registry.counter("vcluster.worker_failures")
          .add(int64_t(Outcome.FailedWorkers.size()));
  }
  return Outcome;
}

} // namespace parmonc
