//===- mpsim/Wire.cpp - CRC-framed socket message codec ------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/mpsim/Wire.h"

#include "parmonc/support/Checksum.h"

#include <cstring>

namespace parmonc {

namespace {

constexpr size_t HeaderBytes = 12; // magic + bodyLen + bodyCrc
constexpr size_t BodyPrefixBytes = 13; // kind + 3 x i32

void appendU32(std::vector<uint8_t> &Out, uint32_t Value) {
  for (int Byte = 0; Byte < 4; ++Byte)
    Out.push_back(uint8_t(Value >> (8 * Byte)));
}

uint32_t readU32(const uint8_t *Data) {
  uint32_t Value = 0;
  for (int Byte = 0; Byte < 4; ++Byte)
    Value |= uint32_t(Data[Byte]) << (8 * Byte);
  return Value;
}

bool knownFrameKind(uint8_t Kind) {
  return Kind >= uint8_t(FrameKind::Hello) &&
         Kind <= uint8_t(FrameKind::Goodbye);
}

} // namespace

std::vector<uint8_t> encodeFrame(const Frame &Outgoing) {
  std::vector<uint8_t> Body;
  Body.reserve(BodyPrefixBytes + Outgoing.Payload.size());
  Body.push_back(uint8_t(Outgoing.Kind));
  appendU32(Body, uint32_t(Outgoing.A));
  appendU32(Body, uint32_t(Outgoing.B));
  appendU32(Body, uint32_t(Outgoing.C));
  Body.insert(Body.end(), Outgoing.Payload.begin(), Outgoing.Payload.end());

  const uint32_t Crc = crc32(std::string_view(
      reinterpret_cast<const char *>(Body.data()), Body.size()));

  std::vector<uint8_t> Encoded;
  Encoded.reserve(HeaderBytes + Body.size());
  appendU32(Encoded, FrameMagic);
  appendU32(Encoded, uint32_t(Body.size()));
  appendU32(Encoded, Crc);
  Encoded.insert(Encoded.end(), Body.begin(), Body.end());
  return Encoded;
}

void FrameDecoder::feed(const uint8_t *Data, size_t Size) {
  // Reclaim consumed prefix before growing, so a long-lived stream does
  // not accumulate every frame it ever carried.
  if (Consumed > 0 && Consumed == Buffer.size()) {
    Buffer.clear();
    Consumed = 0;
  } else if (Consumed > 4096) {
    Buffer.erase(Buffer.begin(), Buffer.begin() + std::ptrdiff_t(Consumed));
    Consumed = 0;
  }
  Buffer.insert(Buffer.end(), Data, Data + Size);
}

Result<std::optional<Frame>> FrameDecoder::next() {
  if (!Poisoned.isOk())
    return Poisoned;
  const size_t Available = Buffer.size() - Consumed;
  if (Available < HeaderBytes)
    return std::optional<Frame>{};
  const uint8_t *Header = Buffer.data() + Consumed;
  const uint32_t Magic = readU32(Header);
  if (Magic != FrameMagic) {
    Poisoned = parseError("frame header magic mismatch; socket stream is "
                          "corrupt or desynchronized");
    return Poisoned;
  }
  const uint32_t BodyLen = readU32(Header + 4);
  if (BodyLen < BodyPrefixBytes || BodyLen > MaxFrameBodyBytes) {
    Poisoned = parseError("frame body length " + std::to_string(BodyLen) +
                          " outside [" + std::to_string(BodyPrefixBytes) +
                          ", " + std::to_string(MaxFrameBodyBytes) +
                          "]; header is lying");
    return Poisoned;
  }
  if (Available < HeaderBytes + BodyLen)
    return std::optional<Frame>{}; // wait for the rest of the body
  const uint8_t *Body = Header + HeaderBytes;
  const uint32_t WireCrc = readU32(Header + 8);
  const uint32_t ComputedCrc = crc32(std::string_view(
      reinterpret_cast<const char *>(Body), BodyLen));
  if (WireCrc != ComputedCrc) {
    Poisoned = parseError("frame body CRC mismatch; message corrupted in "
                          "transit");
    return Poisoned;
  }
  if (!knownFrameKind(Body[0])) {
    Poisoned = parseError("unknown frame kind " + std::to_string(Body[0]));
    return Poisoned;
  }

  Frame Decoded;
  Decoded.Kind = FrameKind(Body[0]);
  Decoded.A = int32_t(readU32(Body + 1));
  Decoded.B = int32_t(readU32(Body + 5));
  Decoded.C = int32_t(readU32(Body + 9));
  Decoded.Payload.assign(Body + BodyPrefixBytes, Body + BodyLen);
  Consumed += HeaderBytes + BodyLen;
  return std::optional<Frame>(std::move(Decoded));
}

} // namespace parmonc
