//===- statest/SpecialFunctions.cpp - p-value machinery ------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/statest/SpecialFunctions.h"

#include <cassert>
#include <cmath>

namespace parmonc {

// Series representation of P(s,x), converging fast for x < s + 1.
static double gammaPSeries(double S, double X) {
  double Term = 1.0 / S;
  double Sum = Term;
  double Denominator = S;
  for (int Iteration = 0; Iteration < 500; ++Iteration) {
    Denominator += 1.0;
    Term *= X / Denominator;
    Sum += Term;
    if (std::fabs(Term) < std::fabs(Sum) * 1e-16)
      break;
  }
  return Sum * std::exp(-X + S * std::log(X) - std::lgamma(S));
}

// Lentz continued fraction for Q(s,x), converging fast for x >= s + 1.
static double gammaQContinuedFraction(double S, double X) {
  constexpr double Tiny = 1e-300;
  double B = X + 1.0 - S;
  double C = 1.0 / Tiny;
  double D = 1.0 / B;
  double Fraction = D;
  for (int Iteration = 1; Iteration < 500; ++Iteration) {
    const double An = -double(Iteration) * (double(Iteration) - S);
    B += 2.0;
    D = An * D + B;
    if (std::fabs(D) < Tiny)
      D = Tiny;
    C = B + An / C;
    if (std::fabs(C) < Tiny)
      C = Tiny;
    D = 1.0 / D;
    const double Delta = D * C;
    Fraction *= Delta;
    if (std::fabs(Delta - 1.0) < 1e-16)
      break;
  }
  return Fraction * std::exp(-X + S * std::log(X) - std::lgamma(S));
}

double regularizedGammaP(double S, double X) {
  assert(S > 0.0 && "shape parameter must be positive");
  assert(X >= 0.0 && "argument must be non-negative");
  if (X == 0.0)
    return 0.0;
  return X < S + 1.0 ? gammaPSeries(S, X)
                     : 1.0 - gammaQContinuedFraction(S, X);
}

double regularizedGammaQ(double S, double X) {
  assert(S > 0.0 && "shape parameter must be positive");
  assert(X >= 0.0 && "argument must be non-negative");
  if (X == 0.0)
    return 1.0;
  return X < S + 1.0 ? 1.0 - gammaPSeries(S, X)
                     : gammaQContinuedFraction(S, X);
}

double chiSquareSurvival(double Statistic, double DegreesOfFreedom) {
  assert(DegreesOfFreedom > 0.0 && "need at least one degree of freedom");
  if (Statistic <= 0.0)
    return 1.0;
  return regularizedGammaQ(DegreesOfFreedom / 2.0, Statistic / 2.0);
}

double kolmogorovQ(double Lambda) {
  if (Lambda <= 0.0)
    return 1.0;
  // Alternating series; terms decay like exp(-2 j² λ²).
  double Sum = 0.0;
  double Sign = 1.0;
  for (int J = 1; J <= 100; ++J) {
    const double Term = std::exp(-2.0 * double(J) * double(J) * Lambda *
                                 Lambda);
    Sum += Sign * Term;
    if (Term < 1e-18)
      break;
    Sign = -Sign;
  }
  const double Q = 2.0 * Sum;
  return Q < 0.0 ? 0.0 : (Q > 1.0 ? 1.0 : Q);
}

double poissonCdf(int64_t Count, double Mean) {
  assert(Mean > 0.0 && "Poisson mean must be positive");
  if (Count < 0)
    return 0.0;
  // P(X <= k) = Q(k+1, mean): accurate in both tails, unlike naive
  // summation against 1.0.
  return regularizedGammaQ(double(Count) + 1.0, Mean);
}

double poissonSurvival(int64_t Count, double Mean) {
  assert(Mean > 0.0 && "Poisson mean must be positive");
  if (Count <= 0)
    return 1.0;
  // P(X >= k) = P(k, mean).
  return regularizedGammaP(double(Count), Mean);
}

double poissonTwoSidedPValue(int64_t Count, double Mean) {
  const double Lower = poissonCdf(Count, Mean);
  const double Upper = poissonSurvival(Count, Mean);
  const double PValue = 2.0 * (Lower < Upper ? Lower : Upper);
  return PValue > 1.0 ? 1.0 : PValue;
}

} // namespace parmonc
