//===- statest/Tests.cpp - RNG statistical test battery ------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/statest/Tests.h"

#include "parmonc/statest/SpecialFunctions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace parmonc {

/// Chi-square statistic of observed counts against per-cell expectations.
static double chiSquareStatistic(const std::vector<int64_t> &Observed,
                                 const std::vector<double> &Expected) {
  assert(Observed.size() == Expected.size());
  double Statistic = 0.0;
  for (size_t Cell = 0; Cell < Observed.size(); ++Cell) {
    assert(Expected[Cell] > 0.0 && "cell with zero expectation");
    const double Delta = double(Observed[Cell]) - Expected[Cell];
    Statistic += Delta * Delta / Expected[Cell];
  }
  return Statistic;
}

TestResult chiSquareUniformityTest(RandomSource &Source,
                                   int64_t SampleCount, int Bins) {
  assert(Bins >= 2 && SampleCount >= 10 * Bins &&
         "need >= 10 expected entries per bin");
  std::vector<int64_t> Observed(size_t(Bins), 0);
  for (int64_t Draw = 0; Draw < SampleCount; ++Draw) {
    int Bin = int(Source.nextUniform() * Bins);
    if (Bin == Bins) // cannot happen with open-interval sources; be safe
      Bin = Bins - 1;
    ++Observed[size_t(Bin)];
  }
  std::vector<double> Expected(size_t(Bins),
                               double(SampleCount) / double(Bins));
  const double Statistic = chiSquareStatistic(Observed, Expected);
  return {"chi2-uniformity", Statistic,
          chiSquareSurvival(Statistic, double(Bins - 1))};
}

TestResult kolmogorovSmirnovTest(RandomSource &Source, int64_t SampleCount) {
  assert(SampleCount >= 10 && "KS test needs a reasonable sample");
  std::vector<double> Sample(static_cast<size_t>(SampleCount));
  for (double &Value : Sample)
    Value = Source.nextUniform();
  std::sort(Sample.begin(), Sample.end());

  double MaxDeviation = 0.0;
  for (size_t Index = 0; Index < Sample.size(); ++Index) {
    const double EmpiricalHigh = double(Index + 1) / double(SampleCount);
    const double EmpiricalLow = double(Index) / double(SampleCount);
    MaxDeviation = std::max(MaxDeviation,
                            std::fabs(EmpiricalHigh - Sample[Index]));
    MaxDeviation = std::max(MaxDeviation,
                            std::fabs(Sample[Index] - EmpiricalLow));
  }
  const double SqrtN = std::sqrt(double(SampleCount));
  const double Lambda = (SqrtN + 0.12 + 0.11 / SqrtN) * MaxDeviation;
  return {"kolmogorov-smirnov", MaxDeviation, kolmogorovQ(Lambda)};
}

TestResult serialPairsTest(RandomSource &Source, int64_t PairCount,
                           int BinsPerAxis) {
  assert(BinsPerAxis >= 2);
  const int CellCount = BinsPerAxis * BinsPerAxis;
  assert(PairCount >= 10 * CellCount && "need >= 10 per cell");
  std::vector<int64_t> Observed(size_t(CellCount), 0);
  for (int64_t Pair = 0; Pair < PairCount; ++Pair) {
    const int X = std::min(int(Source.nextUniform() * BinsPerAxis),
                           BinsPerAxis - 1);
    const int Y = std::min(int(Source.nextUniform() * BinsPerAxis),
                           BinsPerAxis - 1);
    ++Observed[size_t(X * BinsPerAxis + Y)];
  }
  std::vector<double> Expected(size_t(CellCount),
                               double(PairCount) / double(CellCount));
  const double Statistic = chiSquareStatistic(Observed, Expected);
  return {"serial-pairs", Statistic,
          chiSquareSurvival(Statistic, double(CellCount - 1))};
}

TestResult serialTriplesTest(RandomSource &Source, int64_t TripleCount,
                             int BinsPerAxis) {
  assert(BinsPerAxis >= 2);
  const int CellCount = BinsPerAxis * BinsPerAxis * BinsPerAxis;
  assert(TripleCount >= 10 * CellCount && "need >= 10 per cell");
  std::vector<int64_t> Observed(size_t(CellCount), 0);
  for (int64_t Triple = 0; Triple < TripleCount; ++Triple) {
    const int X = std::min(int(Source.nextUniform() * BinsPerAxis),
                           BinsPerAxis - 1);
    const int Y = std::min(int(Source.nextUniform() * BinsPerAxis),
                           BinsPerAxis - 1);
    const int Z = std::min(int(Source.nextUniform() * BinsPerAxis),
                           BinsPerAxis - 1);
    ++Observed[size_t((X * BinsPerAxis + Y) * BinsPerAxis + Z)];
  }
  std::vector<double> Expected(size_t(CellCount),
                               double(TripleCount) / double(CellCount));
  const double Statistic = chiSquareStatistic(Observed, Expected);
  return {"serial-triples", Statistic,
          chiSquareSurvival(Statistic, double(CellCount - 1))};
}

TestResult runsTest(RandomSource &Source, int64_t SampleCount) {
  assert(SampleCount >= 100);
  // Count maximal runs of values on one side of 1/2.
  int64_t Runs = 1;
  int64_t AboveCount = 0;
  bool PreviousAbove = Source.nextUniform() >= 0.5;
  AboveCount += PreviousAbove;
  for (int64_t Draw = 1; Draw < SampleCount; ++Draw) {
    const bool Above = Source.nextUniform() >= 0.5;
    AboveCount += Above;
    if (Above != PreviousAbove)
      ++Runs;
    PreviousAbove = Above;
  }
  const double N1 = double(AboveCount);
  const double N2 = double(SampleCount - AboveCount);
  const double N = double(SampleCount);
  if (N1 == 0.0 || N2 == 0.0) {
    // Every value on one side of 1/2: maximally non-random.
    return {"runs", double(Runs), 0.0};
  }
  const double ExpectedRuns = 2.0 * N1 * N2 / N + 1.0;
  const double VarianceRuns =
      2.0 * N1 * N2 * (2.0 * N1 * N2 - N) / (N * N * (N - 1.0));
  const double Z = (double(Runs) - ExpectedRuns) / std::sqrt(VarianceRuns);
  const double PValue = std::erfc(std::fabs(Z) / std::sqrt(2.0));
  return {"runs", Z, PValue};
}

TestResult gapTest(RandomSource &Source, int64_t GapCount, double Low,
                   double High, int MaxGap) {
  assert(Low < High && High <= 1.0 && Low >= 0.0);
  assert(MaxGap >= 1 && GapCount >= 100 * MaxGap);
  const double HitProbability = High - Low;

  // Record the gap length (number of misses before a hit), pooling >= MaxGap.
  std::vector<int64_t> Observed(size_t(MaxGap) + 1, 0);
  for (int64_t Gap = 0; Gap < GapCount; ++Gap) {
    int Length = 0;
    for (;;) {
      const double Value = Source.nextUniform();
      if (Value >= Low && Value < High)
        break;
      ++Length;
      if (Length >= MaxGap)
        break;
    }
    ++Observed[size_t(std::min(Length, MaxGap))];
  }

  // P(gap = r) = p (1-p)^r; pooled tail P(gap >= MaxGap) = (1-p)^MaxGap.
  std::vector<double> Expected(size_t(MaxGap) + 1);
  for (int Length = 0; Length < MaxGap; ++Length)
    Expected[size_t(Length)] = double(GapCount) * HitProbability *
                               std::pow(1.0 - HitProbability, Length);
  Expected[size_t(MaxGap)] =
      double(GapCount) * std::pow(1.0 - HitProbability, MaxGap);

  const double Statistic = chiSquareStatistic(Observed, Expected);
  return {"gap", Statistic, chiSquareSurvival(Statistic, double(MaxGap))};
}

TestResult autocorrelationTest(RandomSource &Source, int64_t SampleCount,
                               int Lag) {
  assert(Lag >= 1 && SampleCount > 100 * Lag);
  std::vector<double> Sample(static_cast<size_t>(SampleCount));
  for (double &Value : Sample)
    Value = Source.nextUniform();

  double Mean = 0.0;
  for (double Value : Sample)
    Mean += Value;
  Mean /= double(SampleCount);

  double Numerator = 0.0, Denominator = 0.0;
  for (int64_t Index = 0; Index < SampleCount; ++Index) {
    const double Centered = Sample[size_t(Index)] - Mean;
    Denominator += Centered * Centered;
    if (Index + Lag < SampleCount)
      Numerator += Centered * (Sample[size_t(Index + Lag)] - Mean);
  }
  const double Coefficient = Numerator / Denominator;
  const double Z = Coefficient * std::sqrt(double(SampleCount));
  const double PValue = std::erfc(std::fabs(Z) / std::sqrt(2.0));
  return {"autocorrelation-lag" + std::to_string(Lag), Z, PValue};
}

TestResult collisionTest(RandomSource &Source, int64_t BallCount,
                         int CellCountLog2) {
  assert(CellCountLog2 >= 8 && CellCountLog2 <= 30);
  assert(BallCount >= 1000);
  const uint64_t CellCount = uint64_t(1) << CellCountLog2;
  // Expected collisions ≈ n²/2m; keep it in a Poisson-friendly range.
  const double ExpectedCollisions =
      double(BallCount) * double(BallCount) / (2.0 * double(CellCount));

  std::unordered_set<uint64_t> Occupied;
  Occupied.reserve(size_t(BallCount) * 2);
  int64_t Collisions = 0;
  for (int64_t Ball = 0; Ball < BallCount; ++Ball) {
    const uint64_t Cell = Source.nextBits64() >> (64 - CellCountLog2);
    if (!Occupied.insert(Cell).second)
      ++Collisions;
  }
  return {"collision", double(Collisions),
          poissonTwoSidedPValue(Collisions, ExpectedCollisions)};
}

TestResult birthdaySpacingsTest(RandomSource &Source, int64_t BirthdayCount,
                                int DayCountLog2) {
  assert(DayCountLog2 >= 16 && DayCountLog2 <= 62);
  assert(BirthdayCount >= 16);
  const double DayCount = std::pow(2.0, DayCountLog2);
  const double Lambda = double(BirthdayCount) * double(BirthdayCount) *
                        double(BirthdayCount) / (4.0 * DayCount);

  std::vector<uint64_t> Birthdays(static_cast<size_t>(BirthdayCount));
  for (uint64_t &Day : Birthdays)
    Day = Source.nextBits64() >> (64 - DayCountLog2);
  std::sort(Birthdays.begin(), Birthdays.end());

  std::vector<uint64_t> Spacings(Birthdays.size() - 1);
  for (size_t Index = 0; Index + 1 < Birthdays.size(); ++Index)
    Spacings[Index] = Birthdays[Index + 1] - Birthdays[Index];
  std::sort(Spacings.begin(), Spacings.end());

  // Count values that appear more than once (each extra occurrence counts).
  int64_t Duplicates = 0;
  for (size_t Index = 0; Index + 1 < Spacings.size(); ++Index)
    Duplicates += Spacings[Index] == Spacings[Index + 1];

  return {"birthday-spacings", double(Duplicates),
          poissonTwoSidedPValue(Duplicates, Lambda)};
}

TestResult maximumOfTTest(RandomSource &Source, int64_t GroupCount,
                          int GroupSize, int Bins) {
  assert(GroupSize >= 2 && Bins >= 2 && GroupCount >= 10 * Bins);
  // max(U_1..U_t)^t is U(0,1); chi-square the transformed maxima.
  std::vector<int64_t> Observed(size_t(Bins), 0);
  for (int64_t Group = 0; Group < GroupCount; ++Group) {
    double Maximum = 0.0;
    for (int Member = 0; Member < GroupSize; ++Member)
      Maximum = std::max(Maximum, Source.nextUniform());
    const double Transformed = std::pow(Maximum, GroupSize);
    const int Bin = std::min(int(Transformed * Bins), Bins - 1);
    ++Observed[size_t(Bin)];
  }
  std::vector<double> Expected(size_t(Bins),
                               double(GroupCount) / double(Bins));
  const double Statistic = chiSquareStatistic(Observed, Expected);
  return {"maximum-of-" + std::to_string(GroupSize), Statistic,
          chiSquareSurvival(Statistic, double(Bins - 1))};
}

/// Stirling numbers of the second kind S(n, k) for n, k <= MaxIndex,
/// computed by the triangle recurrence in doubles (exact well past the
/// sizes the tests use).
static std::vector<std::vector<double>> stirlingTable(int MaxIndex) {
  std::vector<std::vector<double>> Table(
      size_t(MaxIndex) + 1, std::vector<double>(size_t(MaxIndex) + 1, 0.0));
  Table[0][0] = 1.0;
  for (int N = 1; N <= MaxIndex; ++N)
    for (int K = 1; K <= N; ++K)
      Table[size_t(N)][size_t(K)] =
          double(K) * Table[size_t(N - 1)][size_t(K)] +
          Table[size_t(N - 1)][size_t(K - 1)];
  return Table;
}

/// Falling factorial d (d-1) ... (d-r+1).
static double fallingFactorial(int Base, int Count) {
  double Product = 1.0;
  for (int Step = 0; Step < Count; ++Step)
    Product *= double(Base - Step);
  return Product;
}

TestResult pokerTest(RandomSource &Source, int64_t HandCount, int HandSize,
                     int DigitBase) {
  assert(HandSize >= 2 && HandSize <= 10 && "unsupported hand size");
  assert(DigitBase >= 2 && "digit base too small");
  assert(HandCount >= 100 * HandSize && "sample too small for poker test");

  const auto Stirling = stirlingTable(HandSize);
  // P(r distinct) = fall(d, r) * S(k, r) / d^k.
  std::vector<double> Probability(size_t(HandSize) + 1, 0.0);
  const double TotalHands = std::pow(double(DigitBase), HandSize);
  for (int Distinct = 1; Distinct <= HandSize; ++Distinct)
    Probability[size_t(Distinct)] =
        fallingFactorial(DigitBase, Distinct) *
        Stirling[size_t(HandSize)][size_t(Distinct)] / TotalHands;

  std::vector<int64_t> Observed(size_t(HandSize) + 1, 0);
  std::vector<bool> Seen(static_cast<size_t>(DigitBase));
  for (int64_t Hand = 0; Hand < HandCount; ++Hand) {
    std::fill(Seen.begin(), Seen.end(), false);
    int Distinct = 0;
    for (int Draw = 0; Draw < HandSize; ++Draw) {
      int Digit = std::min(int(Source.nextUniform() * DigitBase),
                           DigitBase - 1);
      if (!Seen[size_t(Digit)]) {
        Seen[size_t(Digit)] = true;
        ++Distinct;
      }
    }
    ++Observed[size_t(Distinct)];
  }

  // Pool sparse low-distinct categories upward until every cell expects
  // at least ~10 counts (Knuth's recommendation for the chi-square).
  std::vector<int64_t> PooledObserved;
  std::vector<double> PooledExpected;
  int64_t CarryObserved = 0;
  double CarryExpected = 0.0;
  for (int Distinct = 1; Distinct <= HandSize; ++Distinct) {
    CarryObserved += Observed[size_t(Distinct)];
    CarryExpected += double(HandCount) * Probability[size_t(Distinct)];
    if (CarryExpected >= 10.0 || Distinct == HandSize) {
      PooledObserved.push_back(CarryObserved);
      PooledExpected.push_back(CarryExpected);
      CarryObserved = 0;
      CarryExpected = 0.0;
    }
  }
  // A trailing underfull cell merges backward.
  if (PooledExpected.size() >= 2 && PooledExpected.back() < 10.0) {
    PooledExpected[PooledExpected.size() - 2] += PooledExpected.back();
    PooledObserved[PooledObserved.size() - 2] += PooledObserved.back();
    PooledExpected.pop_back();
    PooledObserved.pop_back();
  }

  const double Statistic =
      chiSquareStatistic(PooledObserved, PooledExpected);
  return {"poker", Statistic,
          chiSquareSurvival(Statistic,
                            double(PooledObserved.size()) - 1.0)};
}

TestResult couponCollectorTest(RandomSource &Source, int64_t SegmentCount,
                               int DigitBase, int MaxLength) {
  assert(DigitBase >= 2 && MaxLength > DigitBase &&
         "need room for lengths beyond the minimum");
  assert(SegmentCount >= 100 * (MaxLength - DigitBase) &&
         "sample too small for coupon test");

  const auto Stirling = stirlingTable(MaxLength);
  // P(L = l) = d!/d^l * S(l-1, d-1), l = d .. MaxLength-1; pooled tail.
  const int CellCount = MaxLength - DigitBase + 1;
  std::vector<double> Probability(static_cast<size_t>(CellCount), 0.0);
  double CumulativeBelowTail = 0.0;
  const double FactorialBase = fallingFactorial(DigitBase, DigitBase);
  for (int Length = DigitBase; Length < MaxLength; ++Length) {
    const double Mass =
        FactorialBase / std::pow(double(DigitBase), Length) *
        Stirling[size_t(Length - 1)][size_t(DigitBase - 1)];
    Probability[size_t(Length - DigitBase)] = Mass;
    CumulativeBelowTail += Mass;
  }
  Probability[size_t(CellCount - 1)] = 1.0 - CumulativeBelowTail;

  std::vector<int64_t> Observed(size_t(CellCount), 0);
  std::vector<bool> Seen(static_cast<size_t>(DigitBase));
  for (int64_t Segment = 0; Segment < SegmentCount; ++Segment) {
    std::fill(Seen.begin(), Seen.end(), false);
    int Collected = 0;
    int Length = 0;
    while (Collected < DigitBase && Length < MaxLength) {
      int Digit = std::min(int(Source.nextUniform() * DigitBase),
                           DigitBase - 1);
      ++Length;
      if (!Seen[size_t(Digit)]) {
        Seen[size_t(Digit)] = true;
        ++Collected;
      }
    }
    // Segments that hit MaxLength before completion land in the tail.
    const int Cell =
        Collected < DigitBase ? CellCount - 1 : Length - DigitBase;
    ++Observed[size_t(std::min(Cell, CellCount - 1))];
  }

  std::vector<double> Expected(static_cast<size_t>(CellCount));
  for (int Cell = 0; Cell < CellCount; ++Cell)
    Expected[size_t(Cell)] =
        double(SegmentCount) * Probability[size_t(Cell)];

  const double Statistic = chiSquareStatistic(Observed, Expected);
  return {"coupon-collector", Statistic,
          chiSquareSurvival(Statistic, double(CellCount) - 1.0)};
}

std::vector<TestResult> runBattery(RandomSource &Source,
                                   int64_t SampleCount) {
  assert(SampleCount >= (1 << 16) && "battery needs a reasonable sample");
  std::vector<TestResult> Results;
  Results.push_back(chiSquareUniformityTest(Source, SampleCount));
  Results.push_back(kolmogorovSmirnovTest(
      Source, std::min<int64_t>(SampleCount, 1 << 16)));
  Results.push_back(serialPairsTest(Source, SampleCount / 2));
  Results.push_back(serialTriplesTest(Source, SampleCount / 3));
  Results.push_back(runsTest(Source, SampleCount));
  Results.push_back(gapTest(Source, SampleCount / 16));
  Results.push_back(autocorrelationTest(Source, SampleCount));
  Results.push_back(collisionTest(Source));
  Results.push_back(birthdaySpacingsTest(Source));
  Results.push_back(maximumOfTTest(Source, SampleCount / 5));
  Results.push_back(pokerTest(Source, SampleCount / 5));
  Results.push_back(couponCollectorTest(Source, SampleCount / 16));
  return Results;
}

bool allPass(const std::vector<TestResult> &Results, double Alpha) {
  for (const TestResult &Result : Results)
    if (!Result.passesAt(Alpha))
      return false;
  return true;
}

} // namespace parmonc
