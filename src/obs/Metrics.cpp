//===- obs/Metrics.cpp - Lock-cheap run-time metrics ----------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/obs/Metrics.h"

#include "parmonc/support/Text.h"

#include <algorithm>
#include <cstdio>

namespace parmonc {
namespace obs {

int64_t LatencySummary::quantileUpperNanos(double Quantile) const {
  if (Count <= 0 || Buckets.empty())
    return 0;
  const double Target = Quantile * double(Count);
  int64_t Seen = 0;
  for (const auto &[Index, BucketCount] : Buckets) {
    Seen += BucketCount;
    if (double(Seen) >= Target)
      return LatencyHistogram::bucketUpperNanos(Index);
  }
  return LatencyHistogram::bucketUpperNanos(Buckets.back().first);
}

Counter &MetricsRegistry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto Found = Counters.find(Name);
  if (Found == Counters.end())
    Found = Counters
                .emplace(std::string(Name), std::make_unique<Counter>())
                .first;
  return *Found->second;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto Found = Gauges.find(Name);
  if (Found == Gauges.end())
    Found =
        Gauges.emplace(std::string(Name), std::make_unique<Gauge>()).first;
  return *Found->second;
}

LatencyHistogram &MetricsRegistry::latency(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto Found = Latencies.find(Name);
  if (Found == Latencies.end())
    Found = Latencies
                .emplace(std::string(Name),
                         std::make_unique<LatencyHistogram>())
                .first;
  return *Found->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  MetricsSnapshot Snapshot;
  Snapshot.Counters.reserve(Counters.size());
  for (const auto &[Name, Instrument] : Counters)
    Snapshot.Counters.emplace_back(Name, Instrument->value());
  Snapshot.Gauges.reserve(Gauges.size());
  for (const auto &[Name, Instrument] : Gauges)
    Snapshot.Gauges.emplace_back(Name, Instrument->value());
  Snapshot.Latencies.reserve(Latencies.size());
  for (const auto &[Name, Instrument] : Latencies) {
    LatencySummary Summary;
    Summary.Name = Name;
    Summary.Count = Instrument->count();
    Summary.SumNanos = Instrument->sumNanos();
    Summary.MaxNanos = Instrument->maxNanos();
    for (size_t Index = 0; Index < LatencyHistogram::BucketCount; ++Index)
      if (int64_t BucketCount = Instrument->bucketValue(Index))
        Summary.Buckets.emplace_back(unsigned(Index), BucketCount);
    Snapshot.Latencies.push_back(std::move(Summary));
  }
  // std::map iterates name-sorted already; keep the guarantee explicit.
  return Snapshot;
}

std::string MetricsSnapshot::toFileContents() const {
  std::string Text;
  Text += "# PARMONC metrics snapshot\n";
  for (const auto &[Name, Value] : Counters)
    Text += "counter " + Name + " " + std::to_string(Value) + "\n";
  for (const auto &[Name, Value] : Gauges)
    Text += "gauge " + Name + " " + formatScientific(Value) + "\n";
  for (const LatencySummary &Summary : Latencies) {
    Text += "latency " + Summary.Name + " " +
            std::to_string(Summary.Count) + " " +
            std::to_string(Summary.SumNanos) + " " +
            std::to_string(Summary.MaxNanos);
    for (const auto &[Index, BucketCount] : Summary.Buckets)
      Text += " " + std::to_string(Index) + ":" +
              std::to_string(BucketCount);
    Text += "\n";
  }
  return Text;
}

Result<MetricsSnapshot> MetricsSnapshot::fromFileContents(
    std::string_view Contents) {
  MetricsSnapshot Snapshot;
  for (std::string_view Line : splitChar(Contents, '\n')) {
    std::string_view Stripped = trim(Line);
    if (Stripped.empty() || Stripped[0] == '#')
      continue;
    auto Fields = splitWhitespace(Stripped);
    const std::string_view Kind = Fields[0];
    if (Kind == "counter" && Fields.size() == 3) {
      Result<int64_t> Value = parseInt64(Fields[2]);
      if (!Value)
        return Value.status();
      Snapshot.Counters.emplace_back(std::string(Fields[1]), Value.value());
    } else if (Kind == "gauge" && Fields.size() == 3) {
      Result<double> Value = parseDouble(Fields[2]);
      if (!Value)
        return Value.status();
      Snapshot.Gauges.emplace_back(std::string(Fields[1]), Value.value());
    } else if (Kind == "latency" && Fields.size() >= 5) {
      LatencySummary Summary;
      Summary.Name = std::string(Fields[1]);
      Result<int64_t> Count = parseInt64(Fields[2]);
      Result<int64_t> Sum = parseInt64(Fields[3]);
      Result<int64_t> Max = parseInt64(Fields[4]);
      if (!Count || !Sum || !Max)
        return parseError("malformed latency line in metrics snapshot");
      Summary.Count = Count.value();
      Summary.SumNanos = Sum.value();
      Summary.MaxNanos = Max.value();
      for (size_t Index = 5; Index < Fields.size(); ++Index) {
        auto Parts = splitChar(Fields[Index], ':');
        if (Parts.size() != 2)
          return parseError("malformed latency bucket in metrics snapshot");
        Result<uint64_t> Bucket = parseUInt64(Parts[0]);
        Result<int64_t> BucketCount = parseInt64(Parts[1]);
        if (!Bucket || !BucketCount ||
            Bucket.value() >= LatencyHistogram::BucketCount)
          return parseError("malformed latency bucket in metrics snapshot");
        Summary.Buckets.emplace_back(unsigned(Bucket.value()),
                                     BucketCount.value());
      }
      Snapshot.Latencies.push_back(std::move(Summary));
    } else {
      return parseError("unknown metrics directive '" + std::string(Kind) +
                        "'");
    }
  }
  return Snapshot;
}

/// Minimal JSON string escaping for metric names (which are ASCII by
/// convention, but a malformed name must not corrupt the document).
static std::string jsonEscape(std::string_view Text) {
  std::string Escaped;
  Escaped.reserve(Text.size());
  for (char Character : Text) {
    switch (Character) {
    case '"':
      Escaped += "\\\"";
      break;
    case '\\':
      Escaped += "\\\\";
      break;
    case '\n':
      Escaped += "\\n";
      break;
    case '\t':
      Escaped += "\\t";
      break;
    case '\r':
      Escaped += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(Character) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x",
                      unsigned(static_cast<unsigned char>(Character)));
        Escaped += Buffer;
      } else {
        Escaped += Character;
      }
    }
  }
  return Escaped;
}

std::string MetricsSnapshot::toJson() const {
  std::string Json = "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    if (!First)
      Json += ",";
    Json += "\"" + jsonEscape(Name) + "\":" + std::to_string(Value);
    First = false;
  }
  Json += "},\"gauges\":{";
  First = true;
  for (const auto &[Name, Value] : Gauges) {
    if (!First)
      Json += ",";
    Json += "\"" + jsonEscape(Name) + "\":" + formatScientific(Value);
    First = false;
  }
  Json += "},\"latencies\":{";
  First = true;
  for (const LatencySummary &Summary : Latencies) {
    if (!First)
      Json += ",";
    Json += "\"" + jsonEscape(Summary.Name) +
            "\":{\"count\":" + std::to_string(Summary.Count) +
            ",\"sum_nanos\":" + std::to_string(Summary.SumNanos) +
            ",\"max_nanos\":" + std::to_string(Summary.MaxNanos) +
            ",\"buckets\":{";
    bool FirstBucket = true;
    for (const auto &[Index, BucketCount] : Summary.Buckets) {
      if (!FirstBucket)
        Json += ",";
      Json += "\"" + std::to_string(Index) +
              "\":" + std::to_string(BucketCount);
      FirstBucket = false;
    }
    Json += "}}";
    First = false;
  }
  Json += "}}";
  return Json;
}

/// Renders a nanosecond duration with an adaptive unit for humans.
static std::string humanizeNanos(double Nanos) {
  if (Nanos < 1e3)
    return formatFixed(Nanos, 0) + " ns";
  if (Nanos < 1e6)
    return formatFixed(Nanos * 1e-3, 2) + " us";
  if (Nanos < 1e9)
    return formatFixed(Nanos * 1e-6, 2) + " ms";
  return formatFixed(Nanos * 1e-9, 3) + " s";
}

std::string MetricsSnapshot::toPrettyText() const {
  std::string Text;
  auto padTo = [](std::string Value, size_t Width) {
    if (Value.size() < Width)
      Value.append(Width - Value.size(), ' ');
    return Value;
  };

  size_t NameWidth = 4;
  for (const auto &[Name, Value] : Counters)
    NameWidth = std::max(NameWidth, Name.size());
  for (const auto &[Name, Value] : Gauges)
    NameWidth = std::max(NameWidth, Name.size());
  for (const LatencySummary &Summary : Latencies)
    NameWidth = std::max(NameWidth, Summary.Name.size());
  NameWidth += 2;

  if (!Counters.empty()) {
    Text += "counters:\n";
    for (const auto &[Name, Value] : Counters)
      Text += "  " + padTo(Name, NameWidth) + std::to_string(Value) + "\n";
  }
  if (!Gauges.empty()) {
    Text += "gauges:\n";
    for (const auto &[Name, Value] : Gauges)
      Text += "  " + padTo(Name, NameWidth) + formatScientific(Value, 6) +
              "\n";
  }
  if (!Latencies.empty()) {
    Text += "latencies:\n";
    Text += "  " + padTo("name", NameWidth) + padTo("count", 10) +
            padTo("mean", 12) + padTo("p50<=", 12) + padTo("p99<=", 12) +
            "max\n";
    for (const LatencySummary &Summary : Latencies)
      Text += "  " + padTo(Summary.Name, NameWidth) +
              padTo(std::to_string(Summary.Count), 10) +
              padTo(humanizeNanos(Summary.meanNanos()), 12) +
              padTo(humanizeNanos(double(Summary.quantileUpperNanos(0.5))),
                    12) +
              padTo(humanizeNanos(double(Summary.quantileUpperNanos(0.99))),
                    12) +
              humanizeNanos(double(Summary.MaxNanos)) + "\n";
  }
  if (Text.empty())
    Text = "(no metrics recorded)\n";
  return Text;
}

const int64_t *MetricsSnapshot::counterValue(std::string_view Name) const {
  for (const auto &Entry : Counters)
    if (Entry.first == Name)
      return &Entry.second;
  return nullptr;
}

const double *MetricsSnapshot::gaugeValue(std::string_view Name) const {
  for (const auto &Entry : Gauges)
    if (Entry.first == Name)
      return &Entry.second;
  return nullptr;
}

const LatencySummary *
MetricsSnapshot::latencySummary(std::string_view Name) const {
  for (const LatencySummary &Summary : Latencies)
    if (Summary.Name == Name)
      return &Summary;
  return nullptr;
}

} // namespace obs
} // namespace parmonc
