//===- obs/Trace.cpp - Chrome-trace-format span recording -----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/obs/Trace.h"

#include <algorithm>
#include <cstdio>

namespace parmonc {
namespace obs {

void TraceWriter::completeSpan(std::string_view Name, int Tid,
                               int64_t StartNanos, int64_t EndNanos) {
  assert(EndNanos >= StartNanos && "span must not end before it starts");
  std::lock_guard<std::mutex> Lock(Mutex);
  Event Recorded;
  Recorded.Name = std::string(Name);
  Recorded.Tid = Tid;
  Recorded.TsNanos = StartNanos;
  Recorded.DurNanos = EndNanos - StartNanos;
  Recorded.Seq = NextSeq++;
  Recorded.Phase = 'X';
  Events.push_back(std::move(Recorded));
}

void TraceWriter::instantAt(std::string_view Name, int Tid,
                            int64_t TsNanos) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Event Recorded;
  Recorded.Name = std::string(Name);
  Recorded.Tid = Tid;
  Recorded.TsNanos = TsNanos;
  Recorded.Seq = NextSeq++;
  Recorded.Phase = 'i';
  Events.push_back(std::move(Recorded));
}

size_t TraceWriter::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events.size();
}

/// Chrome expects microseconds; render nanos as "<us>.<3 digits>" so the
/// output is byte-stable and loses nothing.
static std::string formatMicros(int64_t Nanos) {
  char Buffer[40];
  std::snprintf(Buffer, sizeof(Buffer), "%lld.%03lld",
                static_cast<long long>(Nanos / 1000),
                static_cast<long long>(Nanos % 1000));
  return Buffer;
}

/// Escapes a span name for embedding in a JSON string literal.
static std::string jsonEscape(std::string_view Text) {
  std::string Escaped;
  Escaped.reserve(Text.size());
  for (char Character : Text) {
    switch (Character) {
    case '"':
      Escaped += "\\\"";
      break;
    case '\\':
      Escaped += "\\\\";
      break;
    case '\n':
      Escaped += "\\n";
      break;
    case '\t':
      Escaped += "\\t";
      break;
    case '\r':
      Escaped += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(Character) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x",
                      unsigned(static_cast<unsigned char>(Character)));
        Escaped += Buffer;
      } else {
        Escaped += Character;
      }
    }
  }
  return Escaped;
}

std::string TraceWriter::toJson() const {
  std::vector<Event> Sorted;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Sorted = Events;
  }
  // Deterministic order: time, then lane, then per-writer record order.
  // Within one lane the sequence numbers are monotone in program order, so
  // the sorted document is reproducible run-to-run whenever each lane's
  // event sequence and timestamps are.
  std::sort(Sorted.begin(), Sorted.end(),
            [](const Event &A, const Event &B) {
              if (A.TsNanos != B.TsNanos)
                return A.TsNanos < B.TsNanos;
              if (A.Tid != B.Tid)
                return A.Tid < B.Tid;
              return A.Seq < B.Seq;
            });

  std::string Json = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (size_t Index = 0; Index < Sorted.size(); ++Index) {
    const Event &Recorded = Sorted[Index];
    Json += "{\"name\":\"" + jsonEscape(Recorded.Name) +
            "\",\"cat\":\"parmonc\",\"ph\":\"";
    Json += Recorded.Phase;
    Json += "\",\"ts\":" + formatMicros(Recorded.TsNanos);
    if (Recorded.Phase == 'X')
      Json += ",\"dur\":" + formatMicros(Recorded.DurNanos);
    else
      Json += ",\"s\":\"t\"";
    Json += ",\"pid\":0,\"tid\":" + std::to_string(Recorded.Tid) + "}";
    if (Index + 1 < Sorted.size())
      Json += ",";
    Json += "\n";
  }
  Json += "]}\n";
  return Json;
}

} // namespace obs
} // namespace parmonc
