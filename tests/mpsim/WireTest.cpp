//===- tests/mpsim/WireTest.cpp - Frame codec property/fuzz tests ---------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The wire codec carries every cross-process message of the Processes
// transport, so its contract is tested the way ResultsStore's sealing is:
// arbitrary payloads round-trip bit-exactly through arbitrary read()
// chunkings, and every corruption — truncation, bit flips, length-lying
// headers, unknown kinds — is rejected with a clean Status, never a crash
// and never a partial frame.
//
//===----------------------------------------------------------------------===//

#include "parmonc/mpsim/Wire.h"

#include "parmonc/support/Checksum.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace parmonc {
namespace {

/// Deterministic 64-bit LCG for the fuzz loops: fixed seed, byte-stable
/// test inputs on every platform and run.
class FuzzRandom {
public:
  explicit FuzzRandom(uint64_t Seed) : State(Seed | 1) {}

  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 17;
  }

  /// Uniform-ish draw in [0, Bound).
  uint64_t below(uint64_t Bound) { return next() % Bound; }

private:
  uint64_t State;
};

Frame makeRandomFrame(FuzzRandom &Random) {
  Frame Made;
  Made.Kind = FrameKind(1 + Random.below(8));
  Made.A = int32_t(Random.next());
  Made.B = int32_t(Random.next());
  Made.C = int32_t(Random.next());
  Made.Payload.resize(Random.below(2048));
  for (uint8_t &Byte : Made.Payload)
    Byte = uint8_t(Random.next());
  return Made;
}

bool sameFrame(const Frame &Left, const Frame &Right) {
  return Left.Kind == Right.Kind && Left.A == Right.A &&
         Left.B == Right.B && Left.C == Right.C &&
         Left.Payload == Right.Payload;
}

TEST(Wire, RoundTripsArbitraryFramesThroughArbitraryChunking) {
  FuzzRandom Random(0x9e3779b97f4a7c15ULL);
  std::vector<Frame> Sent;
  std::vector<uint8_t> Stream;
  for (int Index = 0; Index < 200; ++Index) {
    Sent.push_back(makeRandomFrame(Random));
    const std::vector<uint8_t> Encoded = encodeFrame(Sent.back());
    Stream.insert(Stream.end(), Encoded.begin(), Encoded.end());
  }

  // Feed the whole stream in random-size chunks — exactly what a socket
  // read loop sees — and require every frame back, in order, bit-exact.
  FrameDecoder Decoder;
  std::vector<Frame> Received;
  size_t Offset = 0;
  while (Offset < Stream.size()) {
    const size_t Chunk =
        std::min(Stream.size() - Offset, size_t(1 + Random.below(97)));
    Decoder.feed(Stream.data() + Offset, Chunk);
    Offset += Chunk;
    for (;;) {
      Result<std::optional<Frame>> Next = Decoder.next();
      ASSERT_TRUE(Next) << Next.status().message();
      if (!Next.value())
        break;
      Received.push_back(std::move(*Next.value()));
    }
  }
  ASSERT_EQ(Received.size(), Sent.size());
  for (size_t Index = 0; Index < Sent.size(); ++Index)
    EXPECT_TRUE(sameFrame(Sent[Index], Received[Index]))
        << "frame " << Index << " did not round-trip";
  EXPECT_EQ(Decoder.bufferedBytes(), 0u);
}

TEST(Wire, RoundTripsEmptyAndLargePayloads) {
  for (const size_t Size : {size_t(0), size_t(1), size_t(200'000)}) {
    Frame Outgoing;
    Outgoing.Kind = FrameKind::Data;
    Outgoing.A = -3;
    Outgoing.B = 0;
    Outgoing.C = 1 << 20;
    Outgoing.Payload.assign(Size, uint8_t(0xa5));
    const std::vector<uint8_t> Encoded = encodeFrame(Outgoing);
    FrameDecoder Decoder;
    Decoder.feed(Encoded.data(), Encoded.size());
    Result<std::optional<Frame>> Next = Decoder.next();
    ASSERT_TRUE(Next) << Next.status().message();
    ASSERT_TRUE(Next.value());
    EXPECT_TRUE(sameFrame(Outgoing, *Next.value()));
  }
}

TEST(Wire, TruncatedFrameStallsUntilTheLastByteArrives) {
  Frame Outgoing;
  Outgoing.Kind = FrameKind::Goodbye;
  Outgoing.A = 2;
  Outgoing.Payload = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> Encoded = encodeFrame(Outgoing);

  // Byte-at-a-time delivery: no prefix may ever yield a frame or an error.
  FrameDecoder Decoder;
  for (size_t Fed = 0; Fed + 1 < Encoded.size(); ++Fed) {
    Decoder.feed(&Encoded[Fed], 1);
    Result<std::optional<Frame>> Next = Decoder.next();
    ASSERT_TRUE(Next) << "clean truncation must not error at byte " << Fed;
    EXPECT_FALSE(Next.value()) << "partial frame surfaced at byte " << Fed;
  }
  Decoder.feed(&Encoded[Encoded.size() - 1], 1);
  Result<std::optional<Frame>> Next = Decoder.next();
  ASSERT_TRUE(Next);
  ASSERT_TRUE(Next.value());
  EXPECT_TRUE(sameFrame(Outgoing, *Next.value()));
}

TEST(Wire, EverySingleBitFlipIsRejectedNeverMisdecoded) {
  Frame Outgoing;
  Outgoing.Kind = FrameKind::Data;
  Outgoing.A = 1;
  Outgoing.B = 0;
  Outgoing.C = 7;
  Outgoing.Payload = {0x10, 0x20, 0x30, 0x40, 0x55, 0xaa};
  const std::vector<uint8_t> Clean = encodeFrame(Outgoing);

  for (size_t Byte = 0; Byte < Clean.size(); ++Byte) {
    for (int Bit = 0; Bit < 8; ++Bit) {
      std::vector<uint8_t> Flipped = Clean;
      Flipped[Byte] = uint8_t(Flipped[Byte] ^ (1u << Bit));
      FrameDecoder Decoder;
      Decoder.feed(Flipped.data(), Flipped.size());
      Result<std::optional<Frame>> Next = Decoder.next();
      // A flip in the length field may legitimately stall the decoder
      // (the header now promises more bytes); anything else must be a
      // clean error. What may NEVER happen is a decoded frame — CRC-32
      // catches every single-bit error in the body, the magic guards the
      // header.
      if (Next) {
        EXPECT_FALSE(Next.value())
            << "bit flip at byte " << Byte << " bit " << Bit
            << " produced a frame";
      }
    }
  }
}

TEST(Wire, LengthLyingHeaderIsRejectedBeforeAllocation) {
  // Oversized claim: 256 MiB + 1 — rejected from the 12 header bytes
  // alone, long before any quarter-gigabyte buffer could be attempted.
  std::vector<uint8_t> Header;
  auto appendWord = [&Header](uint32_t Value) {
    for (int Byte = 0; Byte < 4; ++Byte)
      Header.push_back(uint8_t(Value >> (8 * Byte)));
  };
  appendWord(FrameMagic);
  appendWord(MaxFrameBodyBytes + 1);
  appendWord(0xdeadbeef);
  FrameDecoder Decoder;
  Decoder.feed(Header.data(), Header.size());
  Result<std::optional<Frame>> Next = Decoder.next();
  ASSERT_FALSE(Next);
  EXPECT_NE(Next.status().message().find("lying"), std::string::npos);

  // Undersized claim: a body shorter than its own fixed prefix.
  Header.clear();
  appendWord(FrameMagic);
  appendWord(5);
  appendWord(0);
  FrameDecoder Short;
  Short.feed(Header.data(), Header.size());
  EXPECT_FALSE(Short.next());
}

TEST(Wire, BadMagicPoisonsTheDecoderPermanently) {
  std::vector<uint8_t> Garbage(32, 0x5a);
  FrameDecoder Decoder;
  Decoder.feed(Garbage.data(), Garbage.size());
  Result<std::optional<Frame>> First = Decoder.next();
  ASSERT_FALSE(First);
  EXPECT_NE(First.status().message().find("magic"), std::string::npos);

  // A framing error leaves no resynchronization point: even a pristine
  // frame fed afterwards must keep returning the original error.
  Frame Valid;
  Valid.Kind = FrameKind::Hello;
  const std::vector<uint8_t> Encoded = encodeFrame(Valid);
  Decoder.feed(Encoded.data(), Encoded.size());
  Result<std::optional<Frame>> Second = Decoder.next();
  ASSERT_FALSE(Second);
  EXPECT_EQ(Second.status().message(), First.status().message());
}

TEST(Wire, UnknownFrameKindIsRejected) {
  // Hand-build a frame whose CRC is honest but whose kind byte (99) names
  // no protocol message: framing is fine, content is not — still fatal.
  std::vector<uint8_t> Encoded = encodeFrame(Frame{});
  Encoded[12] = 99; // the kind byte, first of the body
  const uint32_t HonestCrc = crc32(std::string_view(
      reinterpret_cast<const char *>(Encoded.data() + 12),
      Encoded.size() - 12));
  for (int Byte = 0; Byte < 4; ++Byte)
    Encoded[size_t(8 + Byte)] = uint8_t(HonestCrc >> (8 * Byte));
  FrameDecoder Decoder;
  Decoder.feed(Encoded.data(), Encoded.size());
  Result<std::optional<Frame>> Next = Decoder.next();
  ASSERT_FALSE(Next);
  EXPECT_NE(Next.status().message().find("unknown frame kind"),
            std::string::npos);
}

TEST(Wire, DecoderReclaimsConsumedBuffer) {
  Frame Outgoing;
  Outgoing.Kind = FrameKind::Data;
  Outgoing.Payload.assign(3000, 0x42);
  const std::vector<uint8_t> Encoded = encodeFrame(Outgoing);
  FrameDecoder Decoder;
  for (int Round = 0; Round < 50; ++Round) {
    Decoder.feed(Encoded.data(), Encoded.size());
    Result<std::optional<Frame>> Next = Decoder.next();
    ASSERT_TRUE(Next);
    ASSERT_TRUE(Next.value());
    // Everything consumed: the next feed() starts from a reclaimed
    // buffer, so a long-lived stream cannot accumulate its history.
    EXPECT_EQ(Decoder.bufferedBytes(), 0u);
  }
}

} // namespace
} // namespace parmonc
