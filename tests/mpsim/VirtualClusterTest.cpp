//===- tests/mpsim/VirtualClusterTest.cpp - DES cluster model tests -------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/mpsim/VirtualCluster.h"

#include <gtest/gtest.h>

#include <numeric>

namespace parmonc {
namespace {

VirtualClusterConfig paperConfig(int Processors) {
  VirtualClusterConfig Config;
  Config.ProcessorCount = Processors;
  return Config; // defaults are the paper calibration
}

TEST(VirtualClusterConfig, DefaultsMatchPaperCalibration) {
  VirtualClusterConfig Config;
  EXPECT_DOUBLE_EQ(Config.MeanRealizationSeconds, 7.7);
  EXPECT_DOUBLE_EQ(Config.MessageBytes, 120.0e3);
  EXPECT_EQ(Config.RealizationsPerSend, 1);
  EXPECT_TRUE(Config.validate().isOk());
}

TEST(VirtualClusterConfig, RejectsBadValues) {
  VirtualClusterConfig Config;
  Config.ProcessorCount = 0;
  EXPECT_FALSE(Config.validate().isOk());
  Config = VirtualClusterConfig();
  Config.MeanRealizationSeconds = -1;
  EXPECT_FALSE(Config.validate().isOk());
  Config = VirtualClusterConfig();
  Config.RealizationJitter = 0.9;
  EXPECT_FALSE(Config.validate().isOk());
  Config = VirtualClusterConfig();
  Config.RealizationsPerSend = 0;
  EXPECT_FALSE(Config.validate().isOk());
}

TEST(VirtualCluster, RejectsEmptyOrInvalidTargets) {
  EXPECT_FALSE(runVirtualCluster(paperConfig(1), {}).isOk());
  EXPECT_FALSE(runVirtualCluster(paperConfig(1), {0}).isOk());
  EXPECT_FALSE(runVirtualCluster(paperConfig(1), {100, -5}).isOk());
}

TEST(VirtualCluster, SingleProcessorNoJitterIsArithmetic) {
  VirtualClusterConfig Config = paperConfig(1);
  Config.RealizationJitter = 0.0;
  Result<VirtualClusterResult> Outcome = runVirtualCluster(Config, {10});
  ASSERT_TRUE(Outcome.isOk());
  // 10 realizations at 7.7 s, plus transfer + processing + save of the
  // last message: the dominant term is 77 s and overhead is < 0.2 s in
  // total; collector processing of earlier messages overlaps compute.
  EXPECT_GT(Outcome.value().CompletionSeconds[0], 77.0);
  EXPECT_LT(Outcome.value().CompletionSeconds[0], 77.5);
  EXPECT_EQ(Outcome.value().MessagesProcessed, 10);
}

TEST(VirtualCluster, CompletionTimeIsMonotoneInVolume) {
  Result<VirtualClusterResult> Outcome =
      runVirtualCluster(paperConfig(8), {100, 400, 700, 1000});
  ASSERT_TRUE(Outcome.isOk());
  const auto &Times = Outcome.value().CompletionSeconds;
  for (size_t Index = 1; Index < Times.size(); ++Index)
    EXPECT_GT(Times[Index], Times[Index - 1]);
}

TEST(VirtualCluster, TargetOrderDoesNotMatter) {
  Result<VirtualClusterResult> Ascending =
      runVirtualCluster(paperConfig(8), {100, 1000});
  Result<VirtualClusterResult> Descending =
      runVirtualCluster(paperConfig(8), {1000, 100});
  ASSERT_TRUE(Ascending.isOk() && Descending.isOk());
  EXPECT_DOUBLE_EQ(Ascending.value().CompletionSeconds[0],
                   Descending.value().CompletionSeconds[1]);
  EXPECT_DOUBLE_EQ(Ascending.value().CompletionSeconds[1],
                   Descending.value().CompletionSeconds[0]);
}

TEST(VirtualCluster, IsDeterministicForASeed) {
  Result<VirtualClusterResult> First =
      runVirtualCluster(paperConfig(32), {5000});
  Result<VirtualClusterResult> Second =
      runVirtualCluster(paperConfig(32), {5000});
  ASSERT_TRUE(First.isOk() && Second.isOk());
  EXPECT_DOUBLE_EQ(First.value().CompletionSeconds[0],
                   Second.value().CompletionSeconds[0]);
}

TEST(VirtualCluster, SpeedupIsNearlyLinear) {
  // The paper's headline claim (Fig. 2): Tcomp scales ~1/M even when every
  // realization triggers an exchange. Check 1 -> 8 -> 64 at fixed L.
  const std::vector<int64_t> Volume{2048};
  Result<VirtualClusterResult> M1 = runVirtualCluster(paperConfig(1), Volume);
  Result<VirtualClusterResult> M8 = runVirtualCluster(paperConfig(8), Volume);
  Result<VirtualClusterResult> M64 =
      runVirtualCluster(paperConfig(64), Volume);
  ASSERT_TRUE(M1.isOk() && M8.isOk() && M64.isOk());
  const double Speedup8 =
      M1.value().CompletionSeconds[0] / M8.value().CompletionSeconds[0];
  const double Speedup64 =
      M1.value().CompletionSeconds[0] / M64.value().CompletionSeconds[0];
  EXPECT_NEAR(Speedup8, 8.0, 0.5);
  EXPECT_NEAR(Speedup64, 64.0, 5.0);
}

TEST(VirtualCluster, CollectorStaysUnsaturatedAtPaperScale) {
  // 512 processors, send-per-realization: the collector must still be idle
  // most of the time (processing 512 messages per 7.7 s at 2 ms each is
  // ~13% duty cycle), or the paper's "neglect the exchanges" would break.
  Result<VirtualClusterResult> Outcome =
      runVirtualCluster(paperConfig(512), {20000});
  ASSERT_TRUE(Outcome.isOk());
  EXPECT_LT(Outcome.value().CollectorBusyFraction, 0.35);
  EXPECT_LT(Outcome.value().MeanCollectorQueueDelay, 0.1);
}

TEST(VirtualCluster, PerWorkerVolumesRoughlyBalance) {
  Result<VirtualClusterResult> Outcome =
      runVirtualCluster(paperConfig(16), {16000});
  ASSERT_TRUE(Outcome.isOk());
  const auto &Volumes = Outcome.value().PerWorkerVolumes;
  ASSERT_EQ(Volumes.size(), 16u);
  const int64_t Total =
      std::accumulate(Volumes.begin(), Volumes.end(), int64_t(0));
  EXPECT_EQ(Total, 16000);
  for (int64_t PerWorker : Volumes) {
    EXPECT_GT(PerWorker, 900);
    EXPECT_LT(PerWorker, 1100);
  }
}

TEST(VirtualCluster, JitterMakesVolumesDiverge) {
  // §2.2: "the sample volumes l_m may be different ... different
  // performances of processors". With jitter on, the final volumes must
  // not all be exactly equal.
  VirtualClusterConfig Config = paperConfig(8);
  Config.RealizationJitter = 0.2;
  Result<VirtualClusterResult> Outcome = runVirtualCluster(Config, {4001});
  ASSERT_TRUE(Outcome.isOk());
  const auto &Volumes = Outcome.value().PerWorkerVolumes;
  const bool AllEqual =
      std::all_of(Volumes.begin(), Volumes.end(),
                  [&](int64_t Volume) { return Volume == Volumes[0]; });
  EXPECT_FALSE(AllEqual);
}

TEST(VirtualCluster, BatchedSendsReduceMessageCount) {
  VirtualClusterConfig Batched = paperConfig(8);
  Batched.RealizationsPerSend = 10;
  Result<VirtualClusterResult> PerRealization =
      runVirtualCluster(paperConfig(8), {4000});
  Result<VirtualClusterResult> PerTen = runVirtualCluster(Batched, {4000});
  ASSERT_TRUE(PerRealization.isOk() && PerTen.isOk());
  EXPECT_EQ(PerRealization.value().MessagesProcessed, 4000);
  EXPECT_LE(PerTen.value().MessagesProcessed, 4000 / 10 + 8);
  // Batching must not slow completion down.
  EXPECT_LE(PerTen.value().CompletionSeconds[0],
            PerRealization.value().CompletionSeconds[0] * 1.02);
}

TEST(VirtualCluster, BytesAccountingMatchesMessageCount) {
  Result<VirtualClusterResult> Outcome =
      runVirtualCluster(paperConfig(4), {1000});
  ASSERT_TRUE(Outcome.isOk());
  EXPECT_DOUBLE_EQ(Outcome.value().BytesTransferred,
                   double(Outcome.value().MessagesProcessed) * 120.0e3);
}

TEST(VirtualCluster, SlowCollectorBecomesTheBottleneck) {
  // Ablation guard: if collector processing cost exceeded τ/M the linear
  // speedup must break down — the model has to show that, or it could not
  // be credited for showing the opposite.
  VirtualClusterConfig Saturated = paperConfig(64);
  Saturated.CollectorProcessSeconds = 1.0; // 64 msgs per 7.7 s >> capacity
  Result<VirtualClusterResult> Slow = runVirtualCluster(Saturated, {2000});
  Result<VirtualClusterResult> Fast =
      runVirtualCluster(paperConfig(64), {2000});
  ASSERT_TRUE(Slow.isOk() && Fast.isOk());
  EXPECT_GT(Slow.value().CompletionSeconds[0],
            Fast.value().CompletionSeconds[0] * 5.0);
  EXPECT_GT(Slow.value().CollectorBusyFraction, 0.9);
}

TEST(VirtualCluster, SpeedFactorsValidate) {
  VirtualClusterConfig Config = paperConfig(4);
  Config.SpeedFactors = {1.0, 1.0}; // wrong count
  EXPECT_FALSE(Config.validate().isOk());
  Config.SpeedFactors = {1.0, 1.0, -1.0, 1.0};
  EXPECT_FALSE(Config.validate().isOk());
  Config.SpeedFactors = {1.0, 1.0, 2.0, 0.5};
  EXPECT_TRUE(Config.validate().isOk());
}

TEST(VirtualCluster, SlowProcessorsContributeProportionallyLess) {
  // §2.2: volumes l_m diverge with processor performance, and the
  // asynchronous design absorbs it without load balancing. Make half the
  // processors 2x slower: they should produce about half as much, and the
  // cluster must still beat the homogeneous-slow configuration.
  VirtualClusterConfig Mixed = paperConfig(8);
  Mixed.RealizationJitter = 0.0;
  Mixed.SpeedFactors = {1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0};
  Result<VirtualClusterResult> Outcome = runVirtualCluster(Mixed, {6000});
  ASSERT_TRUE(Outcome.isOk());
  const auto &Volumes = Outcome.value().PerWorkerVolumes;
  double FastTotal = 0.0, SlowTotal = 0.0;
  for (int Worker = 0; Worker < 8; ++Worker)
    (Worker < 4 ? FastTotal : SlowTotal) += double(Volumes[size_t(Worker)]);
  EXPECT_NEAR(FastTotal / SlowTotal, 2.0, 0.05);

  // Effective throughput equals the sum of speeds (4*1 + 4*0.5 = 6
  // processor-equivalents): completion sits between all-fast (8) and
  // all-slow (4) homogeneous clusters.
  VirtualClusterConfig AllFast = paperConfig(8);
  AllFast.RealizationJitter = 0.0;
  VirtualClusterConfig AllSlow = paperConfig(4);
  AllSlow.RealizationJitter = 0.0;
  const double MixedTime = Outcome.value().CompletionSeconds[0];
  const double FastTime =
      runVirtualCluster(AllFast, {6000}).value().CompletionSeconds[0];
  const double SlowTime =
      runVirtualCluster(AllSlow, {6000}).value().CompletionSeconds[0];
  EXPECT_GT(MixedTime, FastTime);
  EXPECT_LT(MixedTime, SlowTime);
  // Quantitatively: ~ (8/6) * FastTime.
  EXPECT_NEAR(MixedTime, FastTime * 8.0 / 6.0, FastTime * 0.05);
}

} // namespace
} // namespace parmonc
