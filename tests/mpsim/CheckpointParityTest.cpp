//===- tests/mpsim/CheckpointParityTest.cpp - Sharded ckpt vs. wire -------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The sharded-checkpoint extension of the transport differential suite:
// every scenario runs once over the in-process thread fabric (the oracle)
// and once over forked workers and CRC-framed sockets, with
// CheckpointShards on — and the entire parmonc_data/ tree, INCLUDING the
// ckpt/ manifest and every sealed shard, must come out byte-identical.
// The matrix covers the synchronous commit path, the background writer,
// the §3.2 resume chain restored from shards, and a collector killed at
// its save point whose surviving manifest generation feeds the restore.
//
// Excluded from comparison, as in TransportDifferentialTest.cpp:
//   *.prev      – rotation depth is a scheduling detail, not a result;
//   metrics.dat – the process transport adds transport.* counters.
//
//===----------------------------------------------------------------------===//

#include "parmonc/ckpt/CheckpointStore.h"
#include "parmonc/core/Runner.h"
#include "parmonc/fault/FaultPlan.h"
#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>

namespace parmonc {
namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("parmonc_ckptpar_" + Name + "_" + std::to_string(Counter++)))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
  const std::string &path() const { return Path; }

private:
  static inline int Counter = 0;
  std::string Path;
};

void uniformRealization(RandomSource &Source, double *Out) {
  Out[0] = Source.nextUniform();
}

RunConfig shardedConfig(const std::string &WorkDir, TransportKind Kind,
                        bool Async) {
  RunConfig Config;
  Config.MaxSampleVolume = 120;
  Config.ProcessorCount = 3;
  Config.DeterministicSchedule = true; // fixed per-rank quotas
  Config.Transport = Kind;
  Config.WorkDir = WorkDir;
  Config.AveragePeriodNanos = 3'600'000'000'000; // final save only
  Config.CheckpointShards = true;
  Config.CheckpointAsync = Async;
  if (Async)
    Config.CheckpointQueueDepth = 2;
  return Config;
}

/// Every file under WorkDir/parmonc_data as relative path -> raw bytes,
/// minus `.prev` generations and metrics.dat (see the file header).
std::map<std::string, std::string> snapshotTree(const std::string &WorkDir) {
  namespace fs = std::filesystem;
  std::map<std::string, std::string> Tree;
  const fs::path Root = fs::path(WorkDir) / "parmonc_data";
  if (!fs::exists(Root))
    return Tree;
  for (const fs::directory_entry &Entry :
       fs::recursive_directory_iterator(Root)) {
    if (!Entry.is_regular_file())
      continue;
    const std::string Name = Entry.path().filename().string();
    if (Name.size() > 5 && Name.rfind(".prev") == Name.size() - 5)
      continue;
    if (Name == "metrics.dat")
      continue;
    const std::string Relative =
        fs::relative(Entry.path(), Root).generic_string();
    Tree[Relative] =
        readFileToString(Entry.path().string()).valueOr("<unreadable>");
  }
  return Tree;
}

void expectIdenticalTrees(const std::map<std::string, std::string> &Oracle,
                          const std::map<std::string, std::string> &Wire) {
  for (const auto &[Path, Bytes] : Oracle) {
    const auto Match = Wire.find(Path);
    if (Match == Wire.end()) {
      ADD_FAILURE() << "the process run never wrote " << Path;
      continue;
    }
    EXPECT_EQ(Bytes, Match->second)
        << Path << " differs between thread and process transports";
  }
  for (const auto &[Path, Bytes] : Wire)
    EXPECT_TRUE(Oracle.count(Path))
        << "the process run wrote an extra file: " << Path;
  EXPECT_FALSE(Oracle.empty()) << "oracle run produced no files";
}

/// The checkpoint-relevant slice of the report, compared field by field.
void expectIdenticalReports(const RunReport &Oracle, const RunReport &Wire) {
  EXPECT_EQ(Oracle.TotalSampleVolume, Wire.TotalSampleVolume);
  EXPECT_EQ(Oracle.NewSampleVolume, Wire.NewSampleVolume);
  EXPECT_EQ(Oracle.MaxAbsoluteError, Wire.MaxAbsoluteError);
  EXPECT_EQ(Oracle.SavePointCount, Wire.SavePointCount);
  EXPECT_EQ(Oracle.PerProcessorVolumes, Wire.PerProcessorVolumes);
  EXPECT_EQ(Oracle.SimulatedCrash, Wire.SimulatedCrash);
  EXPECT_EQ(Oracle.ResumedFromBackup, Wire.ResumedFromBackup);
  EXPECT_EQ(Oracle.RestoredFromShards, Wire.RestoredFromShards);
  EXPECT_EQ(Oracle.CoalescedCheckpoints, Wire.CoalescedCheckpoints);
}

RunReport runSharded(const std::string &WorkDir, TransportKind Kind,
                     bool Async,
                     const std::function<void(RunConfig &)> &Shape = {}) {
  ManualClock Frozen(1'000'000);
  RunConfig Config = shardedConfig(WorkDir, Kind, Async);
  if (Shape)
    Shape(Config);
  Result<RunReport> Report =
      runSimulation(uniformRealization, Config, &Frozen);
  EXPECT_TRUE(Report.isOk()) << Report.status().toString();
  return Report.valueOr(RunReport{});
}

/// Counts tree entries under ckpt/shards/ named rank<r>_*.
int rankShardCount(const std::map<std::string, std::string> &Tree) {
  int Count = 0;
  for (const auto &[Path, Bytes] : Tree)
    if (Path.rfind("ckpt/shards/rank", 0) == 0)
      ++Count;
  return Count;
}

TEST(CheckpointParity, SyncShardedTreeIsByteIdenticalAcrossTransports) {
  ScratchDir Threads("sync_thr"), Processes("sync_proc");
  const RunReport Oracle =
      runSharded(Threads.path(), TransportKind::Threads, /*Async=*/false);
  const RunReport Wire =
      runSharded(Processes.path(), TransportKind::Processes, /*Async=*/false);

  EXPECT_EQ(Oracle.TotalSampleVolume, 120);
  expectIdenticalReports(Oracle, Wire);

  // The sharded tree replaces checkpoint.dat: a sealed manifest, one
  // merged-base shard, one moment shard per worker rank — and the SAME
  // bytes whether the subtotals arrived over memory or over the wire.
  const auto OracleTree = snapshotTree(Threads.path());
  EXPECT_TRUE(OracleTree.count("ckpt/manifest.dat"));
  EXPECT_EQ(rankShardCount(OracleTree), 3);
  EXPECT_FALSE(OracleTree.count("checkpoint.dat"));
  expectIdenticalTrees(OracleTree, snapshotTree(Processes.path()));
}

TEST(CheckpointParity, BackgroundWriterTreeMatchesSyncAcrossTransports) {
  // Three-way matrix closed transitively: async-threads vs async-processes
  // byte-identical, and async-threads vs SYNC-threads byte-identical — so
  // the background writer changes scheduling, never bytes, on either
  // backend.
  ScratchDir AsyncThreads("async_thr"), AsyncProcesses("async_proc"),
      SyncThreads("async_syncref");
  const RunReport Oracle = runSharded(AsyncThreads.path(),
                                      TransportKind::Threads, /*Async=*/true);
  const RunReport Wire = runSharded(
      AsyncProcesses.path(), TransportKind::Processes, /*Async=*/true);
  const RunReport SyncOracle = runSharded(
      SyncThreads.path(), TransportKind::Threads, /*Async=*/false);

  // A final-save-only cadence enqueues exactly one request, so the
  // bounded queue never coalesces and the writer drains at shutdown.
  EXPECT_EQ(Oracle.CoalescedCheckpoints, 0);
  expectIdenticalReports(Oracle, Wire);
  const auto OracleTree = snapshotTree(AsyncThreads.path());
  expectIdenticalTrees(OracleTree, snapshotTree(AsyncProcesses.path()));
  expectIdenticalTrees(OracleTree, snapshotTree(SyncThreads.path()));
}

TEST(CheckpointParity, ShardedResumeChainIsByteIdenticalAcrossTransports) {
  // The §3.2 resumed-experiment chain restored FROM SHARDS: sequence 0
  // commits a manifest, sequence 1 merges base + rank shards back into
  // its starting state — once per transport, final trees diffed.
  const auto runChain = [](const std::string &WorkDir, TransportKind Kind) {
    runSharded(WorkDir, Kind, /*Async=*/false);
    return runSharded(WorkDir, Kind, /*Async=*/false,
                      [](RunConfig &Config) {
                        Config.Resume = true;
                        Config.SequenceNumber = 1;
                        Config.MaxSampleVolume = 60;
                      });
  };
  ScratchDir Threads("chain_thr"), Processes("chain_proc");
  const RunReport Oracle = runChain(Threads.path(), TransportKind::Threads);
  const RunReport Wire = runChain(Processes.path(), TransportKind::Processes);

  EXPECT_EQ(Oracle.TotalSampleVolume, 180);
  EXPECT_EQ(Oracle.NewSampleVolume, 60);
  EXPECT_TRUE(Oracle.RestoredFromShards);
  EXPECT_FALSE(Oracle.ResumedFromBackup);
  expectIdenticalReports(Oracle, Wire);
  expectIdenticalTrees(snapshotTree(Threads.path()),
                       snapshotTree(Processes.path()));
}

TEST(CheckpointParity, KillAtSavePointThenRestoreMatrixIsByteIdentical) {
  // The kill-at-save-point -> restore matrix: sequence 0 commits
  // generation 1; sequence 1's collector dies AT its save point, before
  // any write, so the surviving manifest still holds sequence 0's bytes;
  // sequence 2 restores from those shards and finishes. Each transport
  // walks the whole chain, and the final trees must agree byte for byte.
  const auto runChain = [](const std::string &WorkDir, TransportKind Kind) {
    runSharded(WorkDir, Kind, /*Async=*/false);
    const std::string Manifest =
        WorkDir + "/parmonc_data/ckpt/manifest.dat";
    const std::string BeforeKill =
        readFileToString(Manifest).valueOr("<missing>");

    fault::FaultPlan Plan;
    Plan.CollectorCrash.AtFinalSave = true;
    const RunReport Killed =
        runSharded(WorkDir, Kind, /*Async=*/false,
                   [&Plan](RunConfig &Config) {
                     Config.Resume = true;
                     Config.SequenceNumber = 1;
                     Config.MaxSampleVolume = 60;
                     Config.Faults = &Plan;
                   });
    EXPECT_TRUE(Killed.SimulatedCrash);
    EXPECT_EQ(Killed.SavePointCount, 0);
    // The two-phase commit never reached rename: generation 1 is intact.
    EXPECT_EQ(readFileToString(Manifest).valueOr("<gone>"), BeforeKill);

    return runSharded(WorkDir, Kind, /*Async=*/false,
                      [](RunConfig &Config) {
                        Config.Resume = true;
                        Config.SequenceNumber = 2;
                        Config.MaxSampleVolume = 60;
                      });
  };
  ScratchDir Threads("kill_thr"), Processes("kill_proc");
  const RunReport Oracle = runChain(Threads.path(), TransportKind::Threads);
  const RunReport Wire = runChain(Processes.path(), TransportKind::Processes);

  // The killed sequence contributed nothing: 120 from sequence 0 plus 60
  // from sequence 2, restored from the sharded generation on both
  // backends.
  EXPECT_EQ(Oracle.TotalSampleVolume, 180);
  EXPECT_EQ(Oracle.NewSampleVolume, 60);
  EXPECT_TRUE(Oracle.RestoredFromShards);
  EXPECT_FALSE(Oracle.ResumedFromBackup);
  expectIdenticalReports(Oracle, Wire);
  expectIdenticalTrees(snapshotTree(Threads.path()),
                       snapshotTree(Processes.path()));
}

} // namespace
} // namespace parmonc
