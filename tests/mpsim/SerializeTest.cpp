//===- tests/mpsim/SerializeTest.cpp - Archive round-trip tests -----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/mpsim/Serialize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace parmonc {
namespace {

TEST(Serialize, U64RoundTrip) {
  ByteWriter Writer;
  Writer.writeU64(0);
  Writer.writeU64(~0ull);
  Writer.writeU64(0x0123456789abcdefull);
  ByteReader Reader(Writer.bytes());
  EXPECT_EQ(Reader.readU64().value(), 0u);
  EXPECT_EQ(Reader.readU64().value(), ~0ull);
  EXPECT_EQ(Reader.readU64().value(), 0x0123456789abcdefull);
  EXPECT_TRUE(Reader.atEnd());
}

TEST(Serialize, I64RoundTripNegative) {
  ByteWriter Writer;
  Writer.writeI64(-123456789);
  Writer.writeI64(std::numeric_limits<int64_t>::min());
  ByteReader Reader(Writer.bytes());
  EXPECT_EQ(Reader.readI64().value(), -123456789);
  EXPECT_EQ(Reader.readI64().value(), std::numeric_limits<int64_t>::min());
}

TEST(Serialize, U32RoundTrip) {
  ByteWriter Writer;
  Writer.writeU32(0xdeadbeefu);
  ByteReader Reader(Writer.bytes());
  EXPECT_EQ(Reader.readU32().value(), 0xdeadbeefu);
  EXPECT_TRUE(Reader.atEnd());
}

TEST(Serialize, DoubleRoundTripBitExact) {
  ByteWriter Writer;
  const double Values[] = {0.0, -0.0, 1.5, -3.25e300,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(), 7.7};
  for (double Value : Values)
    Writer.writeDouble(Value);
  ByteReader Reader(Writer.bytes());
  for (double Value : Values) {
    Result<double> Read = Reader.readDouble();
    ASSERT_TRUE(Read.isOk());
    EXPECT_EQ(std::signbit(Read.value()), std::signbit(Value));
    EXPECT_EQ(Read.value(), Value);
  }
}

TEST(Serialize, NanRoundTripsAsNan) {
  ByteWriter Writer;
  Writer.writeDouble(std::numeric_limits<double>::quiet_NaN());
  ByteReader Reader(Writer.bytes());
  EXPECT_TRUE(std::isnan(Reader.readDouble().value()));
}

TEST(Serialize, DoubleVectorRoundTrip) {
  ByteWriter Writer;
  std::vector<double> Values{1.0, 2.5, -7.25, 1e-300};
  Writer.writeDoubleVector(Values);
  ByteReader Reader(Writer.bytes());
  Result<std::vector<double>> Read = Reader.readDoubleVector();
  ASSERT_TRUE(Read.isOk());
  EXPECT_EQ(Read.value(), Values);
  EXPECT_TRUE(Reader.atEnd());
}

TEST(Serialize, EmptyVectorRoundTrip) {
  ByteWriter Writer;
  Writer.writeDoubleVector({});
  ByteReader Reader(Writer.bytes());
  EXPECT_TRUE(Reader.readDoubleVector().value().empty());
}

TEST(Serialize, StringRoundTrip) {
  ByteWriter Writer;
  Writer.writeString("hello parmonc");
  Writer.writeString("");
  Writer.writeString(std::string("embedded\0null", 13));
  ByteReader Reader(Writer.bytes());
  EXPECT_EQ(Reader.readString().value(), "hello parmonc");
  EXPECT_EQ(Reader.readString().value(), "");
  EXPECT_EQ(Reader.readString().value(), std::string("embedded\0null", 13));
  EXPECT_TRUE(Reader.atEnd());
}

TEST(Serialize, MixedSequenceRoundTrip) {
  ByteWriter Writer;
  Writer.writeU64(7);
  Writer.writeDouble(3.5);
  Writer.writeString("tag");
  Writer.writeDoubleVector({1, 2, 3});
  ByteReader Reader(Writer.bytes());
  EXPECT_EQ(Reader.readU64().value(), 7u);
  EXPECT_DOUBLE_EQ(Reader.readDouble().value(), 3.5);
  EXPECT_EQ(Reader.readString().value(), "tag");
  EXPECT_EQ(Reader.readDoubleVector().value().size(), 3u);
  EXPECT_TRUE(Reader.atEnd());
}

TEST(Serialize, TruncatedReadsFailCleanly) {
  ByteWriter Writer;
  Writer.writeU64(1);
  std::vector<uint8_t> Truncated(Writer.bytes().begin(),
                                 Writer.bytes().begin() + 5);
  ByteReader Reader(Truncated);
  EXPECT_FALSE(Reader.readU64().isOk());
}

TEST(Serialize, TruncatedVectorFailsCleanly) {
  ByteWriter Writer;
  Writer.writeDoubleVector({1.0, 2.0, 3.0});
  std::vector<uint8_t> Truncated(Writer.bytes().begin(),
                                 Writer.bytes().begin() + 12);
  ByteReader Reader(Truncated);
  EXPECT_FALSE(Reader.readDoubleVector().isOk());
}

TEST(Serialize, HostileLengthPrefixIsRejected) {
  // A length prefix claiming 2^61 doubles must fail fast, not allocate.
  ByteWriter Writer;
  Writer.writeU64(uint64_t(1) << 61);
  ByteReader Reader(Writer.bytes());
  EXPECT_FALSE(Reader.readDoubleVector().isOk());
}

TEST(Serialize, LittleEndianLayoutIsStable) {
  // The wire format is a contract: u64 0x0102030405060708 must serialize
  // as bytes 08 07 06 05 04 03 02 01.
  ByteWriter Writer;
  Writer.writeU64(0x0102030405060708ull);
  const std::vector<uint8_t> &Bytes = Writer.bytes();
  ASSERT_EQ(Bytes.size(), 8u);
  for (int Index = 0; Index < 8; ++Index)
    EXPECT_EQ(Bytes[size_t(Index)], 8 - Index);
}

} // namespace
} // namespace parmonc
