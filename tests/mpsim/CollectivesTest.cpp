//===- tests/mpsim/CollectivesTest.cpp - Collective operation tests -------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/mpsim/Collectives.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

namespace parmonc {
namespace {

TEST(Broadcast, DeliversRootValuesToEveryRank) {
  std::atomic<int> Matches{0};
  runThreadEngine(6, [&Matches](Communicator &Comm) {
    std::vector<double> Values;
    if (Comm.rank() == 0)
      Values = {1.5, 2.5, 3.5};
    broadcast(Comm, Values);
    if (Values == std::vector<double>{1.5, 2.5, 3.5})
      Matches.fetch_add(1);
  });
  EXPECT_EQ(Matches.load(), 6);
}

TEST(Broadcast, WorksFromNonZeroRoot) {
  std::atomic<int> Matches{0};
  runThreadEngine(4, [&Matches](Communicator &Comm) {
    std::vector<double> Values;
    if (Comm.rank() == 2)
      Values = {42.0};
    broadcast(Comm, Values, /*Root=*/2);
    if (Values == std::vector<double>{42.0})
      Matches.fetch_add(1);
  });
  EXPECT_EQ(Matches.load(), 4);
}

TEST(Broadcast, SingleRankIsANoOp) {
  runThreadEngine(1, [](Communicator &Comm) {
    std::vector<double> Values{7.0};
    broadcast(Comm, Values);
    EXPECT_EQ(Values, std::vector<double>{7.0});
  });
}

TEST(ReduceSum, SumsElementWiseOntoRoot) {
  std::vector<double> RootResult;
  std::mutex ResultMutex;
  runThreadEngine(5, [&](Communicator &Comm) {
    // Rank r contributes (r, 10r).
    std::vector<double> Values{double(Comm.rank()),
                               10.0 * double(Comm.rank())};
    reduceSum(Comm, Values);
    if (Comm.rank() == 0) {
      std::lock_guard<std::mutex> Lock(ResultMutex);
      RootResult = Values;
    }
  });
  ASSERT_EQ(RootResult.size(), 2u);
  EXPECT_DOUBLE_EQ(RootResult[0], 0 + 1 + 2 + 3 + 4);
  EXPECT_DOUBLE_EQ(RootResult[1], 10.0 * (0 + 1 + 2 + 3 + 4));
}

TEST(ReduceSum, BackToBackRoundsDoNotInterleave) {
  // Two reductions in a row: each must see only its own round's data.
  std::vector<double> FirstResult, SecondResult;
  runThreadEngine(8, [&](Communicator &Comm) {
    std::vector<double> First{1.0};
    reduceSum(Comm, First);
    std::vector<double> Second{100.0};
    reduceSum(Comm, Second);
    if (Comm.rank() == 0) {
      FirstResult = First;
      SecondResult = Second;
    }
  });
  EXPECT_DOUBLE_EQ(FirstResult.at(0), 8.0);
  EXPECT_DOUBLE_EQ(SecondResult.at(0), 800.0);
}

TEST(AllReduceSum, EveryRankGetsTheTotal) {
  std::atomic<int> Matches{0};
  runThreadEngine(6, [&Matches](Communicator &Comm) {
    std::vector<double> Values{double(Comm.rank() + 1)};
    allReduceSum(Comm, Values);
    if (Values.at(0) == 21.0) // 1+2+...+6
      Matches.fetch_add(1);
  });
  EXPECT_EQ(Matches.load(), 6);
}

TEST(Gather, CollectsInRankOrder) {
  std::vector<double> Gathered;
  runThreadEngine(5, [&Gathered](Communicator &Comm) {
    std::vector<double> Out;
    gather(Comm, double(Comm.rank()) * 2.0, Out);
    if (Comm.rank() == 0)
      Gathered = Out;
    else
      EXPECT_TRUE(Out.empty());
  });
  ASSERT_EQ(Gathered.size(), 5u);
  for (size_t Rank = 0; Rank < 5; ++Rank)
    EXPECT_DOUBLE_EQ(Gathered[Rank], double(Rank) * 2.0);
}

TEST(GatherVectors, HandlesVariableLengths) {
  std::vector<std::vector<double>> Gathered;
  runThreadEngine(4, [&Gathered](Communicator &Comm) {
    // Rank r sends r+1 copies of r.
    std::vector<double> Values(size_t(Comm.rank()) + 1,
                               double(Comm.rank()));
    std::vector<std::vector<double>> Out;
    gatherVectors(Comm, Values, Out);
    if (Comm.rank() == 0)
      Gathered = Out;
  });
  ASSERT_EQ(Gathered.size(), 4u);
  for (size_t Rank = 0; Rank < 4; ++Rank) {
    ASSERT_EQ(Gathered[Rank].size(), Rank + 1);
    for (double Value : Gathered[Rank])
      EXPECT_DOUBLE_EQ(Value, double(Rank));
  }
}

TEST(Collectives, ComposeWithUserTraffic) {
  // User point-to-point messages on low tags must survive a collective
  // passing through the same mailboxes.
  std::atomic<int> UserMessagesSeen{0};
  runThreadEngine(4, [&UserMessagesSeen](Communicator &Comm) {
    if (Comm.rank() != 0)
      Comm.send(0, /*Tag=*/5, std::vector<uint8_t>{1});
    std::vector<double> Values{1.0};
    allReduceSum(Comm, Values);
    EXPECT_DOUBLE_EQ(Values.at(0), 4.0);
    if (Comm.rank() == 0) {
      int Seen = 0;
      while (Comm.tryReceive(5))
        ++Seen;
      UserMessagesSeen.store(Seen);
    }
  });
  EXPECT_EQ(UserMessagesSeen.load(), 3);
}

} // namespace
} // namespace parmonc
