//===- tests/mpsim/ShutdownOrderTest.cpp - Teardown-ordering contract -----===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The shutdown seam both backends rely on: a Mailbox/Fabric must be
// tear-down-able while peers still hold queued messages or sit blocked in
// receives and barriers, and the rank threads must then be joinable in ANY
// order. Before Mailbox::close() existed, a receiver parked in popWait
// held its full timeout through teardown and a barrier waiter whose peers
// had already exited hung forever — these tests pin the fixed contract.
//
//===----------------------------------------------------------------------===//

#include "parmonc/mpsim/Communicator.h"

#include "parmonc/support/Clock.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace parmonc {
namespace {

constexpr int64_t Forever = 3'600'000'000'000; // 1 h: only close() returns

TEST(ShutdownOrder, CloseWakesBlockedSteadyClockWaiter) {
  Mailbox Box;
  std::optional<Message> Got = Message{};
  const auto Start = std::chrono::steady_clock::now();
  std::thread Waiter([&] { Got = Box.popWait(7, Forever); });
  // Give the waiter time to actually block, then close underneath it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Box.close();
  Waiter.join();
  const auto Elapsed = std::chrono::steady_clock::now() - Start;
  EXPECT_FALSE(Got); // no message ever arrived
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(Elapsed).count(),
            60)
      << "close() must wake the waiter, not let it sleep out the timeout";
}

TEST(ShutdownOrder, CloseWakesBlockedInjectedClockWaiter) {
  // A frozen ManualClock never reaches the deadline, so only close() can
  // end this wait — the exact shape of a differential-run teardown.
  ManualClock Frozen(1'000'000);
  Mailbox Box;
  std::optional<Message> Got = Message{};
  std::thread Waiter([&] { Got = Box.popWait(-1, Forever, &Frozen); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Box.close();
  Waiter.join();
  EXPECT_FALSE(Got);
}

TEST(ShutdownOrder, QueuedMessagesStayDrainableAfterClose) {
  Mailbox Box;
  Box.push(Message{1, 5, {10}});
  Box.push(Message{2, 6, {20}});
  Box.close();
  // Peers' queued messages survive the close for draining...
  std::optional<Message> First = Box.tryPop(5);
  ASSERT_TRUE(First);
  EXPECT_EQ(First->Payload[0], 10);
  ASSERT_TRUE(Box.tryPop(6));
  // ...but new pushes are dropped: nobody is left to pop them.
  Box.push(Message{3, 7, {30}});
  EXPECT_FALSE(Box.tryPop(7));
  EXPECT_TRUE(Box.isClosed());
  // And a blocking wait on a closed mailbox returns immediately.
  EXPECT_FALSE(Box.popWait(-1, Forever));
}

TEST(ShutdownOrder, FabricShutdownReleasesBarrierWaiters) {
  Fabric Net(3);
  std::vector<std::thread> Stuck;
  for (int Rank = 0; Rank < 2; ++Rank)
    Stuck.emplace_back([&Net] { Net.arriveAtBarrier(); });
  // Rank 2 never arrives; shutdown() must stand in for it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Net.shutdown();
  for (std::thread &Thread : Stuck)
    Thread.join();
  EXPECT_TRUE(Net.stopRequested());
}

TEST(ShutdownOrder, RanksJoinableInAdversarialOrders) {
  // Three ranks wedged in the three different blocking states — receive,
  // barrier, send-then-receive — torn down and joined in every
  // permutation. Any deadlock fails the test by hanging it.
  const int Permutations[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                  {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (const auto &Order : Permutations) {
    Fabric Net(3);
    std::vector<std::thread> Ranks;
    Ranks.emplace_back([&Net] {
      FabricCommunicator Self(Net, 0);
      Self.receiveWait(-1, Forever, nullptr); // blocked receive
    });
    Ranks.emplace_back([&Net] {
      FabricCommunicator Self(Net, 1);
      Self.barrier(); // blocked rendezvous (peers never all arrive)
    });
    Ranks.emplace_back([&Net] {
      FabricCommunicator Self(Net, 2);
      // Queued message held toward rank 0 while the backend goes down.
      Self.send(0, 9, std::vector<uint8_t>(64));
      Self.receiveWait(-1, Forever, nullptr);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    Net.shutdown();
    for (int Index : Order)
      Ranks[size_t(Index)].join();
  }
}

TEST(ShutdownOrder, ShutdownIsIdempotentAndSafeWithNoWaiters) {
  Fabric Net(2);
  Net.shutdown();
  Net.shutdown();
  // A rank starting after shutdown must not block either.
  FabricCommunicator Late(Net, 1);
  EXPECT_FALSE(Late.receiveWait(-1, Forever, nullptr));
  EXPECT_TRUE(Late.stopRequested());
}

} // namespace
} // namespace parmonc
