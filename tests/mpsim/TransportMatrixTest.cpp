//===- tests/mpsim/TransportMatrixTest.cpp - Both backends, one matrix ----===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Every scenario here runs under BOTH transports through the same
// runEngine() entry point, producing a deterministic trace string at rank
// 0 (which lives in the calling process under both backends, so the
// captured trace is directly comparable). The thread backend is the
// oracle: each Processes trace is diffed against the Threads trace of the
// same scenario, character for character.
//
//===----------------------------------------------------------------------===//

#include "parmonc/mpsim/Collectives.h"
#include "parmonc/mpsim/Engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

namespace parmonc {
namespace {

constexpr TransportKind BothTransports[] = {TransportKind::Threads,
                                            TransportKind::Processes};

/// Runs \p Body under \p Kind and returns rank 0's trace string.
std::string traceOf(TransportKind Kind, int RankCount,
                    const std::function<void(Communicator &,
                                             std::ostringstream &)> &Scenario) {
  std::string Trace;
  Result<EngineReport> Hosted = runEngine(
      Kind, RankCount,
      [&Scenario, &Trace](Communicator &Comm) {
        std::ostringstream Out;
        Scenario(Comm, Out);
        if (Comm.rank() == 0)
          Trace = Out.str();
      });
  EXPECT_TRUE(Hosted) << Hosted.status().message();
  return Trace;
}

void expectIdenticalTraces(
    int RankCount,
    const std::function<void(Communicator &, std::ostringstream &)>
        &Scenario) {
  const std::string Oracle =
      traceOf(TransportKind::Threads, RankCount, Scenario);
  const std::string Candidate =
      traceOf(TransportKind::Processes, RankCount, Scenario);
  EXPECT_FALSE(Oracle.empty());
  EXPECT_EQ(Oracle, Candidate)
      << "the process transport diverged from the thread oracle";
}

void formatVector(std::ostringstream &Out, const std::vector<double> &Values) {
  for (size_t Index = 0; Index < Values.size(); ++Index)
    Out << (Index ? "," : "") << Values[Index];
}

TEST(TransportMatrix, BroadcastReachesEveryRankIdentically) {
  expectIdenticalTraces(4, [](Communicator &Comm, std::ostringstream &Out) {
    std::vector<double> Config;
    if (Comm.rank() == 0)
      Config = {3.25, -8.5, 1e9};
    broadcast(Comm, Config);
    // Everyone reports the received configuration back to rank 0, so the
    // trace proves every rank (not just the root) saw the same bytes.
    std::vector<double> Check = {Config[0] + Config[1] + Config[2]};
    std::vector<std::vector<double>> PerRank;
    gatherVectors(Comm, Check, PerRank);
    if (Comm.rank() == 0) {
      Out << "bcast:";
      for (const std::vector<double> &Echo : PerRank)
        Out << Echo[0] << ";";
    }
  });
}

TEST(TransportMatrix, ReduceAndAllReduceSumsMatch) {
  expectIdenticalTraces(4, [](Communicator &Comm, std::ostringstream &Out) {
    // Per-rank contribution (rank+1, (rank+1)^2): exact in doubles, so
    // the sums are bit-identical regardless of backend.
    const double Mine = Comm.rank() + 1;
    std::vector<double> Reduced = {Mine, Mine * Mine};
    reduceSum(Comm, Reduced);
    std::vector<double> Everywhere = {Mine, Mine * Mine};
    allReduceSum(Comm, Everywhere);
    // Ship each rank's all-reduce view back to the root: the trace then
    // covers the worker-side results too.
    std::vector<std::vector<double>> Views;
    gatherVectors(Comm, Everywhere, Views);
    if (Comm.rank() == 0) {
      Out << "reduce:";
      formatVector(Out, Reduced);
      Out << " allreduce:";
      for (const std::vector<double> &View : Views) {
        formatVector(Out, View);
        Out << ";";
      }
    }
  });
}

TEST(TransportMatrix, GatherOrdersByRankUnderBothBackends) {
  expectIdenticalTraces(5, [](Communicator &Comm, std::ostringstream &Out) {
    std::vector<double> Volumes;
    gather(Comm, 100.0 * (Comm.rank() + 1), Volumes);
    if (Comm.rank() == 0) {
      Out << "gather:";
      formatVector(Out, Volumes);
    }
  });
}

TEST(TransportMatrix, PointToPointAndBarrierSequence) {
  // The §2.2 shape in miniature: workers send tagged subtotals, rank 0
  // collects, everyone meets at a barrier, then a second round — message
  // ORDER per source is part of the asserted trace.
  expectIdenticalTraces(3, [](Communicator &Comm, std::ostringstream &Out) {
    const int Me = Comm.rank();
    for (int Round = 0; Round < 2; ++Round) {
      if (Me != 0) {
        std::vector<uint8_t> Payload = {uint8_t(Me), uint8_t(Round)};
        Comm.send(0, 7, std::move(Payload));
      } else {
        // Two messages per round, one from each worker; receiveWait keeps
        // arrival-order effects out by draining per-source in rank order.
        int Seen = 0;
        std::vector<std::string> BySource(Comm.size());
        while (Seen < Comm.size() - 1) {
          std::optional<Message> Incoming = Comm.receiveWait(7, 5'000'000'000);
          ASSERT_TRUE(Incoming) << "worker message lost in round " << Round;
          std::ostringstream One;
          One << Incoming->Source << ">" << int(Incoming->Payload[0]) << "."
              << int(Incoming->Payload[1]);
          BySource[size_t(Incoming->Source)] += One.str();
          ++Seen;
        }
        Out << "round" << Round << ":";
        for (const std::string &Entry : BySource)
          Out << Entry << ";";
      }
      Comm.barrier();
    }
  });
}

TEST(TransportMatrix, StopBroadcastCrossesTheBackend) {
  for (const TransportKind Kind : BothTransports) {
    Result<EngineReport> Hosted = runEngine(
        Kind, 3, [](Communicator &Comm) {
          if (Comm.rank() == 0) {
            Comm.requestStop(StopReason::TimeLimit);
            Comm.barrier();
          } else {
            // Workers spin until the stop request crosses the transport —
            // through shared atomics or over the wire — then rendezvous.
            while (!Comm.stopRequested()) {
            }
            Comm.barrier();
          }
        });
    ASSERT_TRUE(Hosted) << Hosted.status().message();
    EXPECT_TRUE(Hosted.value().StopOnTimeLimit)
        << "under " << transportName(Kind);
    EXPECT_FALSE(Hosted.value().StopOnErrorTarget);
  }
}

TEST(TransportMatrix, DeadRankIsDroppedFromTheBarrier) {
  // Rank 1 announces its own death and leaves; the survivors' barrier
  // must still open under both backends.
  for (const TransportKind Kind : BothTransports) {
    Result<EngineReport> Hosted = runEngine(
        Kind, 3, [](Communicator &Comm) {
          if (Comm.rank() == 1) {
            Comm.markDead(1);
            return;
          }
          Comm.barrier();
        });
    ASSERT_TRUE(Hosted) << Hosted.status().message();
  }
}

TEST(TransportMatrix, ProcessReportCarriesCleanExitDiagnostics) {
  Result<EngineReport> Hosted =
      runEngine(TransportKind::Processes, 4, [](Communicator &Comm) {
        if (Comm.rank() != 0)
          Comm.send(0, 1, std::vector<uint8_t>(256));
        Comm.barrier();
      });
  ASSERT_TRUE(Hosted) << Hosted.status().message();
  const EngineReport &Report = Hosted.value();
  ASSERT_EQ(Report.Ranks.size(), 3u);
  for (const ProcessRankStatus &Rank : Report.Ranks) {
    EXPECT_TRUE(Rank.ExitedCleanly) << "rank " << Rank.Rank;
    EXPECT_TRUE(Rank.GoodbyeReceived) << "rank " << Rank.Rank;
    EXPECT_FALSE(Rank.Signaled) << "rank " << Rank.Rank;
    EXPECT_EQ(Rank.MessagesSent, 1) << "rank " << Rank.Rank;
    EXPECT_EQ(Rank.BytesSent, 256) << "rank " << Rank.Rank;
    EXPECT_EQ(Rank.FailedSends, 0) << "rank " << Rank.Rank;
  }
  EXPECT_GE(Report.BytesTransferred, 3u * 256u);
}

TEST(TransportMatrix, SingleRankRunsWithoutForking) {
  for (const TransportKind Kind : BothTransports) {
    Result<EngineReport> Hosted =
        runEngine(Kind, 1, [](Communicator &Comm) {
          // Self-send and barrier degenerate correctly at N=1.
          Comm.send(0, 3, {1, 2, 3});
          std::optional<Message> Echo = Comm.tryReceive(3);
          ASSERT_TRUE(Echo);
          EXPECT_EQ(Echo->Payload.size(), 3u);
          Comm.barrier();
        });
    ASSERT_TRUE(Hosted) << Hosted.status().message();
    if (Kind == TransportKind::Processes) {
      EXPECT_TRUE(Hosted.value().Ranks.empty());
    }
  }
}

TEST(TransportMatrix, TransportNamesParseAndPrint) {
  EXPECT_STREQ(transportName(TransportKind::Threads), "threads");
  EXPECT_STREQ(transportName(TransportKind::Processes), "processes");
  EXPECT_EQ(parseTransport("threads"), TransportKind::Threads);
  EXPECT_EQ(parseTransport("processes"), TransportKind::Processes);
  EXPECT_EQ(parseTransport("procs"), TransportKind::Processes);
  EXPECT_FALSE(parseTransport("carrier-pigeon").has_value());
}

} // namespace
} // namespace parmonc
