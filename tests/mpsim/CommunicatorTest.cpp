//===- tests/mpsim/CommunicatorTest.cpp - Message-passing runtime tests ---===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/mpsim/Communicator.h"

#include "parmonc/support/Clock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

namespace parmonc {
namespace {

std::vector<uint8_t> bytesOf(std::initializer_list<uint8_t> Values) {
  return std::vector<uint8_t>(Values);
}

TEST(Mailbox, FifoWithinTag) {
  Mailbox Box;
  Box.push({0, 7, bytesOf({1})});
  Box.push({0, 7, bytesOf({2})});
  auto First = Box.tryPop(7);
  auto Second = Box.tryPop(7);
  ASSERT_TRUE(First && Second);
  EXPECT_EQ(First->Payload[0], 1);
  EXPECT_EQ(Second->Payload[0], 2);
  EXPECT_FALSE(Box.tryPop(7).has_value());
}

TEST(Mailbox, TagFilteringSkipsOtherTags) {
  Mailbox Box;
  Box.push({0, 1, bytesOf({10})});
  Box.push({0, 2, bytesOf({20})});
  auto Tagged = Box.tryPop(2);
  ASSERT_TRUE(Tagged);
  EXPECT_EQ(Tagged->Payload[0], 20);
  EXPECT_EQ(Box.pendingCount(), 1u);
  // The tag-1 message is still there, in order.
  auto Remaining = Box.tryPop(-1);
  ASSERT_TRUE(Remaining);
  EXPECT_EQ(Remaining->Tag, 1);
}

TEST(Mailbox, ContainsDoesNotConsume) {
  Mailbox Box;
  Box.push({3, 9, bytesOf({1})});
  EXPECT_TRUE(Box.contains(9));
  EXPECT_TRUE(Box.contains(-1));
  EXPECT_FALSE(Box.contains(8));
  EXPECT_EQ(Box.pendingCount(), 1u);
}

TEST(Mailbox, PopWaitTimesOutOnEmptyBox) {
  Mailbox Box;
  auto Nothing = Box.popWait(5, 5'000'000); // 5 ms
  EXPECT_FALSE(Nothing.has_value());
}

TEST(Mailbox, PopWaitWakesOnPush) {
  Mailbox Box;
  std::thread Producer([&Box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Box.push({1, 4, bytesOf({42})});
  });
  auto Received = Box.popWait(4, 2'000'000'000);
  Producer.join();
  ASSERT_TRUE(Received);
  EXPECT_EQ(Received->Payload[0], 42);
  EXPECT_EQ(Received->Source, 1);
}

TEST(Mailbox, PopWaitIgnoresWrongTagPushesWithoutExtendingDeadline) {
  // Regression: a stream of non-matching pushes used to restart the wait
  // with the full timeout on every wakeup, so a waiter for a tag that
  // never arrives could block far past its deadline. The predicate-based
  // wait must return nullopt once the deadline passes, leaving the
  // wrong-tag messages queued.
  Mailbox Box;
  std::atomic<bool> StopProducer{false};
  std::thread Producer([&] {
    while (!StopProducer.load()) {
      Box.push({0, 1, bytesOf({7})});
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  const auto Start = std::chrono::steady_clock::now();
  auto Nothing = Box.popWait(99, 30'000'000); // 30 ms, tag never sent
  const auto Elapsed = std::chrono::steady_clock::now() - Start;
  StopProducer.store(true);
  Producer.join();
  EXPECT_FALSE(Nothing.has_value());
  // Generous bound: the old behavior blocked for as long as pushes kept
  // arriving (seconds); the fix returns within ~one timeout.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(Elapsed)
                .count(),
            500);
  EXPECT_GT(Box.pendingCount(), 0u);
}

TEST(Mailbox, PopWaitOnManualClockReturnsWhenInjectedTimePasses) {
  // With an injected clock the deadline is measured on *that* clock: a
  // waiter polls, and returns promptly once the test advances manual time
  // past the deadline — no real-time sleep of the full timeout.
  ManualClock Time(0);
  Mailbox Box;
  // popWait snapshots its deadline from the injected clock on entry, so a
  // single advance could land before the snapshot on a loaded machine and
  // leave the deadline forever unreachable — keep advancing until the
  // waiter has actually returned.
  std::atomic<bool> Returned{false};
  std::thread Advancer([&Time, &Returned] {
    while (!Returned.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      Time.advanceNanos(2'000'000'000);
    }
  });
  const auto Start = std::chrono::steady_clock::now();
  auto Nothing = Box.popWait(1, 1'000'000'000, &Time); // 1 s of manual time
  const auto Elapsed = std::chrono::steady_clock::now() - Start;
  Returned.store(true);
  Advancer.join();
  EXPECT_FALSE(Nothing.has_value());
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(Elapsed)
                .count(),
            500);
}

TEST(Mailbox, PopWaitOnManualClockStillDeliversMatches) {
  ManualClock Time(0);
  Mailbox Box;
  std::thread Producer([&Box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Box.push({2, 8, bytesOf({11})});
  });
  auto Received = Box.popWait(8, 1'000'000'000, &Time);
  Producer.join();
  ASSERT_TRUE(Received);
  EXPECT_EQ(Received->Payload[0], 11);
}

TEST(Fabric, TracksBytesTransferred) {
  Fabric Net(2);
  FabricCommunicator Sender(Net, 1);
  Sender.send(0, 1, std::vector<uint8_t>(100));
  Sender.send(0, 1, std::vector<uint8_t>(20));
  EXPECT_EQ(Net.bytesTransferred(), 120u);
}

TEST(Communicator, SendDeliversToDestinationOnly) {
  Fabric Net(3);
  FabricCommunicator Rank0(Net, 0), Rank1(Net, 1), Rank2(Net, 2);
  Rank0.send(2, 5, bytesOf({9}));
  EXPECT_FALSE(Rank1.probe());
  ASSERT_TRUE(Rank2.probe(5));
  auto Received = Rank2.tryReceive(5);
  ASSERT_TRUE(Received);
  EXPECT_EQ(Received->Source, 0);
  EXPECT_EQ(Received->Payload[0], 9);
}

TEST(Communicator, RankAndSize) {
  Fabric Net(4);
  FabricCommunicator Comm(Net, 2);
  EXPECT_EQ(Comm.rank(), 2);
  EXPECT_EQ(Comm.size(), 4);
}

TEST(ThreadEngine, RunsEveryRankExactlyOnce) {
  std::atomic<int> Mask{0};
  runThreadEngine(8, [&Mask](Communicator &Comm) {
    Mask.fetch_or(1 << Comm.rank());
  });
  EXPECT_EQ(Mask.load(), 0xff);
}

TEST(ThreadEngine, GatherToRankZero) {
  // The paper's pattern: every rank sends to 0; rank 0 sums.
  std::atomic<int64_t> Total{0};
  const int Ranks = 6;
  runThreadEngine(Ranks, [&Total](Communicator &Comm) {
    if (Comm.rank() != 0) {
      std::vector<uint8_t> Payload{uint8_t(Comm.rank())};
      Comm.send(0, 1, std::move(Payload));
      return;
    }
    int Received = 0;
    int64_t Sum = 0;
    while (Received < Ranks - 1) {
      if (auto Incoming = Comm.receiveWait(1, 1'000'000'000)) {
        Sum += Incoming->Payload[0];
        ++Received;
      }
    }
    Total.store(Sum);
  });
  EXPECT_EQ(Total.load(), 1 + 2 + 3 + 4 + 5);
}

TEST(ThreadEngine, BarrierSynchronizesPhases) {
  // After the barrier, every rank must observe every other rank's phase-1
  // message — a barrier that releases early would break this.
  const int Ranks = 5;
  std::atomic<int> Failures{0};
  runThreadEngine(Ranks, [&Failures](Communicator &Comm) {
    for (int Destination = 0; Destination < Comm.size(); ++Destination)
      if (Destination != Comm.rank())
        Comm.send(Destination, 42, std::vector<uint8_t>{1});
    Comm.barrier();
    int Seen = 0;
    while (Comm.tryReceive(42))
      ++Seen;
    if (Seen != Comm.size() - 1)
      Failures.fetch_add(1);
  });
  EXPECT_EQ(Failures.load(), 0);
}

TEST(ThreadEngine, BarrierIsReusable) {
  std::atomic<int> Counter{0};
  runThreadEngine(4, [&Counter](Communicator &Comm) {
    for (int Round = 0; Round < 10; ++Round) {
      Counter.fetch_add(1);
      Comm.barrier();
    }
  });
  EXPECT_EQ(Counter.load(), 40);
}

TEST(ThreadEngine, SingleRankWorks) {
  int Calls = 0;
  runThreadEngine(1, [&Calls](Communicator &Comm) {
    EXPECT_EQ(Comm.size(), 1);
    Comm.barrier();
    ++Calls;
  });
  EXPECT_EQ(Calls, 1);
}

TEST(ThreadEngine, ManyToOneStress) {
  // Hammer rank 0 from 7 senders x 200 messages; nothing may be lost.
  const int Ranks = 8;
  const int PerSender = 200;
  std::atomic<int64_t> Received{0};
  runThreadEngine(Ranks, [&Received](Communicator &Comm) {
    if (Comm.rank() != 0) {
      for (int Index = 0; Index < PerSender; ++Index)
        Comm.send(0, 3, std::vector<uint8_t>{uint8_t(Index & 0xff)});
      return;
    }
    int64_t Count = 0;
    while (Count < int64_t(Ranks - 1) * PerSender) {
      if (auto Incoming = Comm.receiveWait(3, 1'000'000'000))
        ++Count;
      else
        break; // timeout: fail below
    }
    Received.store(Count);
  });
  EXPECT_EQ(Received.load(), int64_t(Ranks - 1) * PerSender);
}

} // namespace
} // namespace parmonc
