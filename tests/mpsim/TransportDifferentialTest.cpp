//===- tests/mpsim/TransportDifferentialTest.cpp - Wire vs. oracle --------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The headline proof of the process transport: every golden Runner
// scenario executes twice — once over the in-process thread fabric (the
// oracle) and once over forked worker processes and CRC-framed sockets —
// under the same frozen clock and deterministic schedule, and the entire
// parmonc_data/ tree plus the run report must come out BYTE-IDENTICAL.
// Estimator snapshots, func.dat / func_ci.dat / func_log.dat, per-rank
// subtotals, histograms, resume chains, periodic save cadence, even runs
// under an actively lossy injected network: if a single byte differs, the
// wire changed the mathematics and this suite fails.
//
// Excluded from comparison, by design:
//   *.prev        – backup rotation keeps the previous GENERATION, and how
//                   many generations a file went through is a scheduling
//                   detail, not a result;
//   metrics.dat   – the process transport legitimately adds transport.*
//                   router counters the thread fabric does not have.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"
#include "parmonc/fault/FaultPlan.h"
#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>

namespace parmonc {
namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("parmonc_xport_" + Name + "_" + std::to_string(Counter++)))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
  const std::string &path() const { return Path; }

private:
  static inline int Counter = 0;
  std::string Path;
};

void uniformRealization(RandomSource &Source, double *Out) {
  Out[0] = Source.nextUniform();
}

void matrixRealization(RandomSource &Source, double *Out) {
  // 2x2 with correlated entries so every moment file has structure.
  const double First = Source.nextUniform();
  const double Second = Source.nextUniform();
  Out[0] = First;
  Out[1] = Second;
  Out[2] = First * Second;
  Out[3] = First - Second;
}

RunConfig goldenConfig(const std::string &WorkDir, TransportKind Kind) {
  RunConfig Config;
  Config.MaxSampleVolume = 120;
  Config.ProcessorCount = 3;
  Config.DeterministicSchedule = true; // fixed per-rank quotas
  Config.Transport = Kind;
  Config.WorkDir = WorkDir;
  Config.AveragePeriodNanos = 3'600'000'000'000; // final save only
  return Config;
}

/// Every result/checkpoint/subtotal file under WorkDir/parmonc_data, as
/// relative path -> raw bytes. `.prev` generations and metrics.dat are
/// excluded (see the file header for why).
std::map<std::string, std::string> snapshotTree(const std::string &WorkDir) {
  namespace fs = std::filesystem;
  std::map<std::string, std::string> Tree;
  const fs::path Root = fs::path(WorkDir) / "parmonc_data";
  if (!fs::exists(Root))
    return Tree;
  for (const fs::directory_entry &Entry :
       fs::recursive_directory_iterator(Root)) {
    if (!Entry.is_regular_file())
      continue;
    const std::string Name = Entry.path().filename().string();
    if (Name.size() > 5 && Name.rfind(".prev") == Name.size() - 5)
      continue;
    if (Name == "metrics.dat")
      continue;
    const std::string Relative =
        fs::relative(Entry.path(), Root).generic_string();
    Tree[Relative] =
        readFileToString(Entry.path().string()).valueOr("<unreadable>");
  }
  return Tree;
}

/// Asserts the two trees hold the same files with the same bytes,
/// reporting the first differing file by name.
void expectIdenticalTrees(const std::map<std::string, std::string> &Oracle,
                          const std::map<std::string, std::string> &Wire) {
  for (const auto &[Path, Bytes] : Oracle) {
    const auto Match = Wire.find(Path);
    if (Match == Wire.end()) {
      ADD_FAILURE() << "the process run never wrote " << Path;
      continue;
    }
    EXPECT_EQ(Bytes, Match->second)
        << Path << " differs between thread and process transports";
  }
  for (const auto &[Path, Bytes] : Wire)
    EXPECT_TRUE(Oracle.count(Path))
        << "the process run wrote an extra file: " << Path;
  EXPECT_FALSE(Oracle.empty()) << "oracle run produced no files";
}

/// Field-by-field report comparison. Metrics and ProcessRanks are
/// transport-specific and compared separately where a test cares.
void expectIdenticalReports(const RunReport &Oracle, const RunReport &Wire) {
  EXPECT_EQ(Oracle.TotalSampleVolume, Wire.TotalSampleVolume);
  EXPECT_EQ(Oracle.NewSampleVolume, Wire.NewSampleVolume);
  EXPECT_EQ(Oracle.MeanRealizationSeconds, Wire.MeanRealizationSeconds);
  EXPECT_EQ(Oracle.ElapsedSeconds, Wire.ElapsedSeconds);
  EXPECT_EQ(Oracle.MaxAbsoluteError, Wire.MaxAbsoluteError);
  EXPECT_EQ(Oracle.MaxRelativeErrorPercent, Wire.MaxRelativeErrorPercent);
  EXPECT_EQ(Oracle.MaxVariance, Wire.MaxVariance);
  EXPECT_EQ(Oracle.SavePointCount, Wire.SavePointCount);
  EXPECT_EQ(Oracle.PerProcessorVolumes, Wire.PerProcessorVolumes);
  EXPECT_EQ(Oracle.StoppedOnErrorTarget, Wire.StoppedOnErrorTarget);
  EXPECT_EQ(Oracle.StoppedOnTimeLimit, Wire.StoppedOnTimeLimit);
  EXPECT_EQ(Oracle.Degraded, Wire.Degraded);
  EXPECT_EQ(Oracle.DeadWorkers, Wire.DeadWorkers);
  EXPECT_EQ(Oracle.FailedSends, Wire.FailedSends);
  EXPECT_EQ(Oracle.SimulatedCrash, Wire.SimulatedCrash);
  EXPECT_EQ(Oracle.ResumedFromBackup, Wire.ResumedFromBackup);
}

/// One golden scenario under one transport: frozen clock, configured by
/// \p Shape on top of the golden defaults.
RunReport runGolden(const std::string &WorkDir, TransportKind Kind,
                    const RealizationFn &Realization,
                    const std::function<void(RunConfig &)> &Shape = {}) {
  ManualClock Frozen(1'000'000);
  RunConfig Config = goldenConfig(WorkDir, Kind);
  if (Shape)
    Shape(Config);
  Result<RunReport> Report = runSimulation(Realization, Config, &Frozen);
  EXPECT_TRUE(Report.isOk()) << Report.status().toString();
  return Report.valueOr(RunReport{});
}

TEST(TransportDifferential, ScalarRunIsByteIdentical) {
  ScratchDir Threads("scalar_thr"), Processes("scalar_proc");
  const RunReport Oracle =
      runGolden(Threads.path(), TransportKind::Threads, uniformRealization);
  const RunReport Wire = runGolden(Processes.path(),
                                   TransportKind::Processes,
                                   uniformRealization);

  EXPECT_EQ(Oracle.TotalSampleVolume, 120);
  expectIdenticalReports(Oracle, Wire);
  expectIdenticalTrees(snapshotTree(Threads.path()),
                       snapshotTree(Processes.path()));
  // And the wire run really crossed process boundaries: two forked
  // workers, both with a clean exit and an orderly GOODBYE.
  EXPECT_TRUE(Oracle.ProcessRanks.empty());
  ASSERT_EQ(Wire.ProcessRanks.size(), 2u);
  for (const ProcessRankStatus &Rank : Wire.ProcessRanks) {
    EXPECT_TRUE(Rank.ExitedCleanly) << "rank " << Rank.Rank;
    EXPECT_TRUE(Rank.GoodbyeReceived) << "rank " << Rank.Rank;
    EXPECT_GT(Rank.MessagesSent, 0) << "rank " << Rank.Rank;
  }
}

TEST(TransportDifferential, MatrixWithHistogramsIsByteIdentical) {
  const auto Shape = [](RunConfig &Config) {
    Config.Rows = 2;
    Config.Columns = 2;
    Config.Histograms = {{0, 0, 0.0, 1.0, 16}, {1, 0, -1.0, 1.0, 8}};
  };
  ScratchDir Threads("matrix_thr"), Processes("matrix_proc");
  const RunReport Oracle = runGolden(Threads.path(), TransportKind::Threads,
                                     matrixRealization, Shape);
  const RunReport Wire = runGolden(Processes.path(),
                                   TransportKind::Processes,
                                   matrixRealization, Shape);

  expectIdenticalReports(Oracle, Wire);
  const auto OracleTree = snapshotTree(Threads.path());
  EXPECT_TRUE(OracleTree.count("results/hist_r1_c1.dat"));
  EXPECT_TRUE(OracleTree.count("results/hist_r2_c1.dat"));
  expectIdenticalTrees(OracleTree, snapshotTree(Processes.path()));
}

TEST(TransportDifferential, ResumeChainIsByteIdentical) {
  // §3.2's resumed-experiment chain: sequence 0 from scratch, then
  // sequence 1 averaged into its checkpoint per eq. (5) — the whole chain
  // run once per transport, and the final trees diffed across backends.
  const auto runChain = [](const std::string &WorkDir, TransportKind Kind) {
    runGolden(WorkDir, Kind, uniformRealization);
    return runGolden(WorkDir, Kind, uniformRealization,
                     [](RunConfig &Config) {
                       Config.Resume = true;
                       Config.SequenceNumber = 1;
                       Config.MaxSampleVolume = 60;
                     });
  };
  ScratchDir Threads("resume_thr"), Processes("resume_proc");
  const RunReport Oracle = runChain(Threads.path(), TransportKind::Threads);
  const RunReport Wire = runChain(Processes.path(), TransportKind::Processes);

  EXPECT_EQ(Oracle.TotalSampleVolume, 180);
  EXPECT_EQ(Oracle.NewSampleVolume, 60);
  expectIdenticalReports(Oracle, Wire);
  expectIdenticalTrees(snapshotTree(Threads.path()),
                       snapshotTree(Processes.path()));
}

TEST(TransportDifferential, PeriodicSaveCadenceMatches) {
  // AveragePeriodNanos = 0 makes rank 0 save at every collector poll: the
  // save-point CADENCE itself — one per rank-0 realization plus the final
  // save — must survive the transport swap, not just the final bytes.
  const auto Shape = [](RunConfig &Config) { Config.AveragePeriodNanos = 0; };
  ScratchDir Threads("cadence_thr"), Processes("cadence_proc");
  const RunReport Oracle = runGolden(Threads.path(), TransportKind::Threads,
                                     uniformRealization, Shape);
  const RunReport Wire = runGolden(Processes.path(),
                                   TransportKind::Processes,
                                   uniformRealization, Shape);

  // 120 realizations over 3 ranks = 40 on rank 0, plus the final save.
  EXPECT_EQ(Oracle.SavePointCount, 41);
  expectIdenticalReports(Oracle, Wire);
  expectIdenticalTrees(snapshotTree(Threads.path()),
                       snapshotTree(Processes.path()));
}

TEST(TransportDifferential, LossyNetworkRunIsByteIdentical) {
  // The §2.2 cumulative-subtotal protocol makes drops and duplicates
  // harmless; here the SAME seeded fault plan runs against both backends,
  // so the injector replays one fault sequence over threads and over real
  // sockets — and the results must still agree byte for byte.
  fault::FaultPlan Plan;
  Plan.Seed = 7;
  Plan.DropProbability = 0.4;
  Plan.DuplicateProbability = 0.3;
  Plan.ExemptTags = {TagFinal};
  const auto Shape = [&Plan](RunConfig &Config) { Config.Faults = &Plan; };
  ScratchDir Threads("lossy_thr"), Processes("lossy_proc");
  const RunReport Oracle = runGolden(Threads.path(), TransportKind::Threads,
                                     uniformRealization, Shape);
  const RunReport Wire = runGolden(Processes.path(),
                                   TransportKind::Processes,
                                   uniformRealization, Shape);

  EXPECT_EQ(Oracle.TotalSampleVolume, 120);
  EXPECT_FALSE(Oracle.Degraded); // drops/dups never lose cumulative sums
  expectIdenticalReports(Oracle, Wire);
  expectIdenticalTrees(snapshotTree(Threads.path()),
                       snapshotTree(Processes.path()));
}

TEST(TransportDifferential, ProcessRunsAreRunToRunDeterministic) {
  // The wire itself must not introduce nondeterminism: two process runs
  // of the same scenario in different directories, byte-compared.
  ScratchDir First("rerun_a"), Second("rerun_b");
  const RunReport FirstReport = runGolden(
      First.path(), TransportKind::Processes, uniformRealization);
  const RunReport SecondReport = runGolden(
      Second.path(), TransportKind::Processes, uniformRealization);

  expectIdenticalReports(FirstReport, SecondReport);
  expectIdenticalTrees(snapshotTree(First.path()),
                       snapshotTree(Second.path()));
}

TEST(TransportDifferential, ProcessTransportDemandsAFixedSchedule) {
  // There is no cross-process shared work counter; validate() must say so
  // instead of letting a nondeterministic run start.
  ScratchDir Scratch("badcfg");
  RunConfig Config = goldenConfig(Scratch.path(), TransportKind::Processes);
  Config.DeterministicSchedule = false;
  ManualClock Frozen(1'000'000);
  Result<RunReport> Report =
      runSimulation(uniformRealization, Config, &Frozen);
  ASSERT_FALSE(Report.isOk());
  EXPECT_NE(Report.status().message().find("DeterministicSchedule"),
            std::string::npos);
}

} // namespace
} // namespace parmonc
