//===- tests/ckpt/ManifestTest.cpp - Manifest format & parser hostility ---===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The manifest is the commit point of a sharded checkpoint generation, so
// its parser must be strict (a manifest that fails any validation routes
// the restore to the previous generation — it is never partially trusted)
// and must be total: no hostile byte sequence may crash it. The fuzz
// sections drive deterministic mutations — bit flips, truncations, length
// lies, duplicated and dropped lines — through the manifest parser and
// through both MomentSnapshot deserializers, asserting error-not-crash
// everywhere.
//
//===----------------------------------------------------------------------===//

#include "parmonc/ckpt/Manifest.h"
#include "parmonc/core/ResultsStore.h"
#include "parmonc/rng/Baselines.h"

#include <gtest/gtest.h>

namespace parmonc {
namespace ckpt {
namespace {

Manifest sampleManifest() {
  Manifest Source;
  Source.Generation = 7;
  Source.SequenceNumber = 3;
  Source.RankCount = 4;
  Source.Base = {-1, "base_s3_g7.dat", 0xdeadbeef, 120, 40};
  Source.Shards.push_back({2, "rank2_s3_k5.dat", 0x01020304, 64, 10});
  Source.Shards.push_back({0, "rank0_s3_k9.dat", 0xcafef00d, 77, 12});
  return Source;
}

TEST(Manifest, RoundTripPreservesEveryField) {
  const Manifest Source = sampleManifest();
  const std::string Text = Source.toFileContents();
  Result<Manifest> Parsed = Manifest::fromFileContents("m.dat", Text);
  ASSERT_TRUE(Parsed.isOk()) << Parsed.status().toString();
  const Manifest &Out = Parsed.value();
  EXPECT_EQ(Out.Generation, 7);
  EXPECT_EQ(Out.SequenceNumber, 3u);
  EXPECT_EQ(Out.RankCount, 4);
  EXPECT_EQ(Out.Base.File, "base_s3_g7.dat");
  EXPECT_EQ(Out.Base.Crc, 0xdeadbeefu);
  EXPECT_EQ(Out.Base.Bytes, 120u);
  EXPECT_EQ(Out.Base.Volume, 40);
  ASSERT_EQ(Out.Shards.size(), 2u);
  // The parser sorts by rank; serialization already emitted rank order.
  EXPECT_EQ(Out.Shards[0].Rank, 0);
  EXPECT_EQ(Out.Shards[0].File, "rank0_s3_k9.dat");
  EXPECT_EQ(Out.Shards[0].Crc, 0xcafef00du);
  EXPECT_EQ(Out.Shards[1].Rank, 2);
  EXPECT_EQ(Out.Shards[1].Volume, 10);
  // Re-serializing the parse is byte-identical: the format is canonical.
  EXPECT_EQ(Out.toFileContents(), Text);
}

TEST(Manifest, SerializationIsCanonicalAcrossShardOrder) {
  Manifest Shuffled = sampleManifest();
  std::swap(Shuffled.Shards[0], Shuffled.Shards[1]);
  EXPECT_EQ(Shuffled.toFileContents(), sampleManifest().toFileContents());
}

TEST(Manifest, EmptyShardListIsValid) {
  // Ranks that never reported by commit time are simply absent (§2.2's
  // cumulative subtotals make that a freshness loss, not corruption).
  Manifest Source = sampleManifest();
  Source.Shards.clear();
  Result<Manifest> Parsed =
      Manifest::fromFileContents("m.dat", Source.toFileContents());
  ASSERT_TRUE(Parsed.isOk()) << Parsed.status().toString();
  EXPECT_TRUE(Parsed.value().Shards.empty());
}

TEST(Manifest, StrictParserRejectsEveryDamageClass) {
  const std::string Good = sampleManifest().toFileContents();
  struct Damage {
    const char *Label;
    std::string Text;
    const char *ExpectInMessage;
  };
  const Damage Cases[] = {
      {"empty file", "", "missing required directives"},
      {"torn write (no end)",
       Good.substr(0, Good.size() - std::string("end\n").size()),
       "end marker"},
      {"content after end", Good + "shard 1 x crc 00000000 bytes 1 volume 1\n",
       "after the end marker"},
      {"unknown directive", "bogus 1\n" + Good, "unknown manifest directive"},
      {"unsupported version",
       [&] {
         std::string T = Good;
         T.replace(T.find("version 1"), 9, "version 2");
         return T;
       }(),
       "unsupported manifest version"},
      {"shard count lie (too few listed)",
       [&] {
         std::string T = Good;
         T.replace(T.find("shards 2"), 8, "shards 3");
         return T;
       }(),
       "declares 3"},
      {"duplicate rank",
       [&] {
         std::string T = Good;
         const std::string Line = "shard 0 rank0_s3_k9.dat crc cafef00d "
                                  "bytes 77 volume 12\n";
         T.insert(T.find("end\n"), Line);
         return T;
       }(),
       "duplicate shard entry for rank 0"},
      {"rank outside [0, ranks)",
       [&] {
         std::string T = Good;
         T.replace(T.find("shard 2 "), 8, "shard 9 ");
         return T;
       }(),
       "outside [0, ranks)"},
      {"path-escaping shard filename",
       [&] {
         std::string T = Good;
         T.replace(T.find("rank2_s3_k5.dat"), 15, "../../etc/passwd");
         return T;
       }(),
       "bare file name"},
      {"non-hex crc",
       [&] {
         std::string T = Good;
         T.replace(T.find("cafef00d"), 8, "cafef00z");
         return T;
       }(),
       "non-hex"},
      {"negative volume",
       [&] {
         std::string T = Good;
         T.replace(T.find("volume 40"), 9, "volume -4");
         return T;
       }(),
       "non-negative"},
  };
  for (const Damage &Case : Cases) {
    Result<Manifest> Parsed =
        Manifest::fromFileContents("m.dat", Case.Text);
    ASSERT_FALSE(Parsed.isOk()) << Case.Label;
    EXPECT_NE(Parsed.status().message().find("'m.dat'"), std::string::npos)
        << Case.Label;
    EXPECT_NE(Parsed.status().message().find(Case.ExpectInMessage),
              std::string::npos)
        << Case.Label << ": " << Parsed.status().message();
  }
}

//===----------------------------------------------------------------------===//
// Deterministic fuzzing: error-not-crash over mutated inputs.
//===----------------------------------------------------------------------===//

/// Applies one deterministic mutation to \p Text: a bit flip, a
/// truncation, a mid-file deletion, or a duplicated slice (which covers
/// duplicated lines and entries).
std::string mutate(const std::string &Text, SplitMix64 &Rng) {
  std::string Out = Text;
  if (Out.empty())
    return Out;
  switch (Rng.nextBits64() % 4) {
  case 0: { // bit flip
    const size_t At = Rng.nextBits64() % Out.size();
    Out[At] = char(Out[At] ^ (1 << (Rng.nextBits64() % 8)));
    break;
  }
  case 1: // truncation
    Out.resize(Rng.nextBits64() % Out.size());
    break;
  case 2: { // deletion of a middle slice
    const size_t From = Rng.nextBits64() % Out.size();
    const size_t Len = 1 + Rng.nextBits64() % 16;
    Out.erase(From, Len);
    break;
  }
  default: { // duplicated slice
    const size_t From = Rng.nextBits64() % Out.size();
    const size_t Len = 1 + Rng.nextBits64() % 32;
    Out.insert(From, Out.substr(From, Len));
    break;
  }
  }
  return Out;
}

TEST(ManifestFuzz, MutatedManifestsErrorButNeverCrash) {
  const std::string Good = sampleManifest().toFileContents();
  SplitMix64 Rng(0x9e3779b97f4a7c15ull);
  int Parsed = 0;
  for (int Round = 0; Round < 4000; ++Round) {
    std::string Hostile = Good;
    const int Mutations = 1 + int(Rng.nextBits64() % 3);
    for (int Step = 0; Step < Mutations; ++Step)
      Hostile = mutate(Hostile, Rng);
    Result<Manifest> Out = Manifest::fromFileContents("fuzz.dat", Hostile);
    if (Out.isOk())
      ++Parsed; // benign mutation (e.g. flipped a comment byte) — fine
  }
  // Sanity: the mutator is actually hostile — most inputs must be rejected.
  EXPECT_LT(Parsed, 2000);
}

MomentSnapshot sampleSnapshot() {
  Result<EstimatorMatrix> Moments = EstimatorMatrix::fromRawSums(
      2, 3, {1.0, -2.5, 3.25, 0.0, 7.5, -0.125},
      {1.0, 6.25, 11.0, 0.0, 60.0, 2.0}, 17);
  EXPECT_TRUE(Moments.isOk());
  MomentSnapshot Snapshot;
  Snapshot.SequenceNumber = 5;
  Snapshot.ComputeSeconds = 0.75;
  Snapshot.Moments = std::move(Moments).value();
  HistogramEstimator Histogram(0.0, 1.0, 8);
  Histogram.add(0.2);
  Histogram.add(0.9);
  Histogram.add(-1.0);
  Snapshot.Histograms.push_back(std::move(Histogram));
  return Snapshot;
}

TEST(ManifestFuzz, MutatedSnapshotTextErrorsButNeverCrashes) {
  const std::string Good = sampleSnapshot().toFileContents();
  SplitMix64 Rng(0xa0761d6478bd642full);
  for (int Round = 0; Round < 4000; ++Round) {
    std::string Hostile = Good;
    const int Mutations = 1 + int(Rng.nextBits64() % 3);
    for (int Step = 0; Step < Mutations; ++Step)
      Hostile = mutate(Hostile, Rng);
    Result<MomentSnapshot> Out = MomentSnapshot::fromFileContents(Hostile);
    (void)Out; // either outcome is fine; crashing or asserting is not
  }
}

TEST(ManifestFuzz, MutatedSnapshotBytesErrorButNeverCrash) {
  // The binary mailbox form carries internal length fields, so bit flips
  // here exercise length lies: a vector length claiming more doubles than
  // the buffer holds must fail the bounds check, not read past the end.
  const std::vector<uint8_t> Good = sampleSnapshot().toBytes();
  SplitMix64 Rng(0x2545f4914f6cdd1dull);
  for (int Round = 0; Round < 4000; ++Round) {
    std::vector<uint8_t> Hostile = Good;
    switch (Rng.nextBits64() % 3) {
    case 0: {
      const size_t At = Rng.nextBits64() % Hostile.size();
      Hostile[At] = uint8_t(Hostile[At] ^ (1 << (Rng.nextBits64() % 8)));
      break;
    }
    case 1:
      Hostile.resize(Rng.nextBits64() % Hostile.size());
      break;
    default: {
      const size_t Extra = 1 + Rng.nextBits64() % 64;
      for (size_t Pad = 0; Pad < Extra; ++Pad)
        Hostile.push_back(uint8_t(Rng.nextBits64()));
      break;
    }
    }
    Result<MomentSnapshot> Out = MomentSnapshot::fromBytes(Hostile);
    (void)Out;
  }
}

} // namespace
} // namespace ckpt
} // namespace parmonc
