//===- tests/ckpt/CheckpointStoreTest.cpp - Sharded checkpoint store ------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The on-disk contract of sharded checkpointing: shards publish atomically
// and immutably, commit is two-phase (shards + directory fsync, then the
// sealed manifest rename), and the restore ladder rejects any generation
// with a damaged manifest or shard and falls back to the previous one. The
// headline scale test writes 2^10 rank shards concurrently — one writer
// thread per rank, as in the engine — and proves byte-exact restore plus
// byte-exact fallback after single-shard corruption at that width. The
// BackgroundWriter section pins the writer thread's lifecycle: deterministic
// skip-and-coalesce under backpressure, drain/stop error folding, and
// abandon() leaving a restorable prefix like a killed process would.
//
//===----------------------------------------------------------------------===//

#include "parmonc/ckpt/BackgroundWriter.h"
#include "parmonc/ckpt/CheckpointStore.h"
#include "parmonc/support/Checksum.h"
#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace parmonc {
namespace ckpt {
namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("parmonc_ckpt_" + Name + "_" + std::to_string(Counter++)))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
  std::string root() const { return Path + "/ckpt"; }

private:
  static inline int Counter = 0;
  std::string Path;
};

/// Rewrites the file at \p Path through \p Damage (read-modify-write).
void damageFile(const std::string &Path,
                const std::function<std::string(std::string)> &Damage) {
  Result<std::string> Contents = readFileToString(Path);
  ASSERT_TRUE(Contents.isOk()) << Contents.status().toString();
  Status Written = writeFileAtomic(Path, Damage(std::move(Contents).value()));
  ASSERT_TRUE(Written.isOk()) << Written.toString();
}

std::string flipOneBodyByte(std::string Text) {
  // Flip a byte well past the seal line so the seal itself stays parsable.
  EXPECT_GT(Text.size(), 60u);
  Text[Text.size() - 2] = char(Text[Text.size() - 2] ^ 0x20);
  return Text;
}

/// One committed generation: base plus one shard per rank, bodies derived
/// from (rank, generation) so restores can be checked byte-for-byte.
std::string shardBody(int Rank, int64_t Generation) {
  return "payload of rank " + std::to_string(Rank) + " generation " +
         std::to_string(Generation) + "\n";
}

CheckpointStore::CommitRequest
commitGeneration(const CheckpointStore &Store, int64_t Generation,
                 int RankCount, uint64_t SequenceNumber = 1) {
  CheckpointStore::CommitRequest Request;
  Request.Generation = Generation;
  Request.SequenceNumber = SequenceNumber;
  Request.RankCount = RankCount;
  Request.BaseBody = "base body for generation " +
                     std::to_string(Generation) + "\n";
  Request.BaseVolume = 100 * Generation;
  for (int Rank = 0; Rank < RankCount; ++Rank) {
    Result<ShardEntry> Entry =
        Store.writeShard(Rank, SequenceNumber, /*WriteIndex=*/Generation,
                         shardBody(Rank, Generation), 10 * Generation);
    EXPECT_TRUE(Entry.isOk()) << Entry.status().toString();
    Request.Shards.push_back(std::move(Entry).value());
  }
  return Request;
}

TEST(CheckpointStore, WriteShardPublishesAnImmutableSealedFile) {
  ScratchDir Dir("writeshard");
  CheckpointStore Store(Dir.root());
  ASSERT_TRUE(Store.prepareDirectories().isOk());

  Result<ShardEntry> Entry =
      Store.writeShard(3, /*SequenceNumber=*/7, /*WriteIndex=*/2,
                       "hello shard\n", /*Volume=*/42);
  ASSERT_TRUE(Entry.isOk()) << Entry.status().toString();
  EXPECT_EQ(Entry.value().Rank, 3);
  EXPECT_EQ(Entry.value().File, "rank3_s7_k2.dat");
  EXPECT_EQ(Entry.value().Volume, 42);

  const std::string Path = Store.shardsDir() + "/rank3_s7_k2.dat";
  Result<std::string> OnDisk = readFileToString(Path);
  ASSERT_TRUE(OnDisk.isOk());
  // The manifest entry describes the exact sealed bytes on disk.
  EXPECT_EQ(OnDisk.value().size(), Entry.value().Bytes);
  EXPECT_EQ(crc32(OnDisk.value()), Entry.value().Crc);
  Result<std::string> Body = unsealFileContents(Path, OnDisk.value());
  ASSERT_TRUE(Body.isOk()) << Body.status().toString();
  EXPECT_EQ(Body.value(), "hello shard\n");
  // Nothing lingers in staging after a publish.
  EXPECT_TRUE(std::filesystem::is_empty(Store.stagingDir()));

  EXPECT_FALSE(Store.writeShard(-1, 7, 1, "x", 0).isOk());
}

TEST(CheckpointStore, CommitRotatesManifestGenerations) {
  ScratchDir Dir("rotate");
  CheckpointStore Store(Dir.root());
  obs::MetricsRegistry Registry;
  Store.attachMetrics(&Registry);
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  EXPECT_FALSE(Store.hasAnyManifest());

  ASSERT_TRUE(Store.commit(commitGeneration(Store, 1, 2)).isOk());
  EXPECT_TRUE(Store.hasAnyManifest());
  EXPECT_FALSE(fileExists(Store.prevManifestPath()));

  ASSERT_TRUE(Store.commit(commitGeneration(Store, 2, 2)).isOk());
  ASSERT_TRUE(fileExists(Store.prevManifestPath()));

  Result<Manifest> Current = Store.readManifest(Store.manifestPath());
  Result<Manifest> Previous = Store.readManifest(Store.prevManifestPath());
  ASSERT_TRUE(Current.isOk() && Previous.isOk());
  EXPECT_EQ(Current.value().Generation, 2);
  EXPECT_EQ(Previous.value().Generation, 1);

  const obs::MetricsSnapshot Metrics = Registry.snapshot();
  const int64_t *Commits = Metrics.counterValue("ckpt.commits");
  const int64_t *Shards = Metrics.counterValue("ckpt.shards_written");
  ASSERT_NE(Commits, nullptr);
  ASSERT_NE(Shards, nullptr);
  EXPECT_EQ(*Commits, 2);
  EXPECT_EQ(*Shards, 6); // 2 ranks x 2 generations + 2 base shards
}

TEST(CheckpointStore, RestoreReturnsShardsInRankOrderByteExact) {
  ScratchDir Dir("restore");
  CheckpointStore Store(Dir.root());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  ASSERT_TRUE(Store.commit(commitGeneration(Store, 1, 3)).isOk());

  Result<CheckpointStore::RestoredGeneration> Restored =
      Store.restoreWithFallback();
  ASSERT_TRUE(Restored.isOk()) << Restored.status().toString();
  EXPECT_FALSE(Restored.value().FromBackup);
  EXPECT_TRUE(Restored.value().PrimaryError.empty());
  EXPECT_EQ(Restored.value().Source.Generation, 1);
  EXPECT_EQ(Restored.value().BaseBody, "base body for generation 1\n");
  ASSERT_EQ(Restored.value().Shards.size(), 3u);
  for (int Rank = 0; Rank < 3; ++Rank) {
    EXPECT_EQ(Restored.value().Shards[size_t(Rank)].Rank, Rank);
    EXPECT_EQ(Restored.value().Shards[size_t(Rank)].Body,
              shardBody(Rank, 1));
  }
}

TEST(CheckpointStore, CorruptShardFallsBackToPreviousGeneration) {
  ScratchDir Dir("corruptshard");
  CheckpointStore Store(Dir.root());
  obs::MetricsRegistry Registry;
  Store.attachMetrics(&Registry);
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  ASSERT_TRUE(Store.commit(commitGeneration(Store, 1, 2)).isOk());
  ASSERT_TRUE(Store.commit(commitGeneration(Store, 2, 2)).isOk());

  // Bit-rot generation 2's rank-1 shard after its write "succeeded".
  damageFile(Store.shardsDir() + "/rank1_s1_k2.dat", flipOneBodyByte);

  Result<CheckpointStore::RestoredGeneration> Restored =
      Store.restoreWithFallback();
  ASSERT_TRUE(Restored.isOk()) << Restored.status().toString();
  EXPECT_TRUE(Restored.value().FromBackup);
  EXPECT_EQ(Restored.value().Source.Generation, 1);
  EXPECT_NE(Restored.value().PrimaryError.find("manifest CRC"),
            std::string::npos)
      << Restored.value().PrimaryError;
  ASSERT_EQ(Restored.value().Shards.size(), 2u);
  EXPECT_EQ(Restored.value().Shards[1].Body, shardBody(1, 1));

  const obs::MetricsSnapshot Metrics = Registry.snapshot();
  const int64_t *Fallbacks = Metrics.counterValue("ckpt.restore_fallbacks");
  ASSERT_NE(Fallbacks, nullptr);
  EXPECT_EQ(*Fallbacks, 1);
}

TEST(CheckpointStore, TruncatedShardIsAShortReadNotAParse) {
  ScratchDir Dir("shortshard");
  CheckpointStore Store(Dir.root());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  ASSERT_TRUE(Store.commit(commitGeneration(Store, 1, 2)).isOk());
  ASSERT_TRUE(Store.commit(commitGeneration(Store, 2, 2)).isOk());

  damageFile(Store.shardsDir() + "/rank0_s1_k2.dat",
             [](std::string Text) { return Text.substr(0, 10); });

  Result<CheckpointStore::RestoredGeneration> Restored =
      Store.restoreWithFallback();
  ASSERT_TRUE(Restored.isOk()) << Restored.status().toString();
  EXPECT_TRUE(Restored.value().FromBackup);
  EXPECT_NE(Restored.value().PrimaryError.find("manifest recorded"),
            std::string::npos)
      << Restored.value().PrimaryError;
}

TEST(CheckpointStore, MissingShardFallsBack) {
  ScratchDir Dir("missingshard");
  CheckpointStore Store(Dir.root());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  ASSERT_TRUE(Store.commit(commitGeneration(Store, 1, 2)).isOk());
  ASSERT_TRUE(Store.commit(commitGeneration(Store, 2, 2)).isOk());
  ASSERT_TRUE(std::filesystem::remove(Store.shardsDir() + "/rank0_s1_k2.dat"));

  Result<CheckpointStore::RestoredGeneration> Restored =
      Store.restoreWithFallback();
  ASSERT_TRUE(Restored.isOk()) << Restored.status().toString();
  EXPECT_TRUE(Restored.value().FromBackup);
  EXPECT_NE(Restored.value().PrimaryError.find("missing"),
            std::string::npos);
}

TEST(CheckpointStore, TornManifestFallsBackAndBothTornFailsWithPrimaryError) {
  ScratchDir Dir("tornmanifest");
  CheckpointStore Store(Dir.root());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  ASSERT_TRUE(Store.commit(commitGeneration(Store, 1, 2)).isOk());
  ASSERT_TRUE(Store.commit(commitGeneration(Store, 2, 2)).isOk());

  // A torn manifest write: the seal's declared byte count disagrees.
  damageFile(Store.manifestPath(), [](std::string Text) {
    return Text.substr(0, Text.size() - 25);
  });
  Result<CheckpointStore::RestoredGeneration> Restored =
      Store.restoreWithFallback();
  ASSERT_TRUE(Restored.isOk()) << Restored.status().toString();
  EXPECT_TRUE(Restored.value().FromBackup);
  EXPECT_EQ(Restored.value().Source.Generation, 1);

  // Now tear .prev as well: restore must fail, reporting the primary's
  // error (the useful one for an operator staring at manifest.dat).
  damageFile(Store.prevManifestPath(), [](std::string Text) {
    return Text.substr(0, Text.size() - 25);
  });
  Result<CheckpointStore::RestoredGeneration> Failed =
      Store.restoreWithFallback();
  ASSERT_FALSE(Failed.isOk());
  EXPECT_NE(Failed.status().message().find("manifest.dat"),
            std::string::npos);
}

TEST(CheckpointStore, InterceptedWriteIsCaughtByTheManifestCrc) {
  // The interceptor damages bytes *after* the store computed the manifest
  // CRC — the model of a disk lying about a completed write. The commit
  // itself succeeds; the restore must reject the generation.
  ScratchDir Dir("interceptor");
  CheckpointStore Store(Dir.root());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  ASSERT_TRUE(Store.commit(commitGeneration(Store, 1, 2)).isOk());

  Store.setWriteInterceptor(
      [](const std::string &Path,
         std::string_view Contents) -> std::optional<std::string> {
        if (Path.find("rank1_s1_k2") == std::string::npos)
          return std::nullopt;
        return flipOneBodyByte(std::string(Contents));
      });
  ASSERT_TRUE(Store.commit(commitGeneration(Store, 2, 2)).isOk());

  Result<CheckpointStore::RestoredGeneration> Restored =
      Store.restoreWithFallback();
  ASSERT_TRUE(Restored.isOk()) << Restored.status().toString();
  EXPECT_TRUE(Restored.value().FromBackup);
  EXPECT_EQ(Restored.value().Source.Generation, 1);
}

TEST(CheckpointStore, PruneKeepsReferencedAndNewestShards) {
  ScratchDir Dir("prune");
  CheckpointStore Store(Dir.root());
  ASSERT_TRUE(Store.prepareDirectories().isOk());

  // Five write indices for rank 0, then a commit referencing index 5 with
  // KeepShards=1: indices protected are 5 (referenced + newest); 1..4 go.
  for (int64_t Index = 1; Index <= 5; ++Index)
    ASSERT_TRUE(
        Store.writeShard(0, 1, Index, shardBody(0, Index), Index).isOk());
  CheckpointStore::CommitRequest Request;
  Request.Generation = 1;
  Request.SequenceNumber = 1;
  Request.RankCount = 1;
  Request.BaseBody = "base\n";
  Request.KeepShards = 1;
  Result<ShardEntry> Latest =
      Store.writeShard(0, 1, 5, shardBody(0, 5), 5);
  ASSERT_TRUE(Latest.isOk());
  Request.Shards.push_back(Latest.value());
  ASSERT_TRUE(Store.commit(Request).isOk());

  EXPECT_TRUE(fileExists(Store.shardsDir() + "/rank0_s1_k5.dat"));
  for (int64_t Index = 1; Index <= 4; ++Index)
    EXPECT_FALSE(fileExists(Store.shardsDir() + "/rank0_s1_k" +
                            std::to_string(Index) + ".dat"))
        << "index " << Index << " should have been pruned";

  // The committed generation still restores after pruning.
  EXPECT_TRUE(Store.restoreWithFallback().isOk());
}

TEST(CheckpointStore, RemoveAllForgetsEveryGeneration) {
  ScratchDir Dir("removeall");
  CheckpointStore Store(Dir.root());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  ASSERT_TRUE(Store.commit(commitGeneration(Store, 1, 1)).isOk());
  ASSERT_TRUE(Store.hasAnyManifest());
  ASSERT_TRUE(Store.removeAll().isOk());
  EXPECT_FALSE(Store.hasAnyManifest());
  EXPECT_FALSE(std::filesystem::exists(Store.rootDir()));
  EXPECT_FALSE(Store.restoreWithFallback().isOk());
}

//===----------------------------------------------------------------------===//
// The 2^10-rank scale proof (store level).
//===----------------------------------------------------------------------===//

TEST(CheckpointStoreScale, ThousandRankCommitRestoresByteExact) {
  constexpr int RankCount = 1024;
  ScratchDir Dir("kilo");
  CheckpointStore Store(Dir.root());
  ASSERT_TRUE(Store.prepareDirectories().isOk());

  // Two generations, each written by 1024 concurrent rank writers — the
  // engine's geometry, one thread per rank, all publishing into the same
  // shards directory at once.
  std::vector<ShardEntry> Entries[2];
  for (int64_t Generation = 1; Generation <= 2; ++Generation) {
    std::vector<ShardEntry> &Batch = Entries[Generation - 1];
    Batch.assign(RankCount, ShardEntry{});
    std::vector<Status> Outcomes(RankCount, Status::ok());
    {
      WorkerGroup Writers(RankCount, [&](int Rank) {
        Result<ShardEntry> Entry = Store.writeShard(
            Rank, /*SequenceNumber=*/1, /*WriteIndex=*/Generation,
            shardBody(Rank, Generation), Generation);
        if (Entry)
          Batch[size_t(Rank)] = std::move(Entry).value();
        else
          Outcomes[size_t(Rank)] = Entry.status();
      });
    }
    for (int Rank = 0; Rank < RankCount; ++Rank)
      ASSERT_TRUE(Outcomes[size_t(Rank)].isOk())
          << "rank " << Rank << ": " << Outcomes[size_t(Rank)].toString();

    CheckpointStore::CommitRequest Request;
    Request.Generation = Generation;
    Request.SequenceNumber = 1;
    Request.RankCount = RankCount;
    Request.BaseBody = "base of generation " + std::to_string(Generation);
    Request.Shards = Batch;
    ASSERT_TRUE(Store.commit(Request).isOk());
  }

  Result<CheckpointStore::RestoredGeneration> Restored =
      Store.restoreWithFallback();
  ASSERT_TRUE(Restored.isOk()) << Restored.status().toString();
  EXPECT_FALSE(Restored.value().FromBackup);
  EXPECT_EQ(Restored.value().Source.Generation, 2);
  ASSERT_EQ(Restored.value().Shards.size(), size_t(RankCount));
  for (int Rank = 0; Rank < RankCount; ++Rank) {
    ASSERT_EQ(Restored.value().Shards[size_t(Rank)].Rank, Rank);
    ASSERT_EQ(Restored.value().Shards[size_t(Rank)].Body,
              shardBody(Rank, 2))
        << "rank " << Rank;
  }

  // Corrupt exactly one of the 1024 generation-2 shards: the whole
  // generation is rejected and the 1024-shard generation 1 restores
  // byte-exactly instead.
  damageFile(Store.shardsDir() + "/rank717_s1_k2.dat", flipOneBodyByte);
  Result<CheckpointStore::RestoredGeneration> Fallback =
      Store.restoreWithFallback();
  ASSERT_TRUE(Fallback.isOk()) << Fallback.status().toString();
  EXPECT_TRUE(Fallback.value().FromBackup);
  EXPECT_EQ(Fallback.value().Source.Generation, 1);
  ASSERT_EQ(Fallback.value().Shards.size(), size_t(RankCount));
  for (int Rank = 0; Rank < RankCount; ++Rank)
    ASSERT_EQ(Fallback.value().Shards[size_t(Rank)].Body,
              shardBody(Rank, 1))
        << "rank " << Rank;
}

//===----------------------------------------------------------------------===//
// BackgroundWriter lifecycle.
//===----------------------------------------------------------------------===//

TEST(BackgroundWriter, CommitsLandAfterDrain) {
  ScratchDir Dir("bgcommit");
  CheckpointStore Store(Dir.root());
  obs::MetricsRegistry Registry;
  Store.attachMetrics(&Registry);
  ASSERT_TRUE(Store.prepareDirectories().isOk());

  BackgroundWriter Writer(Store, /*QueueDepth=*/4, &Registry);
  EXPECT_TRUE(Writer.enqueue(commitGeneration(Store, 1, 2)));
  EXPECT_TRUE(Writer.enqueue(commitGeneration(Store, 2, 2)));
  ASSERT_TRUE(Writer.drain().isOk());
  EXPECT_EQ(Writer.committedCount(), 2);
  EXPECT_EQ(Writer.coalescedCount(), 0);

  Result<Manifest> Current = Store.readManifest(Store.manifestPath());
  ASSERT_TRUE(Current.isOk());
  EXPECT_EQ(Current.value().Generation, 2);
  ASSERT_TRUE(Writer.stop().isOk());
  ASSERT_TRUE(Writer.stop().isOk()); // idempotent

  const obs::MetricsSnapshot Metrics = Registry.snapshot();
  const int64_t *Commits = Metrics.counterValue("ckpt.async_commits");
  ASSERT_NE(Commits, nullptr);
  EXPECT_EQ(*Commits, 2);
}

TEST(BackgroundWriter, BackpressureCoalescesOldestDeterministically) {
  ScratchDir Dir("bgcoalesce");
  CheckpointStore Store(Dir.root());
  obs::MetricsRegistry Registry;
  Store.attachMetrics(&Registry);
  ASSERT_TRUE(Store.prepareDirectories().isOk());

  // Gate the writer inside its first commit so the owner fully controls
  // the queue: Started/Release are mailboxes, so the handshake stays
  // within the blessed message-passing primitives.
  // Gate on the generation's *base* write: base shards are written by the
  // commit itself (writer thread), while the owner thread only publishes
  // rank shards — so the counter below is writer-thread state.
  Mailbox Started, Release;
  int BaseWritesOnWriterThread = 0;
  Store.setWriteInterceptor(
      [&](const std::string &Path,
          std::string_view) -> std::optional<std::string> {
        if (Path.find("/base_") == std::string::npos)
          return std::nullopt;
        if (BaseWritesOnWriterThread++ == 0) {
          Started.push(Message{0, 1, {}});
          while (!Release.popWait(-1, 1'000'000'000) && !Release.isClosed()) {
          }
        }
        return std::nullopt;
      });

  BackgroundWriter Writer(Store, /*QueueDepth=*/1, &Registry);
  EXPECT_TRUE(Writer.enqueue(commitGeneration(Store, 1, 3)));
  // The writer is now provably mid-commit-1 (it signalled Started), so
  // generation 2 sits alone in the queue...
  ASSERT_TRUE(Started.popWait(-1, 30'000'000'000).has_value());
  EXPECT_TRUE(Writer.enqueue(commitGeneration(Store, 2, 3)));
  // ...and generation 3 must displace it: newest wins, enqueue says so.
  EXPECT_FALSE(Writer.enqueue(commitGeneration(Store, 3, 3)));
  EXPECT_EQ(Writer.coalescedCount(), 1);

  Release.push(Message{0, 1, {}});
  ASSERT_TRUE(Writer.drain().isOk());
  EXPECT_EQ(Writer.committedCount(), 2); // generations 1 and 3
  EXPECT_EQ(Writer.coalescedCount(), 1);

  Result<Manifest> Current = Store.readManifest(Store.manifestPath());
  Result<Manifest> Previous = Store.readManifest(Store.prevManifestPath());
  ASSERT_TRUE(Current.isOk() && Previous.isOk());
  EXPECT_EQ(Current.value().Generation, 3);
  EXPECT_EQ(Previous.value().Generation, 1); // generation 2 never landed

  ASSERT_TRUE(Writer.stop().isOk());
  const obs::MetricsSnapshot Metrics = Registry.snapshot();
  const int64_t *Coalesced = Metrics.counterValue("ckpt.coalesced_saves");
  ASSERT_NE(Coalesced, nullptr);
  EXPECT_EQ(*Coalesced, 1);
}

TEST(BackgroundWriter, StopFoldsTheFirstCommitError) {
  // Rooting the store at an uncreatable path makes every commit fail; the
  // failure must surface at stop() with the generation in the message,
  // not vanish into the writer thread.
  ScratchDir Dir("bgerror");
  const std::string FilePath = Dir.root();
  ASSERT_TRUE(writeFileAtomic(FilePath, "a file, not a directory").isOk());
  CheckpointStore Store(FilePath + "/impossible");
  obs::MetricsRegistry Registry;

  BackgroundWriter Writer(Store, /*QueueDepth=*/2, &Registry);
  CheckpointStore::CommitRequest Request;
  Request.Generation = 1;
  Request.SequenceNumber = 1;
  Request.RankCount = 1;
  Request.BaseBody = "base";
  EXPECT_TRUE(Writer.enqueue(Request));
  Status Stopped = Writer.stop();
  ASSERT_FALSE(Stopped.isOk());
  EXPECT_NE(Stopped.message().find("background checkpoint commit"),
            std::string::npos);
  EXPECT_NE(Stopped.message().find("generation 1"), std::string::npos);
  EXPECT_EQ(Writer.committedCount(), 0);

  const obs::MetricsSnapshot Metrics = Registry.snapshot();
  const int64_t *Failures =
      Metrics.counterValue("ckpt.async_commit_failures");
  ASSERT_NE(Failures, nullptr);
  EXPECT_EQ(*Failures, 1);
}

TEST(BackgroundWriter, AbandonLeavesARestorableCommittedPrefix) {
  // abandon() models the collector dying with commits still queued: the
  // queued tail is discarded, and whatever prefix of generations reached
  // the disk must restore cleanly — the exact guarantee a killed job
  // relies on.
  ScratchDir Dir("bgabandon");
  CheckpointStore Store(Dir.root());
  ASSERT_TRUE(Store.prepareDirectories().isOk());

  Mailbox Started, Release;
  int BaseWritesOnWriterThread = 0;
  Store.setWriteInterceptor(
      [&](const std::string &Path,
          std::string_view) -> std::optional<std::string> {
        if (Path.find("/base_") == std::string::npos)
          return std::nullopt;
        if (BaseWritesOnWriterThread++ == 0) {
          Started.push(Message{0, 1, {}});
          while (!Release.popWait(-1, 1'000'000'000) && !Release.isClosed()) {
          }
        }
        return std::nullopt;
      });

  BackgroundWriter Writer(Store, /*QueueDepth=*/4, /*Registry=*/nullptr);
  EXPECT_TRUE(Writer.enqueue(commitGeneration(Store, 1, 2)));
  ASSERT_TRUE(Started.popWait(-1, 30'000'000'000).has_value());
  EXPECT_TRUE(Writer.enqueue(commitGeneration(Store, 2, 2)));
  Release.push(Message{0, 1, {}});
  Writer.abandon();
  Writer.abandon(); // idempotent

  // Generation 1 always finished (abandon joins the in-flight commit);
  // generation 2 may or may not have been discarded before the close won
  // the race — either prefix is legal, and both must restore.
  Result<CheckpointStore::RestoredGeneration> Restored =
      Store.restoreWithFallback();
  ASSERT_TRUE(Restored.isOk()) << Restored.status().toString();
  EXPECT_FALSE(Restored.value().FromBackup);
  EXPECT_GE(Restored.value().Source.Generation, 1);
  EXPECT_LE(Restored.value().Source.Generation, 2);
  ASSERT_EQ(Restored.value().Shards.size(), 2u);
  const int64_t Generation = Restored.value().Source.Generation;
  for (int Rank = 0; Rank < 2; ++Rank)
    EXPECT_EQ(Restored.value().Shards[size_t(Rank)].Body,
              shardBody(Rank, Generation));
}

} // namespace
} // namespace ckpt
} // namespace parmonc
