//===- tests/rng/PhiloxTest.cpp - Counter-based backend contract ----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The production Philox backend (docs/RNG.md#philox-backend) promises the
// same stream discipline as the LCG hierarchy, realized with counter
// partitioning instead of leap multiplies. These tests pin the contract:
// determinism, O(1) seek agreeing with literal draws, batched fills
// bit-equal to scalar draws at unaligned edges, and streamFor() placing
// hierarchy coordinates at exactly e·2^ne + p·2^np + k·2^nr. Statistical
// quality is covered by the statest battery (tests/statest/BatteryTest).
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/Philox.h"

#include "parmonc/rng/StreamHierarchy.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace parmonc {
namespace {

TEST(Philox, DeterministicPerKey) {
  Philox First(0x853c49e6748fea9bull);
  Philox Second(0x853c49e6748fea9bull);
  for (int Draw = 0; Draw < 100; ++Draw)
    ASSERT_EQ(First.nextBits64(), Second.nextBits64()) << "draw " << Draw;
  EXPECT_EQ(First.position(), UInt128(100));
}

TEST(Philox, KeysSelectDistinctSequences) {
  Philox KeyA(1), KeyB(2);
  int Collisions = 0;
  for (int Draw = 0; Draw < 64; ++Draw)
    Collisions += (KeyA.nextBits64() == KeyB.nextBits64());
  EXPECT_EQ(Collisions, 0);
}

TEST(Philox, SeekMatchesLiteralDrawing) {
  // seek(n) then draw must equal drawing the (n+1)-th output — including
  // odd positions that land mid-block.
  for (uint64_t Target : {0ull, 1ull, 2ull, 3ull, 17ull, 1000ull}) {
    Philox Walked(42);
    for (uint64_t Draw = 0; Draw < Target; ++Draw)
      Walked.nextBits64();
    Philox Jumped(42);
    Jumped.seek(UInt128(Target));
    EXPECT_EQ(Jumped.nextBits64(), Walked.nextBits64())
        << "position " << Target;
  }
}

TEST(Philox, SeekReachesDeepCounterPositions) {
  // Positions past 2^64 exercise the high counter limb; the generator must
  // keep producing and remain deterministic there.
  const UInt128 Deep = UInt128::powerOfTwo(100) + UInt128(5);
  Philox First(7), Second(7);
  First.seek(Deep);
  Second.seek(Deep);
  for (int Draw = 0; Draw < 16; ++Draw)
    ASSERT_EQ(First.nextBits64(), Second.nextBits64());
  EXPECT_EQ(First.position(), Deep + UInt128(16));
}

TEST(Philox, SkipIsPositionArithmetic) {
  Philox Skipped(9);
  Philox Walked(9);
  Skipped.skip(UInt128(37));
  for (int Draw = 0; Draw < 37; ++Draw)
    Walked.nextBits64();
  EXPECT_EQ(Skipped.position(), Walked.position());
  EXPECT_EQ(Skipped.nextBits64(), Walked.nextBits64());
}

TEST(Philox, FillUniformsBitEqualToScalarAtAwkwardShapes) {
  // Every (start offset, count) pair must give the same bytes as scalar
  // draws — especially odd offsets that force the one-draw block entry.
  for (uint64_t Offset : {0ull, 1ull, 2ull, 3ull}) {
    for (size_t Count : {size_t(0), size_t(1), size_t(2), size_t(3),
                         size_t(7), size_t(64), size_t(1001)}) {
      Philox Batched(1234);
      Philox Scalar(1234);
      Batched.seek(UInt128(Offset));
      Scalar.seek(UInt128(Offset));
      std::vector<double> Got(Count + 1, -1.0), Want(Count + 1, -1.0);
      Batched.fillUniforms(Got.data(), Count);
      for (size_t Index = 0; Index < Count; ++Index)
        Want[Index] = Scalar.nextUniform();
      ASSERT_EQ(0, std::memcmp(Got.data(), Want.data(),
                               (Count + 1) * sizeof(double)))
          << "offset " << Offset << " count " << Count;
      EXPECT_EQ(Batched.position(), Scalar.position());
    }
  }
}

TEST(Philox, StreamForPlacesCoordinatesByCounterPartition) {
  const LeapConfig Config;
  const StreamCoordinates Cases[] = {
      {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {3, 1000, 77},
  };
  for (const StreamCoordinates &Where : Cases) {
    const Philox Stream = Philox::streamFor(Where, Config, 0);
    const UInt128 Expected =
        (UInt128(Where.Experiment) << Config.ExperimentLog2) +
        (UInt128(Where.Processor) << Config.ProcessorLog2) +
        (UInt128(Where.Realization) << Config.RealizationLog2);
    EXPECT_EQ(Stream.position(), Expected)
        << "e=" << Where.Experiment << " p=" << Where.Processor
        << " k=" << Where.Realization;
  }
}

TEST(Philox, StreamForIntervalsAreDisjoint) {
  // Adjacent realizations own disjoint counter intervals of width 2^nr:
  // drawing a full realization's worth from one stream never enters the
  // next stream's interval, and the next stream reproduces the draw the
  // walked stream would make at that boundary.
  const LeapConfig Config;
  Philox Current = Philox::streamFor({2, 5, 9}, Config, 0);
  Philox Next = Philox::streamFor({2, 5, 10}, Config, 0);
  EXPECT_EQ(Next.position() - Current.position(),
            UInt128::powerOfTwo(Config.RealizationLog2));
  Current.skip(UInt128::powerOfTwo(Config.RealizationLog2));
  EXPECT_EQ(Current.position(), Next.position());
  EXPECT_EQ(Current.nextBits64(), Next.nextBits64());
}

TEST(Philox, StreamForHonorsTheKey) {
  const Philox KeyA = Philox::streamFor({1, 2, 3}, LeapConfig(), 0xabcdull);
  EXPECT_EQ(KeyA.key(), 0xabcdull);
  Philox SameSpot(0xabcdull);
  SameSpot.seek(KeyA.position());
  Philox Copy = KeyA;
  EXPECT_EQ(Copy.nextBits64(), SameSpot.nextBits64());
}

TEST(Philox, ReportsItsName) {
  Philox Stream;
  EXPECT_STREQ(Stream.name(), "philox");
  // The production backend is distinct from the bench-only baseline
  // ("philox4x32-10" in Baselines.h).
  EXPECT_STRNE(Stream.name(), "philox4x32-10");
}

TEST(Philox, BehavesAsRandomSource) {
  // Through the RandomSource seam — the polymorphic path the library's
  // consumers use.
  Philox Concrete(5);
  RandomSource &Source = Concrete;
  for (int Draw = 0; Draw < 100; ++Draw) {
    const double Value = Source.nextUniform();
    ASSERT_GT(Value, 0.0);
    ASSERT_LT(Value, 1.0);
  }
}

} // namespace
} // namespace parmonc
