//===- tests/rng/LcgPow2SweepTest.cpp - Generic-modulus property sweep ----===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Property sweep of the LcgPow2 family over modulus widths: the leap
// identity, state confinement, output range and period structure must
// hold at every r, not just the paper's 40 and 128.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/LcgPow2.h"

#include <gtest/gtest.h>

namespace parmonc {
namespace {

/// A maximal-period multiplier for each width: 5^k with odd k, reduced.
UInt128 multiplierFor(unsigned Bits) {
  // 5^(Bits/2 | 1): an odd exponent keeps A ≡ 5 (mod 8) at every width.
  return UInt128::powModPow2(UInt128(5), UInt128((Bits / 2) | 1), Bits);
}

class LcgPow2Sweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(LcgPow2Sweep, StateStaysWithinModulus) {
  const unsigned Bits = GetParam();
  LcgPow2 Generator(Bits, multiplierFor(Bits));
  const UInt128 Modulus = Bits == 128 ? UInt128() : UInt128::powerOfTwo(Bits);
  for (int Step = 0; Step < 5000; ++Step) {
    const UInt128 State = Generator.nextRaw();
    if (Bits < 128) {
      ASSERT_LT(State, Modulus) << "width " << Bits;
    }
    ASSERT_TRUE(State.bit(0)) << "state must stay odd";
  }
}

TEST_P(LcgPow2Sweep, SkipMatchesStepping) {
  const unsigned Bits = GetParam();
  LcgPow2 Skipped(Bits, multiplierFor(Bits));
  Skipped.skip(UInt128(777));
  LcgPow2 Stepped(Bits, multiplierFor(Bits));
  for (int Step = 0; Step < 777; ++Step)
    Stepped.nextRaw();
  EXPECT_EQ(Skipped.state(), Stepped.state()) << "width " << Bits;
}

TEST_P(LcgPow2Sweep, FullPeriodLeapIsIdentity) {
  const unsigned Bits = GetParam();
  LcgPow2 Generator(Bits, multiplierFor(Bits));
  const UInt128 Start = Generator.state();
  Generator.skip(UInt128::powerOfTwo(Generator.periodLog2()));
  EXPECT_EQ(Generator.state(), Start)
      << "period 2^" << Generator.periodLog2() << " must wrap";
}

TEST_P(LcgPow2Sweep, HalfPeriodLeapIsNotIdentity) {
  const unsigned Bits = GetParam();
  LcgPow2 Generator(Bits, multiplierFor(Bits));
  const UInt128 Start = Generator.state();
  Generator.skip(UInt128::powerOfTwo(Generator.periodLog2() - 1));
  EXPECT_NE(Generator.state(), Start)
      << "half the period must not wrap (maximality)";
}

TEST_P(LcgPow2Sweep, UniformOutputsInOpenInterval) {
  const unsigned Bits = GetParam();
  LcgPow2 Generator(Bits, multiplierFor(Bits));
  double Sum = 0.0;
  const int Count = 20000;
  for (int Step = 0; Step < Count; ++Step) {
    const double Value = Generator.nextUniform();
    ASSERT_GT(Value, 0.0);
    ASSERT_LT(Value, 1.0);
    Sum += Value;
  }
  // Coarse mean check; small widths have few distinct values but the
  // mean is still ~1/2.
  EXPECT_NEAR(Sum / Count, 0.5, 0.05) << "width " << Bits;
}

TEST_P(LcgPow2Sweep, SkipComposesAdditively) {
  const unsigned Bits = GetParam();
  LcgPow2 Composed(Bits, multiplierFor(Bits));
  Composed.skip(UInt128(12345));
  Composed.skip(UInt128(67890));
  LcgPow2 Direct(Bits, multiplierFor(Bits));
  Direct.skip(UInt128(12345 + 67890));
  EXPECT_EQ(Composed.state(), Direct.state()) << "width " << Bits;
}

INSTANTIATE_TEST_SUITE_P(ModulusWidths, LcgPow2Sweep,
                         ::testing::Values(8u, 16u, 24u, 32u, 40u, 48u,
                                           64u, 80u, 96u, 112u, 128u));

} // namespace
} // namespace parmonc
