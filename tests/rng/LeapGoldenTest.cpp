//===- tests/rng/LeapGoldenTest.cpp - Golden leap-ahead multipliers -------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Regression-pins the leap-ahead arithmetic (§2.4) against constants
// computed with an independent big-integer implementation (Python's
// pow(A, n, 2**128)). The whole stream partition rests on A(n) = A^n mod
// 2^128 being exact: a silent off-by-one in the square-and-multiply would
// produce overlapping "disjoint" subsequences, which no statistical test
// downstream would reliably catch. These are the paper's default leaps
// n_e = 2^115, n_p = 2^98, n_r = 2^43 for A = 5^101.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/StreamHierarchy.h"

#include <gtest/gtest.h>

using namespace parmonc;

namespace {

// Independently computed: pow(5, 101, 2**128) and its leap powers.
constexpr UInt128 GoldenA(0xbc1b60742c6a5846ull, 0xf557b4f2b48e8cb5ull);
constexpr UInt128 GoldenA115(0x7760000000000000ull, 0x0000000000000001ull);
constexpr UInt128 GoldenA98(0xb424bbb000000000ull, 0x0000000000000001ull);
constexpr UInt128 GoldenA43(0x402b44410f553568ull, 0x4977600000000001ull);
constexpr UInt128 GoldenA20(0xbe6112e74cc17fe3ull, 0x433f9892eec00001ull);
// pow(A, 12345 * 2**20, 2**128): a composite, non-power-of-two leap count.
constexpr UInt128 GoldenA20x12345(0x616f91dc6297bafbull,
                                  0xd062457b28c00001ull);

TEST(LeapGolden, BaseMultiplierIsFiveToThe101) {
  EXPECT_EQ(Lcg128::defaultMultiplier(), GoldenA);
}

TEST(LeapGolden, DefaultLeapTableMatchesIndependentComputation) {
  const LeapTable Table;
  EXPECT_EQ(Table.experimentLeap(), GoldenA115)
      << "A(2^115) = " << Table.experimentLeap().toHexString();
  EXPECT_EQ(Table.processorLeap(), GoldenA98)
      << "A(2^98) = " << Table.processorLeap().toHexString();
  EXPECT_EQ(Table.realizationLeap(), GoldenA43)
      << "A(2^43) = " << Table.realizationLeap().toHexString();
}

TEST(LeapGolden, PowModPow2MatchesGoldenPowers) {
  const UInt128 A = Lcg128::defaultMultiplier();
  EXPECT_EQ(UInt128::powModPow2(A, UInt128(1) << 115, 128), GoldenA115);
  EXPECT_EQ(UInt128::powModPow2(A, UInt128(1) << 98, 128), GoldenA98);
  EXPECT_EQ(UInt128::powModPow2(A, UInt128(1) << 43, 128), GoldenA43);
  EXPECT_EQ(UInt128::powModPow2(A, UInt128(1) << 20, 128), GoldenA20);
}

TEST(LeapGolden, NonPowerOfTwoExponent) {
  // Exercises the general square-and-multiply path (several set bits).
  const UInt128 A = Lcg128::defaultMultiplier();
  const UInt128 Exponent = UInt128(12345) << 20;
  EXPECT_EQ(UInt128::powModPow2(A, Exponent, 128), GoldenA20x12345);
  EXPECT_EQ(UInt128::powModPow2(GoldenA20, UInt128(12345), 128),
            GoldenA20x12345);
}

TEST(LeapGolden, LeapCompositionIdentity) {
  // A(n*m) = A(n)^m: the hierarchy's levels must compose exactly —
  // (2^43)-leaps taken 2^55 times land on the (2^98)-leap, and (2^98)-leaps
  // taken 2^17 times land on the (2^115)-leap. These exponents are the
  // per-level capacities (realizations per processor, processors per
  // experiment).
  EXPECT_EQ(UInt128::powModPow2(GoldenA43, UInt128(1) << 55, 128), GoldenA98);
  EXPECT_EQ(UInt128::powModPow2(GoldenA98, UInt128(1) << 17, 128),
            GoldenA115);
}

TEST(LeapGolden, HierarchyInitialNumbersUseGoldenLeaps) {
  // initialNumber composes the golden multipliers directly:
  // u(e, p, k) = A115^e * A98^p * A43^k (u(0,0,0) = 1).
  const StreamHierarchy Hierarchy{LeapTable()};
  EXPECT_EQ(Hierarchy.initialNumber({0, 0, 0}), UInt128(1));
  EXPECT_EQ(Hierarchy.initialNumber({1, 0, 0}), GoldenA115);
  EXPECT_EQ(Hierarchy.initialNumber({0, 1, 0}), GoldenA98);
  EXPECT_EQ(Hierarchy.initialNumber({0, 0, 1}), GoldenA43);
  EXPECT_EQ(Hierarchy.initialNumber({1, 1, 1}),
            GoldenA115 * GoldenA98 * GoldenA43);
}

} // namespace
