//===- tests/rng/StreamHierarchyTest.cpp - Stream partition tests ---------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/StreamHierarchy.h"

#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <vector>

namespace parmonc {
namespace {

TEST(LeapConfig, DefaultsMatchPaper) {
  LeapConfig Config;
  EXPECT_EQ(Config.ExperimentLog2, 115u);
  EXPECT_EQ(Config.ProcessorLog2, 98u);
  EXPECT_EQ(Config.RealizationLog2, 43u);
  EXPECT_TRUE(Config.validate().isOk());
}

TEST(LeapConfig, CapacitiesMatchPaper) {
  // §2.4: ~2^10 experiments, 2^17 processors each, 2^55 realizations each.
  LeapConfig Config;
  EXPECT_EQ(Config.maxExperimentsLog2(), 10u);
  EXPECT_EQ(Config.maxProcessorsLog2(), 17u);
  EXPECT_EQ(Config.maxRealizationsLog2(), 55u);
}

TEST(LeapConfig, RejectsUnorderedLeaps) {
  LeapConfig Equal;
  Equal.ExperimentLog2 = 50;
  Equal.ProcessorLog2 = 50;
  Equal.RealizationLog2 = 10;
  EXPECT_FALSE(Equal.validate().isOk());

  LeapConfig Inverted;
  Inverted.ExperimentLog2 = 50;
  Inverted.ProcessorLog2 = 60;
  Inverted.RealizationLog2 = 10;
  EXPECT_FALSE(Inverted.validate().isOk());
}

TEST(LeapConfig, RejectsLeapBeyondUsablePeriod) {
  LeapConfig TooBig;
  TooBig.ExperimentLog2 = 126;
  EXPECT_FALSE(TooBig.validate().isOk());
}

TEST(LeapTable, MultipliersArePowersOfBase) {
  LeapTable Table;
  UInt128 Base = Lcg128::defaultMultiplier();
  EXPECT_EQ(Table.experimentLeap(),
            UInt128::powModPow2(Base, UInt128::powerOfTwo(115), 128));
  EXPECT_EQ(Table.processorLeap(),
            UInt128::powModPow2(Base, UInt128::powerOfTwo(98), 128));
  EXPECT_EQ(Table.realizationLeap(),
            UInt128::powModPow2(Base, UInt128::powerOfTwo(43), 128));
}

TEST(LeapTable, LeapAlgebraIsConsistent) {
  // A(n_p)^(2^(ne-np)) == A(n_e): processor leaps tile an experiment leap.
  LeapTable Table;
  LeapConfig Config = Table.config();
  UInt128 Tiled = UInt128::powModPow2(
      Table.processorLeap(),
      UInt128::powerOfTwo(Config.ExperimentLog2 - Config.ProcessorLog2), 128);
  EXPECT_EQ(Tiled, Table.experimentLeap());

  UInt128 TiledRealizations = UInt128::powModPow2(
      Table.realizationLeap(),
      UInt128::powerOfTwo(Config.ProcessorLog2 - Config.RealizationLog2),
      128);
  EXPECT_EQ(TiledRealizations, Table.processorLeap());
}

TEST(LeapTable, FileRoundTrip) {
  LeapTable Table;
  Result<LeapTable> Parsed = LeapTable::fromFileContents(
      Table.toFileContents());
  ASSERT_TRUE(Parsed.isOk()) << Parsed.status().toString();
  EXPECT_EQ(Parsed.value().experimentLeap(), Table.experimentLeap());
  EXPECT_EQ(Parsed.value().processorLeap(), Table.processorLeap());
  EXPECT_EQ(Parsed.value().realizationLeap(), Table.realizationLeap());
  EXPECT_EQ(Parsed.value().baseMultiplier(), Table.baseMultiplier());
}

TEST(LeapTable, FileRoundTripWithCustomExponents) {
  LeapConfig Config;
  Config.ExperimentLog2 = 60;
  Config.ProcessorLog2 = 40;
  Config.RealizationLog2 = 20;
  LeapTable Table(Lcg128::defaultMultiplier(), Config);
  Result<LeapTable> Parsed =
      LeapTable::fromFileContents(Table.toFileContents());
  ASSERT_TRUE(Parsed.isOk());
  EXPECT_EQ(Parsed.value().config().ExperimentLog2, 60u);
  EXPECT_EQ(Parsed.value().realizationLeap(), Table.realizationLeap());
}

TEST(LeapTable, ParseRejectsMissingEntries) {
  EXPECT_FALSE(LeapTable::fromFileContents("ne 115 0x1\n").isOk());
  EXPECT_FALSE(LeapTable::fromFileContents("").isOk());
}

TEST(LeapTable, ParseRejectsCorruptedMultiplier) {
  // Base not ≡ 5 mod 8.
  std::string Bad = "base 0x00000000000000000000000000000001\n"
                    "ne 115 0x1\nnp 98 0x1\nnr 43 0x1\n";
  EXPECT_FALSE(LeapTable::fromFileContents(Bad).isOk());
}

TEST(LeapTable, ParseRejectsUnknownDirective) {
  LeapTable Table;
  std::string Contents = Table.toFileContents() + "bogus 1 2\n";
  EXPECT_FALSE(LeapTable::fromFileContents(Contents).isOk());
}

TEST(LeapTable, ParseIgnoresCommentsAndBlankLines) {
  LeapTable Table;
  std::string Contents =
      "# comment\n\n" + Table.toFileContents() + "\n# trailing\n";
  EXPECT_TRUE(LeapTable::fromFileContents(Contents).isOk());
}

TEST(LeapTable, LoadOrDefaultReturnsDefaultWhenMissing) {
  Result<LeapTable> Loaded =
      LeapTable::loadOrDefault("/nonexistent/parmonc_genparam.dat");
  ASSERT_TRUE(Loaded.isOk());
  EXPECT_EQ(Loaded.value().experimentLeap(), LeapTable().experimentLeap());
}

TEST(LeapTable, LoadOrDefaultReadsExistingFile) {
  LeapConfig Config;
  Config.ExperimentLog2 = 80;
  Config.ProcessorLog2 = 50;
  Config.RealizationLog2 = 30;
  LeapTable Table(Lcg128::defaultMultiplier(), Config);
  std::string Path =
      (std::filesystem::temp_directory_path() / "parmonc_genparam_test.dat")
          .string();
  ASSERT_TRUE(writeFileAtomic(Path, Table.toFileContents()).isOk());
  Result<LeapTable> Loaded = LeapTable::loadOrDefault(Path);
  ASSERT_TRUE(Loaded.isOk());
  EXPECT_EQ(Loaded.value().config().ProcessorLog2, 50u);
  std::filesystem::remove(Path);
}

// The central independence guarantee: the initial number of stream
// (e, p, k) must equal the state of the base generator after exactly
// e*n_e + p*n_p + k*n_r steps. Verified with a small custom hierarchy so
// stepping is feasible.
TEST(StreamHierarchy, InitialNumbersSitAtExactSequencePositions) {
  LeapConfig Config;
  Config.ExperimentLog2 = 12; // n_e = 4096
  Config.ProcessorLog2 = 8;   // n_p = 256
  Config.RealizationLog2 = 4; // n_r = 16
  StreamHierarchy Hierarchy(
      LeapTable(Lcg128::defaultMultiplier(), Config));

  struct Case {
    uint64_t Experiment, Processor, Realization;
  };
  for (Case Where : std::vector<Case>{{0, 0, 0},
                                      {0, 0, 1},
                                      {0, 1, 0},
                                      {1, 0, 0},
                                      {1, 2, 3},
                                      {3, 7, 15}}) {
    uint64_t Position = Where.Experiment * 4096 + Where.Processor * 256 +
                        Where.Realization * 16;
    Lcg128 Reference;
    for (uint64_t Step = 0; Step < Position; ++Step)
      Reference.nextRaw();
    UInt128 Initial = Hierarchy.initialNumber(
        {Where.Experiment, Where.Processor, Where.Realization});
    EXPECT_EQ(Initial, Reference.state())
        << "(" << Where.Experiment << "," << Where.Processor << ","
        << Where.Realization << ")";
  }
}

TEST(StreamHierarchy, StreamsWithinProcessorDoNotOverlap) {
  // With n_r = 16, realization k owns positions [16k, 16k+16). Drawing 16
  // numbers from consecutive realization streams must reproduce the base
  // sequence with no gaps or overlaps.
  LeapConfig Config;
  Config.ExperimentLog2 = 12;
  Config.ProcessorLog2 = 8;
  Config.RealizationLog2 = 4;
  StreamHierarchy Hierarchy(
      LeapTable(Lcg128::defaultMultiplier(), Config));

  Lcg128 Reference;
  RealizationCursor Cursor(Hierarchy, {0, 0, 0});
  for (int Realization = 0; Realization < 16; ++Realization) {
    Lcg128 Stream = Cursor.beginRealization();
    for (int Draw = 0; Draw < 16; ++Draw)
      ASSERT_EQ(Stream.nextRaw(), Reference.nextRaw())
          << "realization " << Realization << " draw " << Draw;
  }
}

TEST(StreamHierarchy, DistinctCoordinatesGiveDistinctInitialNumbers) {
  StreamHierarchy Hierarchy{LeapTable()};
  std::set<std::pair<uint64_t, uint64_t>> Seen;
  for (uint64_t Experiment = 0; Experiment < 4; ++Experiment) {
    for (uint64_t Processor = 0; Processor < 8; ++Processor) {
      for (uint64_t Realization = 0; Realization < 8; ++Realization) {
        UInt128 Initial =
            Hierarchy.initialNumber({Experiment, Processor, Realization});
        EXPECT_TRUE(Seen.emplace(Initial.high(), Initial.low()).second)
            << "collision at (" << Experiment << "," << Processor << ","
            << Realization << ")";
      }
    }
  }
}

TEST(StreamHierarchy, MakeStreamStartsAtInitialNumber) {
  StreamHierarchy Hierarchy{LeapTable()};
  StreamCoordinates Where{2, 5, 9};
  Lcg128 Stream = Hierarchy.makeStream(Where);
  EXPECT_EQ(Stream.state(), Hierarchy.initialNumber(Where));
}

TEST(RealizationCursor, BeginAdvancesByOneRealizationLeap) {
  StreamHierarchy Hierarchy{LeapTable()};
  RealizationCursor Cursor(Hierarchy, {0, 3, 0});
  EXPECT_EQ(Cursor.nextRealizationIndex(), 0u);
  Lcg128 First = Cursor.beginRealization();
  Lcg128 Second = Cursor.beginRealization();
  EXPECT_EQ(Cursor.nextRealizationIndex(), 2u);
  EXPECT_EQ(First.state(), Hierarchy.initialNumber({0, 3, 0}));
  EXPECT_EQ(Second.state(), Hierarchy.initialNumber({0, 3, 1}));
}

TEST(RealizationCursor, ConsumptionDoesNotAffectNextRealization) {
  // Drawing a varying number of values inside realization k must not move
  // the start of realization k+1 — the engine's independence guarantee.
  StreamHierarchy Hierarchy{LeapTable()};
  RealizationCursor Consuming(Hierarchy, {0, 0, 0});
  Lcg128 Stream = Consuming.beginRealization();
  for (int Draw = 0; Draw < 12345; ++Draw)
    Stream.nextUniform();
  Lcg128 AfterConsuming = Consuming.beginRealization();

  RealizationCursor Fresh(Hierarchy, {0, 0, 0});
  Fresh.beginRealization(); // untouched
  Lcg128 AfterFresh = Fresh.beginRealization();

  EXPECT_EQ(AfterConsuming.state(), AfterFresh.state());
}

TEST(RealizationCursor, SkipRealizationsMatchesRepeatedBegin) {
  StreamHierarchy Hierarchy{LeapTable()};
  RealizationCursor Skipping(Hierarchy, {1, 2, 0});
  Skipping.skipRealizations(1000);
  EXPECT_EQ(Skipping.nextRealizationIndex(), 1000u);

  RealizationCursor Stepping(Hierarchy, {1, 2, 0});
  for (int Step = 0; Step < 1000; ++Step)
    Stepping.beginRealization();

  EXPECT_EQ(Skipping.beginRealization().state(),
            Stepping.beginRealization().state());
}

TEST(RealizationCursor, MatchesDirectCoordinateConstruction) {
  StreamHierarchy Hierarchy{LeapTable()};
  RealizationCursor Cursor(Hierarchy, {0, 0, 500});
  EXPECT_EQ(Cursor.beginRealization().state(),
            Hierarchy.initialNumber({0, 0, 500}));
}

} // namespace
} // namespace parmonc
