//===- tests/rng/BaselinesTest.cpp - Comparison generator tests -----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/Baselines.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

namespace parmonc {
namespace {

TEST(SplitMix64, MatchesReferenceVector) {
  // Reference outputs for seed 1234567 from the public-domain reference
  // implementation (Vigna).
  SplitMix64 Generator(1234567);
  EXPECT_EQ(Generator.nextBits64(), 6457827717110365317ull);
  EXPECT_EQ(Generator.nextBits64(), 3203168211198807973ull);
  EXPECT_EQ(Generator.nextBits64(), 9817491932198370423ull);
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 A(1), B(2);
  EXPECT_NE(A.nextBits64(), B.nextBits64());
}

TEST(Xoshiro256StarStar, ProducesDistinctConsecutiveOutputs) {
  Xoshiro256StarStar Generator(7);
  uint64_t Previous = Generator.nextBits64();
  for (int Step = 0; Step < 1000; ++Step) {
    uint64_t Current = Generator.nextBits64();
    EXPECT_NE(Current, Previous);
    Previous = Current;
  }
}

TEST(Philox4x32, IsDeterministicForAKey) {
  Philox4x32 A(42), B(42);
  for (int Step = 0; Step < 100; ++Step)
    ASSERT_EQ(A.nextBits64(), B.nextBits64());
}

TEST(Philox4x32, KeysSeparateStreams) {
  Philox4x32 A(1), B(2);
  int Differences = 0;
  for (int Step = 0; Step < 64; ++Step)
    Differences += A.nextBits64() != B.nextBits64();
  EXPECT_EQ(Differences, 64);
}

TEST(Philox4x32, SeekToBlockReproducesContinuousStream) {
  // Counter-based property: block seeking equals sequential generation.
  Philox4x32 Sequential(9);
  std::vector<uint64_t> Expected;
  for (int Step = 0; Step < 8; ++Step)
    Expected.push_back(Sequential.nextBits64());

  Philox4x32 Seeked(9);
  Seeked.seekToBlock(2); // skip blocks 0 and 1 == four 64-bit outputs
  EXPECT_EQ(Seeked.nextBits64(), Expected[4]);
  EXPECT_EQ(Seeked.nextBits64(), Expected[5]);
}

TEST(Randu, MatchesClassicRecurrence) {
  // RANDU with seed 1: 65539, 393225, 1769499, ...
  Randu Generator(1);
  EXPECT_EQ(Generator.nextRaw(), 65539u);
  EXPECT_EQ(Generator.nextRaw(), 393225u);
  EXPECT_EQ(Generator.nextRaw(), 1769499u);
}

TEST(Randu, ExhibitsThePlanarDefect) {
  // Marsaglia's identity: x_{k+2} = 6 x_{k+1} - 9 x_k (mod 2^31). This is
  // the structure that makes RANDU fail 3-D tests; assert it holds so the
  // negative control really is defective.
  Randu Generator(1);
  uint32_t X0 = Generator.nextRaw();
  uint32_t X1 = Generator.nextRaw();
  for (int Step = 0; Step < 100; ++Step) {
    uint32_t X2 = Generator.nextRaw();
    uint64_t Predicted =
        (6ull * X1 + 9ull * (0x80000000ull - X0) * 1ull) & 0x7fffffffull;
    EXPECT_EQ(X2, uint32_t(Predicted)) << "step " << Step;
    X0 = X1;
    X1 = X2;
  }
}

// All baselines must honor the RandomSource contract.
class RandomSourceContract
    : public ::testing::TestWithParam<const char *> {
protected:
  static std::unique_ptr<RandomSource> makeNamed(const char *Name) {
    std::string Id(Name);
    if (Id == "splitmix64")
      return std::make_unique<SplitMix64>(123);
    if (Id == "xoshiro256**")
      return std::make_unique<Xoshiro256StarStar>(123);
    if (Id == "philox4x32-10")
      return std::make_unique<Philox4x32>(123);
    if (Id == "mcg64")
      return std::make_unique<Mcg64>(123);
    if (Id == "randu")
      return std::make_unique<Randu>(123);
    return nullptr;
  }
};

TEST_P(RandomSourceContract, UniformsStayInOpenInterval) {
  auto Generator = makeNamed(GetParam());
  ASSERT_NE(Generator, nullptr);
  for (int Step = 0; Step < 100000; ++Step) {
    double Value = Generator->nextUniform();
    ASSERT_GT(Value, 0.0);
    ASSERT_LT(Value, 1.0);
  }
}

TEST_P(RandomSourceContract, MeanIsNearHalf) {
  auto Generator = makeNamed(GetParam());
  ASSERT_NE(Generator, nullptr);
  double Sum = 0.0;
  const int Count = 200000;
  for (int Step = 0; Step < Count; ++Step)
    Sum += Generator->nextUniform();
  EXPECT_NEAR(Sum / Count, 0.5, 5e-3);
}

TEST_P(RandomSourceContract, NameMatchesParameter) {
  auto Generator = makeNamed(GetParam());
  ASSERT_NE(Generator, nullptr);
  EXPECT_STREQ(Generator->name(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, RandomSourceContract,
                         ::testing::Values("splitmix64", "xoshiro256**",
                                           "philox4x32-10", "mcg64",
                                           "randu"));

} // namespace
} // namespace parmonc
