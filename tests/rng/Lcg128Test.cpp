//===- tests/rng/Lcg128Test.cpp - Base generator tests --------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/Lcg128.h"
#include "parmonc/rng/LcgPow2.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace parmonc {
namespace {

TEST(Lcg128, DefaultMultiplierIs5To101) {
  // Independently recompute 5^101 mod 2^128 by repeated multiplication.
  UInt128 Expected(1);
  for (int Step = 0; Step < 101; ++Step)
    Expected = Expected * UInt128(5);
  EXPECT_EQ(Lcg128::defaultMultiplier(), Expected);
}

TEST(Lcg128, MultiplierIsFiveMod8) {
  // A ≡ 5 (mod 8) is what gives the maximal period 2^126.
  EXPECT_EQ(Lcg128::defaultMultiplier().low() % 8, 5u);
}

TEST(Lcg128, FirstStateIsTheMultiplier) {
  // u_0 = 1, so u_1 = A.
  Lcg128 Generator;
  EXPECT_EQ(Generator.nextRaw(), Lcg128::defaultMultiplier());
}

TEST(Lcg128, StateStaysOdd) {
  // Odd * odd is odd: the orbit never leaves the odd residues.
  Lcg128 Generator;
  for (int Step = 0; Step < 1000; ++Step)
    EXPECT_TRUE(Generator.nextRaw().bit(0)) << "step " << Step;
}

TEST(Lcg128, UniformOutputsAreInOpenUnitInterval) {
  Lcg128 Generator;
  for (int Step = 0; Step < 100000; ++Step) {
    double Value = Generator.nextUniform();
    EXPECT_GT(Value, 0.0);
    EXPECT_LT(Value, 1.0);
  }
}

TEST(Lcg128, UniformMeanIsNearHalf) {
  Lcg128 Generator;
  double Sum = 0.0;
  const int Count = 1000000;
  for (int Step = 0; Step < Count; ++Step)
    Sum += Generator.nextUniform();
  double Mean = Sum / Count;
  // Std error of the mean is ~0.289/1000 ≈ 2.9e-4; allow 5 sigma.
  EXPECT_NEAR(Mean, 0.5, 1.5e-3);
}

TEST(Lcg128, UniformSecondMomentIsNearOneThird) {
  Lcg128 Generator;
  double Sum = 0.0;
  const int Count = 1000000;
  for (int Step = 0; Step < Count; ++Step) {
    double Value = Generator.nextUniform();
    Sum += Value * Value;
  }
  EXPECT_NEAR(Sum / Count, 1.0 / 3.0, 2e-3);
}

TEST(Lcg128, SkipMatchesStepping) {
  // Leap-ahead property: skip(n) must land exactly where n sequential
  // steps land. This is the correctness anchor of the whole stream design.
  for (uint64_t Steps : {0ull, 1ull, 2ull, 3ull, 17ull, 1000ull, 65536ull}) {
    Lcg128 Skipped;
    Skipped.skip(UInt128(Steps));
    Lcg128 Stepped;
    for (uint64_t Step = 0; Step < Steps; ++Step)
      Stepped.nextRaw();
    EXPECT_EQ(Skipped.state(), Stepped.state()) << "steps " << Steps;
  }
}

TEST(Lcg128, SkipComposes) {
  // skip(m); skip(n) == skip(m+n).
  Lcg128 Composed;
  Composed.skip(UInt128(123456789));
  Composed.skip(UInt128(987654321));
  Lcg128 Direct;
  Direct.skip(UInt128(123456789 + 987654321ull));
  EXPECT_EQ(Composed.state(), Direct.state());
}

TEST(Lcg128, SkipWithMultiplierMatchesSkip) {
  UInt128 LeapMultiplier = UInt128::powModPow2(
      Lcg128::defaultMultiplier(), UInt128(424242), 128);
  Lcg128 ViaMultiplier;
  ViaMultiplier.skipWithMultiplier(LeapMultiplier);
  Lcg128 ViaSkip;
  ViaSkip.skip(UInt128(424242));
  EXPECT_EQ(ViaMultiplier.state(), ViaSkip.state());
}

TEST(Lcg128, HugeSkipIsConsistentWithSquaring) {
  // skip(2^100) twice == skip(2^101).
  Lcg128 Twice;
  Twice.skip(UInt128::powerOfTwo(100));
  Twice.skip(UInt128::powerOfTwo(100));
  Lcg128 Once;
  Once.skip(UInt128::powerOfTwo(101));
  EXPECT_EQ(Twice.state(), Once.state());
}

TEST(Lcg128, NoShortCycleInPrefix) {
  // The first million states must be distinct (period is 2^126).
  Lcg128 Generator;
  std::set<std::pair<uint64_t, uint64_t>> Seen;
  for (int Step = 0; Step < 1000000; ++Step) {
    UInt128 State = Generator.nextRaw();
    ASSERT_TRUE(Seen.emplace(State.high(), State.low()).second)
        << "cycle detected at step " << Step;
  }
}

TEST(Lcg128, SetStateRestoresSequence) {
  Lcg128 Generator;
  for (int Step = 0; Step < 10; ++Step)
    Generator.nextRaw();
  UInt128 Saved = Generator.state();
  double Expected = Generator.nextUniform();
  Generator.setState(Saved);
  EXPECT_DOUBLE_EQ(Generator.nextUniform(), Expected);
}

TEST(Lcg128, PeriodConstantsMatchPaper) {
  EXPECT_EQ(Lcg128::PeriodLog2, 126u);
  EXPECT_EQ(Lcg128::UsableLog2, 125u);
}

TEST(LcgPow2, Classic40HasPaperParameters) {
  LcgPow2 Generator = LcgPow2::makeClassic40();
  EXPECT_EQ(Generator.modulusBits(), 40u);
  EXPECT_EQ(Generator.multiplier(), UInt128(762939453125ull)); // 5^17
  EXPECT_EQ(Generator.periodLog2(), 38u);
}

TEST(LcgPow2, Classic40StaysBelowModulus) {
  LcgPow2 Generator = LcgPow2::makeClassic40();
  const UInt128 Modulus = UInt128::powerOfTwo(40);
  for (int Step = 0; Step < 10000; ++Step)
    EXPECT_LT(Generator.nextRaw(), Modulus);
}

TEST(LcgPow2, At128BitsMatchesLcg128) {
  LcgPow2 Wide(128, Lcg128::defaultMultiplier());
  Lcg128 Reference;
  for (int Step = 0; Step < 1000; ++Step)
    ASSERT_EQ(Wide.nextRaw(), Reference.nextRaw()) << "step " << Step;
}

TEST(LcgPow2, SkipMatchesSteppingAtNarrowModulus) {
  LcgPow2 Skipped = LcgPow2::makeClassic40();
  Skipped.skip(UInt128(12345));
  LcgPow2 Stepped = LcgPow2::makeClassic40();
  for (int Step = 0; Step < 12345; ++Step)
    Stepped.nextRaw();
  EXPECT_EQ(Skipped.state(), Stepped.state());
}

TEST(LcgPow2, UniformOutputsAreInOpenUnitInterval) {
  LcgPow2 Generator = LcgPow2::makeClassic40();
  for (int Step = 0; Step < 100000; ++Step) {
    double Value = Generator.nextUniform();
    EXPECT_GT(Value, 0.0);
    EXPECT_LT(Value, 1.0);
  }
}

TEST(LcgPow2, Classic40PeriodOfLowBitsIsShort) {
  // In a 2^r-modulus LCG, bit b of the state has period dividing 2^(b+1)
  // beyond the two fixed low bits. Demonstrate the well-known defect: the
  // third-lowest state bit (index 2) cycles with period 2.
  LcgPow2 Generator = LcgPow2::makeClassic40();
  bool First = Generator.nextRaw().bit(2);
  bool Second = Generator.nextRaw().bit(2);
  bool Third = Generator.nextRaw().bit(2);
  bool Fourth = Generator.nextRaw().bit(2);
  EXPECT_EQ(First, Third);
  EXPECT_EQ(Second, Fourth);
}

TEST(BitsToUnitOpen, MapsExtremesInsideInterval) {
  EXPECT_GT(bitsToUnitOpen(0), 0.0);
  EXPECT_LT(bitsToUnitOpen(~0ull), 1.0);
  EXPECT_NEAR(bitsToUnitOpen(1ull << 63), 0.5, 1e-15);
}

TEST(BitsToUnitOpen, IsMonotoneInTheTopBits) {
  EXPECT_LT(bitsToUnitOpen(0x1000000000000000ull),
            bitsToUnitOpen(0x2000000000000000ull));
}

} // namespace
} // namespace parmonc
