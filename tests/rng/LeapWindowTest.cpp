//===- tests/rng/LeapWindowTest.cpp - Windowed leap-ahead correctness -----===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// PowerWindow (docs/RNG.md#windowed-leap) must be bit-identical to the
// square-and-multiply oracle UInt128::powModPow2 for every exponent — the
// table only changes how many multiplies a query costs, never the result.
// Covered here: the issue's edge cases (A^(2^0), the capacity-boundary
// exponent 2^115 + 2^98 + 2^55), the checked-in golden leap constants,
// randomized differentials across moduli widths, and the three call sites
// that now route through the window (LeapTable, initialNumber,
// RealizationCursor striding, Lcg128::skip).
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/LeapWindow.h"

#include "parmonc/rng/Lcg128.h"
#include "parmonc/rng/StreamHierarchy.h"

#include <gtest/gtest.h>

namespace parmonc {
namespace {

// Independently recomputed leap multipliers (see LeapGoldenTest.cpp).
constexpr UInt128 GoldenA115(0x7760000000000000ull, 0x0000000000000001ull);
constexpr UInt128 GoldenA98(0xb424bbb000000000ull, 0x0000000000000001ull);
constexpr UInt128 GoldenA43(0x402b44410f553568ull, 0x4977600000000001ull);

TEST(PowerWindow, TrivialExponents) {
  const PowerWindow Window(Lcg128::defaultMultiplier());
  EXPECT_EQ(Window.pow(UInt128(0)), UInt128(1));
  // A^(2^0) = A^1: the smallest power-of-two exponent is a bare table
  // lookup and must return the base itself.
  EXPECT_EQ(Window.pow(UInt128(1)), Lcg128::defaultMultiplier());
  EXPECT_EQ(Window.pow(UInt128(2)),
            Lcg128::defaultMultiplier() * Lcg128::defaultMultiplier());
}

TEST(PowerWindow, GoldenLeapConstants) {
  const PowerWindow Window(Lcg128::defaultMultiplier());
  EXPECT_EQ(Window.pow(UInt128::powerOfTwo(115)), GoldenA115);
  EXPECT_EQ(Window.pow(UInt128::powerOfTwo(98)), GoldenA98);
  EXPECT_EQ(Window.pow(UInt128::powerOfTwo(43)), GoldenA43);
}

TEST(PowerWindow, CapacityBoundaryExponent) {
  // The largest draw index the default hierarchy can address: the last
  // realization of the last processor of the last experiment starts at
  // exponent 2^115·(2^10-1) + ... but the issue's representative boundary
  // composite 2^115 + 2^98 + 2^55 exercises one digit in three distinct
  // window rows at once.
  const UInt128 Exponent = UInt128::powerOfTwo(115) + UInt128::powerOfTwo(98) +
                           UInt128::powerOfTwo(55);
  const UInt128 A = Lcg128::defaultMultiplier();
  const PowerWindow Window(A);
  EXPECT_EQ(Window.pow(Exponent), UInt128::powModPow2(A, Exponent, 128));
  // And the algebraic identity: A^(2^115 + 2^98 + 2^55) is the product of
  // the three power-of-two leaps.
  EXPECT_EQ(Window.pow(Exponent),
            GoldenA115 * GoldenA98 *
                UInt128::powModPow2(A, UInt128::powerOfTwo(55), 128));
}

TEST(PowerWindow, MatchesPowModPow2OnRandomizedExponents) {
  Lcg128 Entropy;
  const UInt128 Bases[] = {
      Lcg128::defaultMultiplier(),
      UInt128(5),
      UInt128(0x123456789abcdefull, 0xfedcba9876543211ull),
      UInt128(0, 3),
  };
  for (const UInt128 &Base : Bases) {
    const PowerWindow Window(Base);
    for (int Trial = 0; Trial < 64; ++Trial) {
      const UInt128 Exponent(Entropy.nextBits64(), Entropy.nextBits64());
      EXPECT_EQ(Window.pow(Exponent),
                UInt128::powModPow2(Base, Exponent, 128))
          << "trial " << Trial;
    }
  }
}

TEST(PowerWindow, RespectsNarrowModuli) {
  // LcgPow2-style generators live in narrower rings; the window must
  // truncate exactly as the oracle does at every width.
  Lcg128 Entropy(Lcg128::defaultMultiplier(), UInt128(0, 12345));
  for (unsigned Bits : {1u, 7u, 40u, 63u, 64u, 65u, 127u}) {
    const UInt128 Base(0, 0x5deece66dull);
    const PowerWindow Window(Base, Bits);
    EXPECT_EQ(Window.modulusBits(), Bits);
    for (int Trial = 0; Trial < 16; ++Trial) {
      const UInt128 Exponent(Entropy.nextBits64(), Entropy.nextBits64());
      EXPECT_EQ(Window.pow(Exponent),
                UInt128::powModPow2(Base, Exponent, Bits))
          << "bits " << Bits << " trial " << Trial;
    }
  }
}

TEST(PowerWindow, LeapTableRoutesThroughWindow) {
  const LeapTable Table;
  EXPECT_EQ(Table.experimentLeap(), GoldenA115);
  EXPECT_EQ(Table.processorLeap(), GoldenA98);
  EXPECT_EQ(Table.realizationLeap(), GoldenA43);
  EXPECT_EQ(&Table.baseWindow(), &Table.baseWindow());
  // powerOfBase is the public window query used by cursors and hierarchy
  // positioning; it must agree with the oracle for composite exponents.
  const UInt128 Exponent = (UInt128(37) << 43) + UInt128(11);
  EXPECT_EQ(Table.powerOfBase(Exponent),
            UInt128::powModPow2(Table.baseMultiplier(), Exponent, 128));
}

TEST(PowerWindow, InitialNumberMatchesTripleProductOracle) {
  // initialNumber now computes A^(e·2^ne + p·2^np + k·2^nr) in one window
  // query; the pre-window formulation was the explicit triple product.
  const StreamHierarchy Hierarchy;
  const LeapConfig Config;
  const UInt128 A = Lcg128::defaultMultiplier();
  const StreamCoordinates Cases[] = {
      {0, 0, 0}, {1, 0, 0},     {0, 1, 0},
      {0, 0, 1}, {3, 129, 977}, {1023, 4321, 0xffffffffull},
  };
  for (const StreamCoordinates &Where : Cases) {
    const UInt128 Oracle =
        UInt128::powModPow2(A, UInt128(Where.Experiment)
                                   << Config.ExperimentLog2,
                            128) *
        UInt128::powModPow2(A, UInt128(Where.Processor)
                                   << Config.ProcessorLog2,
                            128) *
        UInt128::powModPow2(A, UInt128(Where.Realization)
                                   << Config.RealizationLog2,
                            128);
    EXPECT_EQ(Hierarchy.initialNumber(Where), Oracle)
        << "e=" << Where.Experiment << " p=" << Where.Processor
        << " k=" << Where.Realization;
  }
}

TEST(PowerWindow, StrideLeapMatchesOracle) {
  // RealizationCursor's strided leap is powerOfBase(Stride << nr); the
  // oracle is the stride-th power of the checked-in realization leap.
  const LeapTable Table;
  for (uint64_t Stride : {1ull, 2ull, 16ull, 255ull, 100003ull}) {
    EXPECT_EQ(
        Table.powerOfBase(UInt128(Stride) << Table.config().RealizationLog2),
        UInt128::powModPow2(Table.realizationLeap(), UInt128(Stride), 128))
        << "stride " << Stride;
  }
}

TEST(PowerWindow, Lcg128SkipMatchesStepping) {
  // skip() routes default-multiplier generators through a shared window;
  // non-default multipliers take the powModPow2 fallback. Both must equal
  // literal stepping.
  for (const UInt128 &Multiplier :
       {Lcg128::defaultMultiplier(), UInt128(0, 5)}) {
    Lcg128 Skipped(Multiplier, UInt128(0x1234, 0x5679ull));
    Lcg128 Stepped(Multiplier, UInt128(0x1234, 0x5679ull));
    Skipped.skip(UInt128(1000));
    for (int Draw = 0; Draw < 1000; ++Draw)
      Stepped.nextBits64();
    EXPECT_EQ(Skipped.state(), Stepped.state());
    // A huge skip: only reachable through the power table.
    Skipped.skip(UInt128::powerOfTwo(115) + UInt128::powerOfTwo(98));
    Stepped.setState(Stepped.state() *
                     UInt128::powModPow2(Multiplier,
                                         UInt128::powerOfTwo(115) +
                                             UInt128::powerOfTwo(98),
                                         128));
    EXPECT_EQ(Skipped.state(), Stepped.state());
  }
}

TEST(PowerWindow, RebuildsConsistentlyForArbitraryBases) {
  // Two windows over the same base are interchangeable (pure function of
  // the base), and a window base() round-trips.
  const UInt128 Base(0xdeadbeefcafef00dull, 0x0123456789abcdefull);
  const PowerWindow First(Base);
  const PowerWindow Second(Base);
  EXPECT_EQ(First.base(), Base);
  const UInt128 Exponent(0x42ull, 0x424242ull);
  EXPECT_EQ(First.pow(Exponent), Second.pow(Exponent));
}

} // namespace
} // namespace parmonc
