//===- tests/rng/StdAdapterTest.cpp - <random> interop tests --------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/StdAdapter.h"

#include "parmonc/rng/Lcg128.h"
#include "parmonc/stats/RunningStat.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

namespace parmonc {
namespace {

TEST(StdBitGenerator, SatisfiesUrbgRequirements) {
  static_assert(StdBitGenerator::min() == 0);
  static_assert(StdBitGenerator::max() == ~0ull);
  Lcg128 Source;
  StdBitGenerator Generator(Source);
  // Values come from the wrapped source.
  Lcg128 Reference;
  EXPECT_EQ(Generator(), Reference.nextBits64());
  EXPECT_EQ(Generator(), Reference.nextBits64());
}

TEST(StdBitGenerator, DrivesStdNormalDistribution) {
  Lcg128 Source;
  StdBitGenerator Generator(Source);
  std::normal_distribution<double> Normal(5.0, 2.0);
  RunningStat Stats;
  for (int Draw = 0; Draw < 200000; ++Draw)
    Stats.add(Normal(Generator));
  EXPECT_NEAR(Stats.mean(), 5.0, 0.03);
  EXPECT_NEAR(Stats.stdDev(), 2.0, 0.03);
}

TEST(StdBitGenerator, DrivesStdShuffle) {
  Lcg128 Source;
  StdBitGenerator Generator(Source);
  std::vector<int> Values(100);
  std::iota(Values.begin(), Values.end(), 0);
  std::vector<int> Original = Values;
  std::shuffle(Values.begin(), Values.end(), Generator);
  EXPECT_NE(Values, Original); // astronomically unlikely to be identity
  std::sort(Values.begin(), Values.end());
  EXPECT_EQ(Values, Original); // it is a permutation
}

TEST(StdBitGenerator, DrivesStdUniformInt) {
  Lcg128 Source;
  StdBitGenerator Generator(Source);
  std::uniform_int_distribution<int> Die(1, 6);
  std::vector<int64_t> Counts(7, 0);
  const int Draws = 600000;
  for (int Draw = 0; Draw < Draws; ++Draw)
    ++Counts[size_t(Die(Generator))];
  for (int Face = 1; Face <= 6; ++Face)
    EXPECT_NEAR(double(Counts[size_t(Face)]) / Draws, 1.0 / 6.0, 0.005)
        << "face " << Face;
}

TEST(UrbgSource, WrapsMersenneTwister) {
  UrbgSource<std::mt19937_64> Source(std::mt19937_64(42));
  RunningStat Stats;
  for (int Draw = 0; Draw < 200000; ++Draw) {
    const double Value = Source.nextUniform();
    ASSERT_GT(Value, 0.0);
    ASSERT_LT(Value, 1.0);
    Stats.add(Value);
  }
  EXPECT_NEAR(Stats.mean(), 0.5, 0.005);
  EXPECT_STREQ(Source.name(), "std-urbg");
}

TEST(UrbgSource, MatchesUnderlyingGeneratorBits) {
  std::mt19937_64 Reference(7);
  UrbgSource<std::mt19937_64> Source(std::mt19937_64(7));
  for (int Draw = 0; Draw < 100; ++Draw)
    EXPECT_EQ(Source.nextBits64(), Reference());
}

TEST(FillUniforms, FillsExactlyAndInOrder) {
  Lcg128 Bulk, Reference;
  std::vector<double> Values(1000, -1.0);
  fillUniforms(Bulk, Values.data(), Values.size());
  for (double Value : Values) {
    EXPECT_DOUBLE_EQ(Value, Reference.nextUniform());
  }
}

TEST(FillUniforms, ZeroCountIsANoOp) {
  Lcg128 Source;
  const UInt128 Before = Source.state();
  fillUniforms(Source, nullptr, 0);
  EXPECT_EQ(Source.state(), Before);
}

} // namespace
} // namespace parmonc
