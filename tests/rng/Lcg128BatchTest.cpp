//===- tests/rng/Lcg128BatchTest.cpp - Batch kernel bit-equality ----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The batched generation contract: fillBatch / fillBatchBits64 /
// fillUniforms / fillBlockLeap must be *bit-equal* to the scalar
// recurrence — same outputs, same final state — for every count,
// including the tails the four-lane kernel handles scalar-style.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/Lcg128.h"
#include "parmonc/rng/StreamHierarchy.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace parmonc {
namespace {

/// Counts around every kernel boundary: empty, sub-quad tails, exact
/// quads, quad+tail, and a large batch.
const size_t Counts[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 31, 64, 1023, 1024};

TEST(Lcg128Batch, FillBatchMatchesScalarSequence) {
  for (size_t Count : Counts) {
    Lcg128 Scalar, Batched;
    std::vector<double> Expected(Count), Actual(Count);
    for (size_t Index = 0; Index < Count; ++Index)
      Expected[Index] = Scalar.nextUniform();
    Batched.fillBatch(Actual.data(), Count);
    for (size_t Index = 0; Index < Count; ++Index)
      ASSERT_EQ(Expected[Index], Actual[Index])
          << "count " << Count << ", draw " << Index;
    EXPECT_EQ(Scalar.state().high(), Batched.state().high())
        << "final state mismatch at count " << Count;
    EXPECT_EQ(Scalar.state().low(), Batched.state().low());
  }
}

TEST(Lcg128Batch, FillBatchBits64MatchesScalarSequence) {
  for (size_t Count : Counts) {
    Lcg128 Scalar, Batched;
    std::vector<uint64_t> Expected(Count), Actual(Count);
    for (size_t Index = 0; Index < Count; ++Index)
      Expected[Index] = Scalar.nextBits64();
    Batched.fillBatchBits64(Actual.data(), Count);
    for (size_t Index = 0; Index < Count; ++Index)
      ASSERT_EQ(Expected[Index], Actual[Index])
          << "count " << Count << ", draw " << Index;
    EXPECT_EQ(Scalar.state().high(), Batched.state().high());
    EXPECT_EQ(Scalar.state().low(), Batched.state().low());
  }
}

TEST(Lcg128Batch, FillBatchChunksComposeLikeOneStream) {
  // Draining one generator in odd-sized chunks must be the same stream as
  // one big batch: the state handoff between calls is part of the
  // contract.
  Lcg128 Whole, Chunked;
  std::vector<double> Expected(1000), Actual(1000);
  Whole.fillBatch(Expected.data(), Expected.size());
  size_t Offset = 0;
  for (size_t Chunk : {1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u, 144u,
                       233u, 377u, 15u}) {
    Chunked.fillBatch(Actual.data() + Offset, Chunk);
    Offset += Chunk;
  }
  ASSERT_EQ(Offset, Actual.size());
  EXPECT_EQ(Expected, Actual);
  EXPECT_EQ(Whole.state().high(), Chunked.state().high());
  EXPECT_EQ(Whole.state().low(), Chunked.state().low());
}

TEST(Lcg128Batch, FillUniformsOverrideUsesBatchKernel) {
  // Through the RandomSource interface (what realization routines see),
  // bulk generation must still be the scalar sequence.
  Lcg128 Scalar, Bulk;
  RandomSource &Source = Bulk;
  std::vector<double> Expected(257), Actual(257);
  for (double &Value : Expected)
    Value = Scalar.nextUniform();
  Source.fillUniforms(Actual.data(), Actual.size());
  EXPECT_EQ(Expected, Actual);
}

TEST(Lcg128Batch, DefaultFillUniformsLoopsScalar) {
  // A RandomSource that does NOT override fillUniforms gets the scalar
  // loop — same sequence, no surprises for exotic sources.
  class Counting final : public RandomSource {
  public:
    double nextUniform() override { return double(++Calls); }
    uint64_t nextBits64() override { return ++Calls; }
    const char *name() const override { return "counting"; }
    uint64_t Calls = 0;
  };
  Counting Source;
  double Out[5];
  static_cast<RandomSource &>(Source).fillUniforms(Out, 5);
  for (int Index = 0; Index < 5; ++Index)
    EXPECT_EQ(Out[Index], double(Index + 1));
}

TEST(Lcg128Batch, FillBlockLeapMatchesRealizationCursor) {
  // Block b of fillBlockLeap must equal the first DrawsPerBlock draws of
  // realization subsequence b as the engine's cursor would produce them,
  // and the final state must be the start of block BlockCount.
  const StreamHierarchy Hierarchy{LeapTable()};
  const size_t BlockCount = 5, DrawsPerBlock = 17;

  RealizationCursor Cursor(Hierarchy, StreamCoordinates{0, 0, 0});
  std::vector<double> Expected;
  for (size_t Block = 0; Block < BlockCount; ++Block) {
    Lcg128 Stream = Cursor.beginRealization();
    for (size_t Draw = 0; Draw < DrawsPerBlock; ++Draw)
      Expected.push_back(Stream.nextUniform());
  }

  Lcg128 Leaper = Hierarchy.makeStream(StreamCoordinates{0, 0, 0});
  std::vector<double> Actual(BlockCount * DrawsPerBlock);
  Leaper.fillBlockLeap(Actual.data(), BlockCount, DrawsPerBlock,
                       Hierarchy.leapTable().realizationLeap());
  EXPECT_EQ(Expected, Actual);

  const Lcg128 NextBlockStart =
      Hierarchy.makeStream(StreamCoordinates{0, 0, BlockCount});
  EXPECT_EQ(NextBlockStart.state().high(), Leaper.state().high());
  EXPECT_EQ(NextBlockStart.state().low(), Leaper.state().low());
}

TEST(Lcg128Batch, StridedCursorPartitionCoversSerialAssignment) {
  // N stride-N cursors starting at offsets 0..N-1 must jointly visit the
  // serial cursor's realization starts exactly once each — the invariant
  // the threaded engine's stream assignment rests on.
  const StreamHierarchy Hierarchy{LeapTable()};
  const uint64_t Threads = 4, PerThread = 8;

  RealizationCursor Serial(Hierarchy, StreamCoordinates{0, 3, 0});
  std::vector<UInt128> SerialStarts;
  for (uint64_t Index = 0; Index < Threads * PerThread; ++Index)
    SerialStarts.push_back(Serial.beginRealization().state());

  for (uint64_t Thread = 0; Thread < Threads; ++Thread) {
    RealizationCursor Strided(Hierarchy, StreamCoordinates{0, 3, Thread},
                              Threads);
    EXPECT_EQ(Strided.stride(), Threads);
    for (uint64_t Step = 0; Step < PerThread; ++Step) {
      EXPECT_EQ(Strided.nextRealizationIndex(), Thread + Step * Threads);
      const UInt128 Start = Strided.beginRealization().state();
      const UInt128 Expected = SerialStarts[Thread + Step * Threads];
      ASSERT_EQ(Expected.high(), Start.high())
          << "thread " << Thread << ", step " << Step;
      ASSERT_EQ(Expected.low(), Start.low());
    }
  }
}

TEST(Lcg128Batch, StridedCursorSkipMatchesStepping) {
  const StreamHierarchy Hierarchy{LeapTable()};
  RealizationCursor Stepped(Hierarchy, StreamCoordinates{0, 1, 2}, 3);
  RealizationCursor Skipped(Hierarchy, StreamCoordinates{0, 1, 2}, 3);
  for (int Step = 0; Step < 7; ++Step)
    (void)Stepped.beginRealization();
  Skipped.skipRealizations(7);
  EXPECT_EQ(Stepped.nextRealizationIndex(), Skipped.nextRealizationIndex());
  const UInt128 A = Stepped.beginRealization().state();
  const UInt128 B = Skipped.beginRealization().state();
  EXPECT_EQ(A.high(), B.high());
  EXPECT_EQ(A.low(), B.low());
}

} // namespace
} // namespace parmonc
