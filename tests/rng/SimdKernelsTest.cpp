//===- tests/rng/SimdKernelsTest.cpp - Wide-vs-four-lane differentials ----===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The wide SIMD kernels' bit-equality contract (docs/RNG.md#kernel-paths):
// every fill entry point must emit exactly the serial recurrence's byte
// stream and leave exactly the serial state, for every length — including
// the awkward ones (0, 1, lane-count±1, large odd). The four-lane kernel
// is the differential oracle, itself pinned to the scalar recurrence by
// Lcg128BatchTest; here the dispatching paths and the wide kernels are
// diffed against it directly.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/SimdKernels.h"

#include "parmonc/rng/Lcg128.h"
#include "parmonc/rng/StreamHierarchy.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace parmonc {
namespace {

// The awkward lengths the issue calls out, bracketing the 8-lane width and
// the dispatch threshold, plus a large odd count.
const size_t AwkwardLengths[] = {0,  1,  2,  3,  7,   8,   9,    15,  16,
                                 17, 31, 32, 33, 100, 257, 1024, 4097};

UInt128 seedFor(uint64_t Salt) {
  // Any odd 128-bit value is a valid state; spread the salt across both
  // limbs so high-limb behaviour is exercised too.
  return UInt128(0x9e3779b97f4a7c15ull * (Salt + 1),
                 (0xd1342543de82ef95ull * (Salt + 3)) | 1);
}

TEST(SimdKernels, CompiledBackendHasAStableName) {
  const std::string Name = rngsimd::backendName(rngsimd::CompiledBackend);
  EXPECT_TRUE(Name == "scalar" || Name == "avx2" || Name == "avx512")
      << Name;
  const std::string Kernel = Lcg128::batchKernelName();
  EXPECT_TRUE(Kernel == "scalar-wide" || Kernel == "avx2" ||
              Kernel == "avx512" || Kernel == "four-lane")
      << Kernel;
}

TEST(SimdKernels, FillBatchMatchesFourLaneAtAwkwardLengths) {
  for (uint64_t Salt = 0; Salt < 3; ++Salt) {
    for (size_t Count : AwkwardLengths) {
      Lcg128 Dispatched(Lcg128::defaultMultiplier(), seedFor(Salt));
      Lcg128 Oracle(Lcg128::defaultMultiplier(), seedFor(Salt));
      std::vector<double> Got(Count + 1, -1.0), Want(Count + 1, -1.0);
      Dispatched.fillBatch(Got.data(), Count);
      Oracle.fillBatchFourLane(Want.data(), Count);
      for (size_t Index = 0; Index < Count; ++Index)
        ASSERT_EQ(Got[Index], Want[Index])
            << "count " << Count << " index " << Index;
      EXPECT_EQ(Got[Count], -1.0) << "overwrote past the batch";
      EXPECT_EQ(Dispatched.state(), Oracle.state()) << "count " << Count;
    }
  }
}

TEST(SimdKernels, FillBatchBits64MatchesFourLaneAtAwkwardLengths) {
  for (size_t Count : AwkwardLengths) {
    Lcg128 Dispatched(Lcg128::defaultMultiplier(), seedFor(7));
    Lcg128 Oracle(Lcg128::defaultMultiplier(), seedFor(7));
    std::vector<uint64_t> Got(Count + 1, ~0ull), Want(Count + 1, ~0ull);
    Dispatched.fillBatchBits64(Got.data(), Count);
    Oracle.fillBatchBits64FourLane(Want.data(), Count);
    EXPECT_EQ(Got, Want) << "count " << Count;
    EXPECT_EQ(Dispatched.state(), Oracle.state()) << "count " << Count;
  }
}

TEST(SimdKernels, FillBatchMatchesScalarDrawsExactly) {
  // The strongest oracle: one nextUniform() at a time. Doubles must be
  // bit-identical, not just close — memcmp, not EXPECT_DOUBLE_EQ.
  constexpr size_t Count = 1027;
  Lcg128 Batched;
  Lcg128 Scalar;
  std::vector<double> Got(Count), Want(Count);
  Batched.fillBatch(Got.data(), Count);
  for (double &Value : Want)
    Value = Scalar.nextUniform();
  EXPECT_EQ(0, std::memcmp(Got.data(), Want.data(), Count * sizeof(double)));
  EXPECT_EQ(Batched.state(), Scalar.state());
}

TEST(SimdKernels, WideKernelDirectlyMatchesFourLane) {
  // Bypass the dispatcher: exercise the compiled wide kernel itself (when
  // this host can run it) so the test stays meaningful even if dispatch
  // thresholds change.
  if (!rngsimd::runtimeSupportsCompiledBackend())
    GTEST_SKIP() << "compiled SIMD backend not executable on this host";
  for (size_t Count : AwkwardLengths) {
    UInt128 WideState = seedFor(11);
    std::vector<double> Got(Count), Want(Count);
    rngsimd::fillBatchWide(WideState, Lcg128::defaultMultiplier(), Got.data(),
                           Count);
    Lcg128 Oracle(Lcg128::defaultMultiplier(), seedFor(11));
    Oracle.fillBatchFourLane(Want.data(), Count);
    EXPECT_EQ(Got, Want) << "count " << Count;
    EXPECT_EQ(WideState, Oracle.state()) << "count " << Count;
  }
}

TEST(SimdKernels, FillBatchChunksCompose) {
  // Many dispatched chunks of mixed sizes (crossing the wide/four-lane
  // threshold both ways) must equal one large batch.
  constexpr size_t Total = 3000;
  Lcg128 Chunked;
  Lcg128 Whole;
  std::vector<double> Got(Total), Want(Total);
  size_t Offset = 0;
  size_t ChunkA = 1, ChunkB = 1;
  while (Offset < Total) {
    const size_t Chunk = std::min(ChunkA, Total - Offset);
    Chunked.fillBatch(Got.data() + Offset, Chunk);
    Offset += Chunk;
    const size_t Next = ChunkA + ChunkB; // Fibonacci: 1,2,3,5,8,...
    ChunkA = ChunkB;
    ChunkB = Next;
  }
  Whole.fillBatch(Want.data(), Total);
  EXPECT_EQ(Got, Want);
  EXPECT_EQ(Chunked.state(), Whole.state());
}

TEST(SimdKernels, FillBlockLeapMatchesFourLaneAcrossShapes) {
  const LeapTable Table;
  const UInt128 Leap = Table.realizationLeap();
  const size_t BlockCounts[] = {0, 1, 2, 7, 8, 9, 16, 17, 33};
  const size_t DrawCounts[] = {0, 1, 2, 5, 8, 13};
  for (size_t Blocks : BlockCounts) {
    for (size_t Draws : DrawCounts) {
      Lcg128 Dispatched(Table.baseMultiplier(), seedFor(Blocks + Draws));
      Lcg128 Oracle(Table.baseMultiplier(), seedFor(Blocks + Draws));
      std::vector<double> Got(Blocks * Draws + 1, -1.0);
      std::vector<double> Want(Blocks * Draws + 1, -1.0);
      Dispatched.fillBlockLeap(Got.data(), Blocks, Draws, Leap);
      Oracle.fillBlockLeapFourLane(Want.data(), Blocks, Draws, Leap);
      ASSERT_EQ(Got, Want) << "blocks " << Blocks << " draws " << Draws;
      EXPECT_EQ(Dispatched.state(), Oracle.state())
          << "blocks " << Blocks << " draws " << Draws;
    }
  }
}

TEST(SimdKernels, FillBlockLeapWideDirectlyMatchesOracle) {
  if (!rngsimd::runtimeSupportsCompiledBackend())
    GTEST_SKIP() << "compiled SIMD backend not executable on this host";
  const LeapTable Table;
  const UInt128 Leap = Table.realizationLeap();
  constexpr size_t Blocks = 21, Draws = 7;
  UInt128 WideState = seedFor(42);
  std::vector<double> Got(Blocks * Draws), Want(Blocks * Draws);
  rngsimd::fillBlockLeapWide(WideState, Table.baseMultiplier(), Got.data(),
                             Blocks, Draws, Leap);
  Lcg128 Oracle(Table.baseMultiplier(), seedFor(42));
  Oracle.fillBlockLeapFourLane(Want.data(), Blocks, Draws, Leap);
  EXPECT_EQ(Got, Want);
  EXPECT_EQ(WideState, Oracle.state());
}

TEST(SimdKernels, FourLaneOracleStillMatchesScalar) {
  // Keep the oracle honest: the four-lane path itself stays pinned to the
  // serial recurrence even as it gains callers.
  constexpr size_t Count = 517;
  Lcg128 FourLane(Lcg128::defaultMultiplier(), seedFor(5));
  Lcg128 Scalar(Lcg128::defaultMultiplier(), seedFor(5));
  std::vector<double> Got(Count), Want(Count);
  FourLane.fillBatchFourLane(Got.data(), Count);
  for (double &Value : Want)
    Value = Scalar.nextUniform();
  EXPECT_EQ(Got, Want);
  EXPECT_EQ(FourLane.state(), Scalar.state());
}

} // namespace
} // namespace parmonc
