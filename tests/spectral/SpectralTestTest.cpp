//===- tests/spectral/SpectralTestTest.cpp - Spectral test validation -----===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/spectral/SpectralTest.h"

#include "parmonc/rng/Lcg128.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace parmonc {
namespace {

/// Exhaustive shortest-vector search in the dual lattice for tiny moduli:
/// scan x in [-Box, Box]^t, keep the shortest x with
/// x1 + a x2 + ... + a^{t-1} xt ≡ 0 (mod m). Ground truth for the
/// LLL+enumeration pipeline.
int64_t bruteForceSquaredNu(int64_t M, int64_t A, int Dimension,
                            int64_t Box) {
  std::vector<int64_t> Powers(static_cast<size_t>(Dimension));
  Powers[0] = 1;
  for (int Index = 1; Index < Dimension; ++Index)
    Powers[size_t(Index)] = Powers[size_t(Index) - 1] * A % M;

  int64_t BestSquared = std::numeric_limits<int64_t>::max();
  std::vector<int64_t> X(size_t(Dimension), -Box);
  for (;;) {
    int64_t Congruence = 0;
    int64_t Squared = 0;
    bool AllZero = true;
    for (int Index = 0; Index < Dimension; ++Index) {
      Congruence += X[size_t(Index)] % M * Powers[size_t(Index)] % M;
      Squared += X[size_t(Index)] * X[size_t(Index)];
      AllZero &= X[size_t(Index)] == 0;
    }
    if (!AllZero && ((Congruence % M) + M) % M == 0)
      BestSquared = std::min(BestSquared, Squared);

    int Level = 0;
    while (Level < Dimension && ++X[size_t(Level)] > Box) {
      X[size_t(Level)] = -Box;
      ++Level;
    }
    if (Level == Dimension)
      break;
  }
  return BestSquared;
}

TEST(DualLatticeBasis, HasDeterminantStructure) {
  LatticeBasis Basis = makeDualLatticeBasis(BigInt(64), BigInt(5), 3);
  ASSERT_EQ(Basis.size(), 3u);
  EXPECT_EQ(Basis[0][0].toInt64(), 64);
  EXPECT_EQ(Basis[1][0].toInt64(), -5);
  EXPECT_EQ(Basis[1][1].toInt64(), 1);
  EXPECT_EQ(Basis[2][0].toInt64(), -25);
  EXPECT_EQ(Basis[2][2].toInt64(), 1);
}

TEST(DualLatticeBasis, EveryBasisVectorSatisfiesTheCongruence) {
  const int64_t M = 1024, A = 413;
  for (int Dimension : {2, 3, 4, 5}) {
    LatticeBasis Basis = makeDualLatticeBasis(BigInt(M), BigInt(A),
                                              Dimension);
    for (const std::vector<BigInt> &Row : Basis) {
      int64_t Congruence = 0;
      int64_t Power = 1;
      for (int Index = 0; Index < Dimension; ++Index) {
        Congruence =
            (Congruence + Row[size_t(Index)].toInt64() % M * Power) % M;
        Power = Power * A % M;
      }
      EXPECT_EQ(((Congruence % M) + M) % M, 0);
    }
  }
}

TEST(ReduceLll, PreservesSmallLatticeMembership) {
  const int64_t M = 512, A = 173;
  LatticeBasis Basis = makeDualLatticeBasis(BigInt(M), BigInt(A), 4);
  reduceLll(Basis);
  // Every reduced vector must still satisfy the congruence.
  for (const std::vector<BigInt> &Row : Basis) {
    int64_t Congruence = 0;
    int64_t Power = 1;
    for (int Index = 0; Index < 4; ++Index) {
      Congruence =
          (Congruence + Row[size_t(Index)].toInt64() % M * Power) % M;
      Power = Power * A % M;
    }
    EXPECT_EQ(((Congruence % M) + M) % M, 0);
  }
}

TEST(ReduceLll, ShrinksTheBasis) {
  LatticeBasis Basis =
      makeDualLatticeBasis(BigInt(1) .shiftLeft(31), BigInt(65539), 3);
  const BigInt OriginalFirstNorm = squaredNorm(Basis[0]);
  reduceLll(Basis);
  EXPECT_LT(squaredNorm(Basis[0]), OriginalFirstNorm);
}

TEST(FindShortestVector, MatchesBruteForceOnRandomSmallLattices) {
  // The pipeline's correctness anchor: exhaustive search agreement across
  // random multipliers, moduli and dimensions.
  std::mt19937_64 Rng(123);
  for (int Trial = 0; Trial < 25; ++Trial) {
    const int64_t M = 64 << (Trial % 4);          // 64..512
    int64_t A = int64_t(Rng() % uint64_t(M)) | 1; // odd
    const int Dimension = 2 + int(Trial % 4);     // 2..5

    LatticeBasis Basis =
        makeDualLatticeBasis(BigInt(M), BigInt(A), Dimension);
    ShortestVectorResult Shortest = findShortestVector(Basis);

    // Box bound: a lattice of determinant M has a vector of length
    // <= sqrt(gamma_t) M^(1/t); double it for safety.
    const int64_t Box = int64_t(
        std::ceil(2.0 * std::sqrt(hermiteConstant(Dimension)) *
                  std::pow(double(M), 1.0 / Dimension)));
    const int64_t Expected = bruteForceSquaredNu(M, A, Dimension, Box);
    EXPECT_EQ(Shortest.SquaredLength.toInt64(), Expected)
        << "m=" << M << " a=" << A << " t=" << Dimension;
  }
}

TEST(FindShortestVector, ReturnsAnActualLatticeVector) {
  const int64_t M = 256, A = 77;
  LatticeBasis Basis = makeDualLatticeBasis(BigInt(M), BigInt(A), 3);
  ShortestVectorResult Shortest = findShortestVector(Basis);
  EXPECT_EQ(squaredNorm(Shortest.Vector), Shortest.SquaredLength);
  int64_t Congruence = 0;
  int64_t Power = 1;
  for (int Index = 0; Index < 3; ++Index) {
    Congruence =
        (Congruence + Shortest.Vector[size_t(Index)].toInt64() % M * Power) %
        M;
    Power = Power * A % M;
  }
  EXPECT_EQ(((Congruence % M) + M) % M, 0);
  EXPECT_FALSE(Shortest.SquaredLength.isZero());
}

TEST(SpectralTest, RanduHasTheFamousPlanes) {
  // RANDU (a = 65539, m = 2^31): (9, -6, 1) is a dual vector because
  // a² - 6a + 9 = 2^32 ≡ 0 (mod 2^31), so ν₃² <= 118 — the infamous 15
  // planes. The exact shortest vector is that one.
  std::vector<SpectralResult> Results = runSpectralTestPow2(
      31, UInt128(65539), 3, /*UseEffectiveModulus=*/false);
  ASSERT_EQ(Results.size(), 2u);
  EXPECT_EQ(Results[1].Dimension, 3);
  EXPECT_EQ(Results[1].SquaredNu.toInt64(), 118);
  // Normalized merit is catastrophic (planes ~10^5 x coarser than ideal).
  EXPECT_LT(Results[1].NormalizedMerit, 0.01);
}

TEST(SpectralTest, RanduIsFineInTwoDimensions) {
  // RANDU's defect is specifically 3-D; S_2 is unremarkable-but-okay.
  std::vector<SpectralResult> Results = runSpectralTestPow2(
      31, UInt128(65539), 2, /*UseEffectiveModulus=*/false);
  EXPECT_GT(Results[0].NormalizedMerit, 0.1);
}

TEST(SpectralTest, MeritIsScaleInvariantUpToOne) {
  // For any generator, S_t <= 1 (+ double rounding): no lattice beats the
  // Hermite bound.
  std::mt19937_64 Rng(7);
  for (int Trial = 0; Trial < 10; ++Trial) {
    const int64_t M = 4096;
    const int64_t A = int64_t(Rng() % 4096) | 1;
    std::vector<SpectralResult> Results =
        runSpectralTest(BigInt(M), BigInt(A), 5);
    for (const SpectralResult &Result : Results) {
      EXPECT_LE(Result.NormalizedMerit, 1.0 + 1e-9);
      EXPECT_GT(Result.NormalizedMerit, 0.0);
    }
  }
}

TEST(SpectralTest, PaperMultiplierIsSpectrallySound) {
  // The headline: A = 5^101 mod 2^128 with effective modulus 2^126. The
  // exact thresholds follow Knuth's scale — merits below 0.1 would make a
  // multiplier unusable; established good multipliers sit above ~0.5.
  std::vector<SpectralResult> Results =
      runSpectralTestPow2(128, Lcg128::defaultMultiplier(), 4);
  ASSERT_EQ(Results.size(), 3u);
  for (const SpectralResult &Result : Results) {
    EXPECT_GT(Result.NormalizedMerit, 0.3)
        << "dimension " << Result.Dimension
        << " merit " << Result.NormalizedMerit;
    EXPECT_LE(Result.NormalizedMerit, 1.0 + 1e-9);
  }
}

TEST(SpectralTest, BadPowerOfTwoMultiplierIsExposed) {
  // a = 2^60 + 5 mod 2^126-lattice: (a, -1) is nearly as short as it gets
  // in 2-D? Actually a tiny multiplier like 5 is the classical bad case:
  // the vector (-5, 1, 0, ...) has length sqrt(26) regardless of m, so
  // S_2 collapses for m = 2^126.
  std::vector<SpectralResult> Results =
      runSpectralTestPow2(128, UInt128(5), 2);
  EXPECT_LT(Results[0].NormalizedMerit, 1e-8);
}

TEST(HermiteConstant, KnownValues) {
  EXPECT_DOUBLE_EQ(hermiteConstant(1), 1.0);
  EXPECT_NEAR(hermiteConstant(2), 1.1547005383792515, 1e-12);
  EXPECT_NEAR(hermiteConstant(3), 1.2599210498948732, 1e-12);
  EXPECT_NEAR(hermiteConstant(4), 1.4142135623730951, 1e-12);
  EXPECT_DOUBLE_EQ(hermiteConstant(8), 2.0);
}

} // namespace
} // namespace parmonc
