//===- tests/spectral/BigIntTest.cpp - BigInt unit & property tests -------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/spectral/BigInt.h"

#include <gtest/gtest.h>

#include <limits>
#include <random>

namespace parmonc {
namespace {

TEST(BigInt, DefaultIsZero) {
  BigInt Zero;
  EXPECT_TRUE(Zero.isZero());
  EXPECT_FALSE(Zero.isNegative());
  EXPECT_EQ(Zero.bitWidth(), 0u);
  EXPECT_EQ(Zero.toDecimalString(), "0");
}

TEST(BigInt, Int64RoundTrip) {
  for (int64_t Value : {int64_t(0), int64_t(1), int64_t(-1), int64_t(42),
                        int64_t(-9223372036854775807ll - 1),
                        std::numeric_limits<int64_t>::max()}) {
    BigInt Big(Value);
    ASSERT_TRUE(Big.fitsInt64()) << Value;
    EXPECT_EQ(Big.toInt64(), Value);
  }
}

TEST(BigInt, FromUInt128) {
  BigInt Big = BigInt::fromUInt128(UInt128(0xdeadull, 0xbeefull));
  EXPECT_EQ(Big.bitWidth(), 64u + 16u);
  EXPECT_FALSE(Big.isNegative());
  EXPECT_FALSE(Big.fitsInt64());
}

TEST(BigInt, SmallArithmeticAgainstInt64) {
  std::mt19937_64 Rng(9);
  for (int Trial = 0; Trial < 2000; ++Trial) {
    const int64_t A = int64_t(Rng() % 2000001) - 1000000;
    const int64_t B = int64_t(Rng() % 2000001) - 1000000;
    EXPECT_EQ((BigInt(A) + BigInt(B)).toInt64(), A + B);
    EXPECT_EQ((BigInt(A) - BigInt(B)).toInt64(), A - B);
    EXPECT_EQ((BigInt(A) * BigInt(B)).toInt64(), A * B);
    if (B != 0) {
      EXPECT_EQ((BigInt(A) / BigInt(B)).toInt64(), A / B);
      EXPECT_EQ((BigInt(A) % BigInt(B)).toInt64(), A % B);
    }
  }
}

TEST(BigInt, LargeMultiplicationKnownValue) {
  // (2^64)² = 2^128.
  BigInt TwoTo64 = BigInt::fromUInt128(UInt128(1, 0));
  BigInt Square = TwoTo64 * TwoTo64;
  EXPECT_EQ(Square.bitWidth(), 129u);
  EXPECT_EQ(Square.toDecimalString(),
            "340282366920938463463374607431768211456");
}

TEST(BigInt, DivModReconstructsLargeValues) {
  std::mt19937_64 Rng(4);
  for (int Trial = 0; Trial < 200; ++Trial) {
    BigInt Dividend = BigInt::fromUInt128(UInt128(Rng(), Rng())) *
                      BigInt::fromUInt128(UInt128(Rng(), Rng()));
    if (Trial % 2)
      Dividend = -Dividend;
    BigInt Divisor = BigInt::fromUInt128(UInt128(Rng() % 1024, Rng()));
    if (Divisor.isZero())
      Divisor = BigInt(7);
    if (Trial % 3 == 0)
      Divisor = -Divisor;
    BigInt::DivModResult Split = BigInt::divMod(Dividend, Divisor);
    EXPECT_EQ(Split.Quotient * Divisor + Split.Remainder, Dividend);
    EXPECT_LT(Split.Remainder.abs(), Divisor.abs());
    // Truncation: remainder carries the dividend's sign.
    if (!Split.Remainder.isZero()) {
      EXPECT_EQ(Split.Remainder.isNegative(), Dividend.isNegative());
    }
  }
}

TEST(BigInt, DivRoundMatchesNearestInteger) {
  // 7/2 -> 4 (ties away from zero), -7/2 -> -4, 7/3 -> 2, 8/3 -> 3.
  EXPECT_EQ(BigInt::divRound(BigInt(7), BigInt(2)).toInt64(), 4);
  EXPECT_EQ(BigInt::divRound(BigInt(-7), BigInt(2)).toInt64(), -4);
  EXPECT_EQ(BigInt::divRound(BigInt(7), BigInt(-2)).toInt64(), -4);
  EXPECT_EQ(BigInt::divRound(BigInt(7), BigInt(3)).toInt64(), 2);
  EXPECT_EQ(BigInt::divRound(BigInt(8), BigInt(3)).toInt64(), 3);
  EXPECT_EQ(BigInt::divRound(BigInt(-8), BigInt(3)).toInt64(), -3);
  EXPECT_EQ(BigInt::divRound(BigInt(6), BigInt(3)).toInt64(), 2);
  EXPECT_EQ(BigInt::divRound(BigInt(0), BigInt(5)).toInt64(), 0);
}

TEST(BigInt, ShiftLeft) {
  EXPECT_EQ(BigInt(1).shiftLeft(10).toInt64(), 1024);
  EXPECT_EQ(BigInt(-3).shiftLeft(2).toInt64(), -12);
  EXPECT_EQ(BigInt(1).shiftLeft(128).toDecimalString(),
            "340282366920938463463374607431768211456");
  EXPECT_TRUE(BigInt(0).shiftLeft(50).isZero());
}

TEST(BigInt, ComparisonTotalOrder) {
  std::vector<BigInt> Ordered = {
      -BigInt(1).shiftLeft(100), BigInt(-5), BigInt(0), BigInt(3),
      BigInt(1).shiftLeft(64),   BigInt(1).shiftLeft(100)};
  for (size_t I = 0; I < Ordered.size(); ++I) {
    for (size_t J = 0; J < Ordered.size(); ++J) {
      EXPECT_EQ(Ordered[I] < Ordered[J], I < J) << I << " " << J;
      EXPECT_EQ(Ordered[I] == Ordered[J], I == J);
    }
  }
}

TEST(BigInt, ToDoubleTracksMagnitude) {
  EXPECT_DOUBLE_EQ(BigInt(12345).toDouble(), 12345.0);
  EXPECT_DOUBLE_EQ(BigInt(-7).toDouble(), -7.0);
  EXPECT_NEAR(BigInt(1).shiftLeft(100).toDouble(), std::pow(2.0, 100),
              std::pow(2.0, 48));
}

TEST(BigInt, DecimalStringsOfNegatives) {
  EXPECT_EQ(BigInt(-12345).toDecimalString(), "-12345");
  EXPECT_EQ((-BigInt(1).shiftLeft(70)).toDecimalString(),
            "-1180591620717411303424");
}

TEST(BigInt, AdditionCancelsToZeroCleanly) {
  BigInt Big = BigInt(1).shiftLeft(200);
  BigInt Zero = Big - Big;
  EXPECT_TRUE(Zero.isZero());
  EXPECT_FALSE(Zero.isNegative());
  EXPECT_TRUE((Zero + Zero).isZero());
}

} // namespace
} // namespace parmonc
