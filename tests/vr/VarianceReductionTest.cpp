//===- tests/vr/VarianceReductionTest.cpp - VR toolkit tests --------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/vr/VarianceReduction.h"

#include "parmonc/rng/Lcg128.h"
#include "parmonc/stats/RunningStat.h"

#include <gtest/gtest.h>

// mclint: allow-file(R6): these tests exercise the raw generator
// deliberately, validating the stream algebra itself.

#include <cmath>

namespace parmonc {
namespace {

// e^U: monotone in U — antithetic and stratified must both help; its
// exact expectation is e - 1 and a perfect control variate is U itself.
double expRealization(RandomSource &Source) {
  return std::exp(Source.nextUniform());
}

const double ExactExpMean = std::exp(1.0) - 1.0;

// pi darts: uses two uniforms, monotone in neither alone but coordinate-
// wise monotone, so antithetic still helps.
double piRealization(RandomSource &Source) {
  const double X = Source.nextUniform();
  const double Y = Source.nextUniform();
  return X * X + Y * Y <= 1.0 ? 4.0 : 0.0;
}

ValueWithControl expWithControl(RandomSource &Source) {
  const double U = Source.nextUniform();
  return {std::exp(U), U};
}

TEST(MirroredSource, MirrorsUniforms) {
  Lcg128 Base, Reference;
  MirroredSource Mirrored(Base, /*Mirror=*/true);
  for (int Draw = 0; Draw < 100; ++Draw)
    EXPECT_DOUBLE_EQ(Mirrored.nextUniform(),
                     1.0 - Reference.nextUniform());
}

TEST(MirroredSource, PassThroughIsIdentity) {
  Lcg128 Base, Reference;
  MirroredSource Plain(Base, /*Mirror=*/false);
  for (int Draw = 0; Draw < 100; ++Draw)
    EXPECT_DOUBLE_EQ(Plain.nextUniform(), Reference.nextUniform());
}

TEST(RecordingAndReplay, ReplayReproducesExactly) {
  Lcg128 Base;
  RecordingSource Recorder(Base);
  std::vector<double> Drawn;
  for (int Draw = 0; Draw < 50; ++Draw)
    Drawn.push_back(Recorder.nextUniform());
  ReplaySource Replay(Recorder.recorded(), /*Mirror=*/false);
  for (double Value : Drawn)
    EXPECT_DOUBLE_EQ(Replay.nextUniform(), Value);
  EXPECT_EQ(Replay.consumed(), 50u);
}

TEST(RecordingAndReplay, MirroredReplayIsComplement) {
  Lcg128 Base;
  RecordingSource Recorder(Base);
  std::vector<double> Drawn;
  for (int Draw = 0; Draw < 50; ++Draw)
    Drawn.push_back(Recorder.nextUniform());
  ReplaySource Replay(Recorder.recorded(), /*Mirror=*/true);
  for (double Value : Drawn)
    EXPECT_DOUBLE_EQ(Replay.nextUniform(), 1.0 - Value);
}

TEST(EstimatePlain, IsUnbiasedOnExp) {
  Lcg128 Source;
  VrEstimate Estimate = estimatePlain(expRealization, Source, 20000);
  EXPECT_NEAR(Estimate.Mean, ExactExpMean, 4.0 * Estimate.StandardError);
  EXPECT_GT(Estimate.Variance, 0.0);
  EXPECT_EQ(Estimate.SampleCount, 20000);
}

TEST(EstimateAntithetic, IsUnbiasedOnExp) {
  Lcg128 Source;
  VrEstimate Estimate = estimateAntithetic(expRealization, Source, 20000);
  EXPECT_NEAR(Estimate.Mean, ExactExpMean, 4.0 * Estimate.StandardError);
}

TEST(EstimateAntithetic, ReducesVarianceForMonotoneIntegrand) {
  // Theory for e^U: plain pair variance ≈ Var(e^U)/2 ≈ 0.1210;
  // antithetic pair variance ≈ 0.00195 — a ~60x reduction. Require >10x.
  Lcg128 PlainSource, AntitheticSource;
  VrEstimate Plain = estimatePlain(expRealization, PlainSource, 20000);
  VrEstimate Antithetic =
      estimateAntithetic(expRealization, AntitheticSource, 20000);
  EXPECT_LT(Antithetic.Variance * 10.0, Plain.Variance)
      << "plain " << Plain.Variance << " antithetic "
      << Antithetic.Variance;
}

TEST(EstimateAntithetic, HelpsOnPiDarts) {
  Lcg128 PlainSource, AntitheticSource;
  VrEstimate Plain = estimatePlain(piRealization, PlainSource, 30000);
  VrEstimate Antithetic =
      estimateAntithetic(piRealization, AntitheticSource, 30000);
  EXPECT_NEAR(Antithetic.Mean, M_PI, 5.0 * Antithetic.StandardError);
  EXPECT_LT(Antithetic.Variance, Plain.Variance);
}

TEST(EstimateWithControlVariate, IsUnbiasedAndReducesVariance) {
  // Control U with E U = 1/2 against Y = e^U: corr(Y, U) ≈ 0.992, so the
  // optimal control variate removes ~98% of the variance.
  Lcg128 ControlSource, PlainSource;
  VrEstimate Controlled = estimateWithControlVariate(
      expWithControl, ControlSource, 40000, 0.5);
  EXPECT_NEAR(Controlled.Mean, ExactExpMean,
              4.0 * Controlled.StandardError);

  VrEstimate Plain = estimatePlain(expRealization, PlainSource, 20000);
  // Compare per-sample variances (plain reports per-pair: x2).
  EXPECT_LT(Controlled.Variance * 20.0, Plain.Variance * 2.0);
}

TEST(EstimateWithControlVariate, DegenerateControlFallsBackToPlainMean) {
  // A constant control has zero variance; β must fall back to 0 and the
  // estimate must equal the plain sample mean.
  Lcg128 Source;
  auto ConstantControl = +[](RandomSource &Src) -> ValueWithControl {
    return {Src.nextUniform(), 42.0};
  };
  VrEstimate Estimate =
      estimateWithControlVariate(ConstantControl, Source, 1000, 42.0);
  EXPECT_NEAR(Estimate.Mean, 0.5, 5.0 * Estimate.StandardError);
  EXPECT_TRUE(std::isfinite(Estimate.Variance));
}

TEST(StratifiedFirstDraw, ConfinesOnlyTheFirstUniform) {
  Lcg128 Base;
  StratifiedFirstDraw Confined(Base, 3, 8);
  const double First = Confined.nextUniform();
  EXPECT_GE(First, 3.0 / 8.0);
  EXPECT_LT(First, 4.0 / 8.0);
  // Subsequent draws are unconstrained (statistically: just check range).
  for (int Draw = 0; Draw < 100; ++Draw) {
    const double Value = Confined.nextUniform();
    EXPECT_GT(Value, 0.0);
    EXPECT_LT(Value, 1.0);
  }
}

TEST(EstimateStratified, IsUnbiasedOnExp) {
  Lcg128 Source;
  VrEstimate Estimate =
      estimateStratified(expRealization, Source, 64, 100);
  EXPECT_NEAR(Estimate.Mean, ExactExpMean, 5.0 * Estimate.StandardError);
  EXPECT_EQ(Estimate.SampleCount, 6400);
}

TEST(EstimateStratified, BeatsPlainOnSmoothIntegrand) {
  // Stratifying U removes the between-strata variance; for e^U with 64
  // strata the residual within-stratum variance is ~1/64² of the total
  // scale — require a 20x per-sample improvement.
  Lcg128 StratifiedSource, PlainSource;
  VrEstimate Stratified =
      estimateStratified(expRealization, StratifiedSource, 64, 100);
  VrEstimate Plain = estimatePlain(expRealization, PlainSource, 3200);
  // Per-sample variances: plain pairs have variance Var/2 at 2 samples.
  const double PlainPerSample = Plain.Variance * 2.0;
  EXPECT_LT(Stratified.Variance * 20.0, PlainPerSample);
}

TEST(TiltedUniform, SamplesStayInUnitInterval) {
  Lcg128 Source;
  TiltedUniform Tilt(3.0);
  for (int Draw = 0; Draw < 10000; ++Draw) {
    double Ratio = 0.0;
    const double X = Tilt.sample(Source, &Ratio);
    EXPECT_GT(X, 0.0);
    EXPECT_LT(X, 1.0);
    EXPECT_GT(Ratio, 0.0);
  }
}

TEST(TiltedUniform, LikelihoodRatioIsUnbiasedForTheMean)
{
  // E[X·w(X)] under g equals E[X] under f = 1/2, for any tilt.
  Lcg128 Source;
  for (double Theta : {-4.0, -1.0, 0.5, 2.0, 5.0}) {
    TiltedUniform Tilt(Theta);
    RunningStat Stats;
    for (int Draw = 0; Draw < 200000; ++Draw) {
      double Ratio = 0.0;
      const double X = Tilt.sample(Source, &Ratio);
      Stats.add(X * Ratio);
    }
    EXPECT_NEAR(Stats.mean(), 0.5, 0.01) << "theta " << Theta;
  }
}

TEST(TiltedUniform, PositiveTiltPushesMassUp) {
  Lcg128 Source;
  TiltedUniform Tilt(4.0);
  RunningStat Stats;
  for (int Draw = 0; Draw < 50000; ++Draw) {
    double Ratio = 0.0;
    Stats.add(Tilt.sample(Source, &Ratio));
  }
  EXPECT_GT(Stats.mean(), 0.7); // exact: 1 - 1/θ + 1/(e^θ-1) ≈ 0.768
}

TEST(TiltedUniform, ReducesVarianceForRareEventNearOne) {
  // Estimate P(U > 0.99) = 0.01. Plain MC variance per sample is
  // p(1-p) ≈ 9.9e-3; tilted with θ=5 concentrates samples near 1 and the
  // weighted indicator has much lower variance.
  Lcg128 PlainSource, TiltedSource;
  RunningStat Plain, Weighted;
  const int Draws = 200000;
  for (int Draw = 0; Draw < Draws; ++Draw)
    Plain.add(PlainSource.nextUniform() > 0.99 ? 1.0 : 0.0);
  TiltedUniform Tilt(5.0);
  for (int Draw = 0; Draw < Draws; ++Draw) {
    double Ratio = 0.0;
    const double X = Tilt.sample(TiltedSource, &Ratio);
    Weighted.add(X > 0.99 ? Ratio : 0.0);
  }
  EXPECT_NEAR(Weighted.mean(), 0.01, 5.0 * 0.0005);
  EXPECT_LT(Weighted.variance() * 2.0, Plain.variance());
}

} // namespace
} // namespace parmonc
