//===- tests/fault/FaultPlanTest.cpp - Fault schedule unit tests ----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The injector's decisions must be a pure function of the plan — never of
// wall time or thread interleaving — because every recovery test in this
// directory replays a faulted run and expects bit-identical results.
//
//===----------------------------------------------------------------------===//

#include "parmonc/fault/FaultPlan.h"
#include "parmonc/mpsim/VirtualCluster.h"

#include <gtest/gtest.h>

namespace parmonc {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::FileCorruptionSpec;
using fault::MessageAction;
using fault::MessageDecision;
using fault::WorkerCrashSpec;

TEST(FaultPlan, DefaultPlanIsInertAndValid) {
  FaultPlan Plan;
  EXPECT_FALSE(Plan.enabled());
  EXPECT_TRUE(Plan.validate().isOk());
}

TEST(FaultPlan, RejectsProbabilitiesOutsideTheUnitInterval) {
  FaultPlan Plan;
  Plan.DropProbability = 1.5;
  EXPECT_FALSE(Plan.validate().isOk());
  Plan.DropProbability = -0.1;
  EXPECT_FALSE(Plan.validate().isOk());
}

TEST(FaultPlan, RejectsProbabilitySumAboveOne) {
  FaultPlan Plan;
  Plan.DropProbability = 0.6;
  Plan.SendFailProbability = 0.6;
  EXPECT_FALSE(Plan.validate().isOk());
}

TEST(FaultPlan, RejectsRankZeroWorkerCrash) {
  // Rank 0 is the collector; it dies via the collector crash schedule.
  FaultPlan Plan;
  Plan.WorkerCrashes.push_back({/*Rank=*/0, /*AfterRealizations=*/1, true});
  EXPECT_FALSE(Plan.validate().isOk());
  Plan.WorkerCrashes[0].Rank = 1;
  Plan.WorkerCrashes[0].AfterRealizations = 0;
  EXPECT_FALSE(Plan.validate().isOk());
  Plan.WorkerCrashes[0].AfterRealizations = 1;
  EXPECT_TRUE(Plan.validate().isOk());
  EXPECT_TRUE(Plan.enabled());
}

TEST(FaultPlan, RejectsMalformedFileCorruptions) {
  FaultPlan Plan;
  Plan.FileCorruptions.push_back({});
  EXPECT_FALSE(Plan.validate().isOk()); // empty path substring
  Plan.FileCorruptions[0].PathSubstring = "checkpoint";
  Plan.FileCorruptions[0].KeepFraction = 1.0;
  EXPECT_FALSE(Plan.validate().isOk()); // keeping everything corrupts nothing
  Plan.FileCorruptions[0].KeepFraction = 0.5;
  EXPECT_TRUE(Plan.validate().isOk());
}

TEST(FaultInjector, DecisionsReplayIdenticallyAcrossInjectors) {
  FaultPlan Plan;
  Plan.Seed = 42;
  Plan.DropProbability = 0.3;
  Plan.DuplicateProbability = 0.2;
  Plan.DelayProbability = 0.2;
  Plan.SendFailProbability = 0.2;
  FaultInjector First(Plan), Second(Plan);
  for (int Index = 0; Index < 200; ++Index) {
    const int Source = 1 + Index % 3;
    const MessageDecision A = First.onSendAttempt(Source, 0, 1);
    const MessageDecision B = Second.onSendAttempt(Source, 0, 1);
    EXPECT_EQ(A.Action, B.Action) << "attempt " << Index;
    EXPECT_EQ(A.DelayNanos, B.DelayNanos);
  }
}

TEST(FaultInjector, SelfSendsAndExemptTagsAlwaysDeliver) {
  FaultPlan Plan;
  Plan.DropProbability = 1.0; // every eligible message is lost
  Plan.ExemptTags = {2};
  FaultInjector Injector(Plan);
  for (int Index = 0; Index < 50; ++Index) {
    EXPECT_EQ(Injector.onSendAttempt(0, 0, 1).Action,
              MessageAction::Deliver);
    EXPECT_EQ(Injector.onSendAttempt(1, 0, 2).Action,
              MessageAction::Deliver);
    EXPECT_EQ(Injector.onSendAttempt(1, 0, 1).Action, MessageAction::Drop);
  }
}

TEST(FaultInjector, DelayVerdictCarriesTheConfiguredDelay) {
  FaultPlan Plan;
  Plan.DelayProbability = 1.0;
  Plan.DelayNanos = 7'000;
  FaultInjector Injector(Plan);
  const MessageDecision Decision = Injector.onSendAttempt(1, 0, 1);
  EXPECT_EQ(Decision.Action, MessageAction::Delay);
  EXPECT_EQ(Decision.DelayNanos, 7'000);
}

TEST(FaultInjector, WorkerCrashLookupMatchesByRank) {
  FaultPlan Plan;
  Plan.WorkerCrashes.push_back({/*Rank=*/2, /*AfterRealizations=*/10, true});
  FaultInjector Injector(Plan);
  ASSERT_NE(Injector.workerCrash(2), nullptr);
  EXPECT_EQ(Injector.workerCrash(2)->AfterRealizations, 10);
  EXPECT_EQ(Injector.workerCrash(1), nullptr);
  EXPECT_EQ(Injector.workerCrash(0), nullptr);
}

TEST(FaultInjector, CollectorCrashFiresExactlyOnce) {
  FaultPlan Plan;
  Plan.CollectorCrash.AtSavePoint = 3;
  FaultInjector Injector(Plan);
  EXPECT_FALSE(Injector.takeCollectorCrash(1, false));
  EXPECT_FALSE(Injector.takeCollectorCrash(2, false));
  EXPECT_TRUE(Injector.takeCollectorCrash(3, false));
  EXPECT_FALSE(Injector.takeCollectorCrash(3, false)); // latched
  EXPECT_FALSE(Injector.takeCollectorCrash(4, true));
}

TEST(FaultInjector, CorruptWriteTargetsOnlyTheScheduledWrite) {
  FaultPlan Plan;
  FileCorruptionSpec Spec;
  Spec.PathSubstring = "checkpoint";
  Spec.WriteIndex = 1; // damage the second matching write only
  Spec.Action = FileCorruptionSpec::Mode::Truncate;
  Spec.KeepFraction = 0.5;
  Plan.FileCorruptions.push_back(Spec);
  FaultInjector Injector(Plan);

  const std::string Contents(100, 'x');
  EXPECT_FALSE(Injector.corruptWrite("/a/subtotal.dat", Contents));
  EXPECT_FALSE(Injector.corruptWrite("/a/checkpoint.dat", Contents));
  std::optional<std::string> Damaged =
      Injector.corruptWrite("/a/checkpoint.dat", Contents);
  ASSERT_TRUE(Damaged.has_value());
  EXPECT_EQ(Damaged->size(), 50u);
  EXPECT_FALSE(Injector.corruptWrite("/a/checkpoint.dat", Contents));
}

TEST(FaultInjector, BitFlipDamagesExactlyOneByte) {
  FaultPlan Plan;
  FileCorruptionSpec Spec;
  Spec.PathSubstring = "rank_1";
  Spec.Action = FileCorruptionSpec::Mode::BitFlip;
  Spec.FlipByteOffset = 4;
  Plan.FileCorruptions.push_back(Spec);
  FaultInjector Injector(Plan);

  const std::string Contents = "abcdefgh";
  std::optional<std::string> Damaged =
      Injector.corruptWrite("/s/rank_1.dat", Contents);
  ASSERT_TRUE(Damaged.has_value());
  ASSERT_EQ(Damaged->size(), Contents.size());
  int Diffs = 0;
  for (size_t Index = 0; Index < Contents.size(); ++Index)
    if ((*Damaged)[Index] != Contents[Index])
      ++Diffs;
  EXPECT_EQ(Diffs, 1);
  EXPECT_NE((*Damaged)[4], Contents[4]);
}

TEST(VirtualClusterFaults, FailedWorkersAreReportedAndSurvivorsFinish) {
  VirtualClusterConfig Config;
  Config.ProcessorCount = 4;
  Config.MeanRealizationSeconds = 1.0;
  Config.WorkerFailures.push_back({/*Worker=*/2, /*AfterRealizations=*/5});
  obs::MetricsRegistry Registry;
  Config.Metrics = &Registry;

  Result<VirtualClusterResult> Outcome =
      runVirtualCluster(Config, {200});
  ASSERT_TRUE(Outcome.isOk()) << Outcome.status().toString();
  ASSERT_EQ(Outcome.value().FailedWorkers.size(), 1u);
  EXPECT_EQ(Outcome.value().FailedWorkers[0], 2);
  // The dead worker's volume froze at the failure point; survivors covered
  // the rest of the target.
  EXPECT_EQ(Outcome.value().PerWorkerVolumes[2], 5);
  int64_t Total = 0;
  for (int64_t Volume : Outcome.value().PerWorkerVolumes)
    Total += Volume;
  EXPECT_GE(Total, 200);
  const obs::MetricsSnapshot Snapshot = Registry.snapshot();
  const int64_t *Failures = Snapshot.counterValue("vcluster.worker_failures");
  ASSERT_NE(Failures, nullptr);
  EXPECT_EQ(*Failures, 1);
}

TEST(VirtualClusterFaults, AllWorkersDeadBeforeTargetIsAnError) {
  VirtualClusterConfig Config;
  Config.ProcessorCount = 2;
  Config.MeanRealizationSeconds = 1.0;
  Config.WorkerFailures.push_back({0, 3});
  Config.WorkerFailures.push_back({1, 3});
  Result<VirtualClusterResult> Outcome =
      runVirtualCluster(Config, {100});
  ASSERT_FALSE(Outcome.isOk());
  EXPECT_EQ(Outcome.status().code(), StatusCode::Internal);
}

TEST(VirtualClusterFaults, RejectsFailureSpecOutOfRange) {
  VirtualClusterConfig Config;
  Config.ProcessorCount = 2;
  Config.WorkerFailures.push_back({/*Worker=*/2, /*AfterRealizations=*/1});
  EXPECT_FALSE(runVirtualCluster(Config, {10}).isOk());
  Config.WorkerFailures[0] = {/*Worker=*/1, /*AfterRealizations=*/0};
  EXPECT_FALSE(runVirtualCluster(Config, {10}).isOk());
}

} // namespace
} // namespace parmonc
