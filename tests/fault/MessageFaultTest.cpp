//===- tests/fault/MessageFaultTest.cpp - Lossy-network recovery ----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Because workers send *cumulative* moment sums, an unreliable network can
// only delay the collector's view, never corrupt it: each fault class —
// drop, duplicate, delay, failed send — must leave the final results
// byte-identical to a run over a perfect network, as long as the final
// snapshots get through (the exempt tag models connection teardown being
// reliable). The fault counters prove the faults actually happened.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"
#include "parmonc/fault/FaultPlan.h"
#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace parmonc {
namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("parmonc_msgfault_" + Name + "_" + std::to_string(Counter++)))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
  const std::string &path() const { return Path; }

private:
  static inline int Counter = 0;
  std::string Path;
};

void uniformRealization(RandomSource &Source, double *Out) {
  Out[0] = Source.nextUniform();
}

RunConfig lossyConfig(const std::string &WorkDir) {
  RunConfig Config;
  Config.MaxSampleVolume = 120;
  Config.ProcessorCount = 3;
  Config.DeterministicSchedule = true; // fixed per-rank quotas
  Config.WorkDir = WorkDir;
  Config.AveragePeriodNanos = 3'600'000'000'000; // final save only
  return Config;
}

/// Runs under a frozen clock with \p Plan and returns the report; also
/// captures func.dat bytes via \p MeansOut.
RunReport runLossy(const std::string &WorkDir, const fault::FaultPlan *Plan,
                   std::string *MeansOut) {
  ManualClock Frozen(1'000'000);
  RunConfig Config = lossyConfig(WorkDir);
  Config.Faults = Plan;
  Result<RunReport> Report =
      runSimulation(uniformRealization, Config, &Frozen);
  EXPECT_TRUE(Report.isOk()) << Report.status().toString();
  ResultsStore Store(WorkDir);
  *MeansOut = readFileToString(Store.meansPath()).valueOr("<missing>");
  return Report.valueOr(RunReport{});
}

int64_t counterOf(const RunReport &Report, const char *Name) {
  const int64_t *Value = Report.Metrics.counterValue(Name);
  return Value ? *Value : 0;
}

TEST(MessageFault, DroppedSubtotalsDoNotPerturbTheResults) {
  ScratchDir Clean("drop_ref"), Faulted("drop");
  std::string CleanMeans, FaultedMeans;
  const RunReport CleanReport =
      runLossy(Clean.path(), nullptr, &CleanMeans);
  fault::FaultPlan Plan;
  Plan.DropProbability = 0.5;
  Plan.ExemptTags = {TagFinal};
  const RunReport FaultedReport =
      runLossy(Faulted.path(), &Plan, &FaultedMeans);

  EXPECT_GT(counterOf(FaultedReport, "fault.msgs_dropped"), 0);
  EXPECT_EQ(FaultedReport.TotalSampleVolume, 120);
  EXPECT_EQ(FaultedReport.TotalSampleVolume,
            CleanReport.TotalSampleVolume);
  EXPECT_FALSE(FaultedReport.Degraded); // nothing was permanently lost
  EXPECT_EQ(FaultedMeans, CleanMeans);
}

TEST(MessageFault, DuplicatedSubtotalsAreIdempotent) {
  // The collector keeps only the *latest* snapshot per rank, so a message
  // delivered twice changes nothing — the idempotence the paper's
  // cumulative-subtotal protocol buys.
  ScratchDir Clean("dup_ref"), Faulted("dup");
  std::string CleanMeans, FaultedMeans;
  runLossy(Clean.path(), nullptr, &CleanMeans);
  fault::FaultPlan Plan;
  Plan.DuplicateProbability = 0.5;
  Plan.ExemptTags = {TagFinal};
  const RunReport FaultedReport =
      runLossy(Faulted.path(), &Plan, &FaultedMeans);

  EXPECT_GT(counterOf(FaultedReport, "fault.msgs_duplicated"), 0);
  EXPECT_EQ(FaultedReport.TotalSampleVolume, 120);
  EXPECT_EQ(FaultedMeans, CleanMeans);
}

TEST(MessageFault, DelayedSubtotalsOnlyDelayFreshness) {
  // Under the frozen clock a delayed message is never released — the
  // harshest possible delay — yet the final (exempt) snapshots still carry
  // the complete cumulative sums.
  ScratchDir Clean("delay_ref"), Faulted("delay");
  std::string CleanMeans, FaultedMeans;
  runLossy(Clean.path(), nullptr, &CleanMeans);
  fault::FaultPlan Plan;
  Plan.DelayProbability = 0.5;
  Plan.DelayNanos = 1'000'000;
  Plan.ExemptTags = {TagFinal};
  const RunReport FaultedReport =
      runLossy(Faulted.path(), &Plan, &FaultedMeans);

  EXPECT_GT(counterOf(FaultedReport, "fault.msgs_delayed"), 0);
  EXPECT_EQ(FaultedReport.TotalSampleVolume, 120);
  EXPECT_EQ(FaultedMeans, CleanMeans);
}

TEST(MessageFault, FailedSendsAreRetriedThenSurvivedDegraded) {
  // A send failure is visible to the sender, which retries with backoff;
  // a send that fails every attempt is counted as permanently lost and
  // flags the run degraded — but the cumulative protocol still delivers
  // exact results through the final snapshots.
  ScratchDir Clean("fail_ref"), Faulted("fail");
  std::string CleanMeans, FaultedMeans;
  runLossy(Clean.path(), nullptr, &CleanMeans);
  fault::FaultPlan Plan;
  Plan.SendFailProbability = 0.7;
  Plan.ExemptTags = {TagFinal};
  ManualClock Frozen(1'000'000);
  RunConfig Config = lossyConfig(Faulted.path());
  Config.Faults = &Plan;
  Config.SendMaxAttempts = 2;
  Config.SendRetryBackoffNanos = 1'000;
  Result<RunReport> Report =
      runSimulation(uniformRealization, Config, &Frozen);
  ASSERT_TRUE(Report.isOk()) << Report.status().toString();
  ResultsStore Store(Faulted.path());
  FaultedMeans = readFileToString(Store.meansPath()).valueOr("<missing>");

  EXPECT_GT(counterOf(Report.value(), "fault.send_failures"), 0);
  EXPECT_GT(counterOf(Report.value(), "comm.send_retries"), 0);
  // With P(fail) = 0.7 and two attempts, some sends fail both tries.
  EXPECT_GT(Report.value().FailedSends, 0);
  EXPECT_EQ(counterOf(Report.value(), "comm.sends_failed"),
            Report.value().FailedSends);
  EXPECT_TRUE(Report.value().Degraded);
  EXPECT_EQ(Report.value().TotalSampleVolume, 120);
  EXPECT_EQ(FaultedMeans, CleanMeans);
}

TEST(MessageFault, MixedFaultRunsReplayIdentically) {
  // The same plan in two directories must inject the same faults at the
  // same points and produce identical bytes: determinism is what lets a
  // failure found under injection be debugged by replaying it.
  ScratchDir First("mix_a"), Second("mix_b");
  fault::FaultPlan Plan;
  Plan.Seed = 7;
  Plan.DropProbability = 0.25;
  Plan.DuplicateProbability = 0.25;
  Plan.SendFailProbability = 0.25;
  Plan.ExemptTags = {TagFinal};
  std::string FirstMeans, SecondMeans;
  const RunReport FirstReport = runLossy(First.path(), &Plan, &FirstMeans);
  const RunReport SecondReport =
      runLossy(Second.path(), &Plan, &SecondMeans);

  EXPECT_EQ(FirstMeans, SecondMeans);
  for (const char *Name :
       {"fault.msgs_dropped", "fault.msgs_duplicated",
        "fault.send_failures", "comm.send_retries", "comm.sends_failed"})
    EXPECT_EQ(counterOf(FirstReport, Name), counterOf(SecondReport, Name))
        << Name;
  EXPECT_EQ(FirstReport.FailedSends, SecondReport.FailedSends);
  EXPECT_EQ(FirstReport.TotalSampleVolume, SecondReport.TotalSampleVolume);
}

} // namespace
} // namespace parmonc
