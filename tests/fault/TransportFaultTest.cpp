//===- tests/fault/TransportFaultTest.cpp - Faults over real sockets ------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The fault suite crossed with the process transport: every recovery
// guarantee the thread-backed tests establish must hold when the workers
// are real OS processes — including the one crash the thread engine
// cannot stage at all, SIGKILL of a live worker. The child dies with no
// goodbye, no flush and no destructors; the supervisor decodes the
// terminating signal from waitpid, the collector's deadline declares the
// rank dead, and manaver rebuilds the full total from the subtotal files
// the worker persisted before dying (§3.4) — byte-equal to a thread run
// that never lost anybody.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"
#include "parmonc/fault/FaultPlan.h"
#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>

namespace parmonc {
namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("parmonc_xpfault_" + Name + "_" + std::to_string(Counter++)))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
  const std::string &path() const { return Path; }

private:
  static inline int Counter = 0;
  std::string Path;
};

void uniformRealization(RandomSource &Source, double *Out) {
  Out[0] = Source.nextUniform();
}

std::string fileBytes(const std::string &Path) {
  return readFileToString(Path).valueOr("<missing " + Path + ">");
}

RunConfig processConfig(const std::string &WorkDir) {
  RunConfig Config;
  Config.MaxSampleVolume = 90;
  Config.ProcessorCount = 3;
  Config.DeterministicSchedule = true; // fixed 30/30/30 quotas
  Config.Transport = TransportKind::Processes;
  Config.WorkDir = WorkDir;
  Config.AveragePeriodNanos = 3'600'000'000'000; // final save only
  return Config;
}

TEST(TransportFault, SigkilledWorkerIsReportedAndManaverRestoresTheTotal) {
  // Rank 2 SIGKILLs itself after its 30-realization quota, right before
  // its final send. Runs on the real clock: the frozen test clock never
  // advances past the collector's liveness deadline.
  ScratchDir Faulted("sigkill"), Reference("sigkill_ref");

  fault::FaultPlan Plan;
  Plan.WorkerCrashes.push_back({/*Rank=*/2, /*AfterRealizations=*/30,
                                /*PersistBeforeCrash=*/true,
                                /*RaiseKillSignal=*/true});
  RunConfig Config = processConfig(Faulted.path());
  Config.Faults = &Plan;
  Config.WorkerDeadlineNanos = 50'000'000; // 50 ms of silence = dead
  Result<RunReport> Degraded = runSimulation(uniformRealization, Config);
  ASSERT_TRUE(Degraded.isOk()) << Degraded.status().toString();

  // The run survives the node loss, degraded over the survivors.
  EXPECT_TRUE(Degraded.value().Degraded);
  ASSERT_EQ(Degraded.value().DeadWorkers.size(), 1u);
  EXPECT_EQ(Degraded.value().DeadWorkers[0], 2);
  EXPECT_EQ(Degraded.value().TotalSampleVolume, 89);

  // The supervisor's post-mortem names the exact signal; the healthy
  // worker said an orderly goodbye.
  ASSERT_EQ(Degraded.value().ProcessRanks.size(), 2u);
  const ProcessRankStatus &Killed = Degraded.value().ProcessRanks[1];
  EXPECT_EQ(Killed.Rank, 2);
  EXPECT_TRUE(Killed.Signaled);
  EXPECT_EQ(Killed.Signal, SIGKILL);
  EXPECT_FALSE(Killed.GoodbyeReceived);
  EXPECT_FALSE(Killed.ExitedCleanly);
  const ProcessRankStatus &Survivor = Degraded.value().ProcessRanks[0];
  EXPECT_EQ(Survivor.Rank, 1);
  EXPECT_TRUE(Survivor.ExitedCleanly);
  EXPECT_TRUE(Survivor.GoodbyeReceived);

  // The worker persisted its full subtotal before dying (its filesystem
  // outlived its process), so manaver closes the gap exactly — against a
  // THREAD-transport reference, doubling as a cross-backend check.
  RunConfig CleanConfig = processConfig(Reference.path());
  CleanConfig.Transport = TransportKind::Threads;
  Result<RunReport> Clean = runSimulation(uniformRealization, CleanConfig);
  ASSERT_TRUE(Clean.isOk()) << Clean.status().toString();
  ASSERT_EQ(Clean.value().TotalSampleVolume, 90);

  ResultsStore FaultedStore(Faulted.path());
  Result<MomentSnapshot> Recovered = runManualAverage(FaultedStore);
  ASSERT_TRUE(Recovered.isOk()) << Recovered.status().toString();
  EXPECT_EQ(Recovered.value().Moments.sampleVolume(), 90);
  ResultsStore ReferenceStore(Reference.path());
  EXPECT_EQ(fileBytes(FaultedStore.meansPath()),
            fileBytes(ReferenceStore.meansPath()));
  EXPECT_EQ(fileBytes(FaultedStore.confidencePath()),
            fileBytes(ReferenceStore.confidencePath()));
}

TEST(TransportFault, QuietWorkerDeathOverSocketsMatchesTheThreadSuite) {
  // The non-signal variant of the thread suite's dead-worker scenario:
  // the child returns from its body early without a final send. Same
  // detection (deadline), same degradation, same manaver recovery — but
  // across a process boundary.
  ScratchDir Faulted("quiet");

  fault::FaultPlan Plan;
  Plan.WorkerCrashes.push_back(
      {/*Rank=*/2, /*AfterRealizations=*/30, /*PersistBeforeCrash=*/true});
  RunConfig Config = processConfig(Faulted.path());
  Config.Faults = &Plan;
  Config.WorkerDeadlineNanos = 50'000'000;
  Result<RunReport> Report = runSimulation(uniformRealization, Config);
  ASSERT_TRUE(Report.isOk()) << Report.status().toString();
  EXPECT_TRUE(Report.value().Degraded);
  EXPECT_EQ(Report.value().TotalSampleVolume, 89);
  ASSERT_EQ(Report.value().DeadWorkers.size(), 1u);
  EXPECT_EQ(Report.value().DeadWorkers[0], 2);
  // No signal involved: the child still exits its process cleanly.
  ASSERT_EQ(Report.value().ProcessRanks.size(), 2u);
  EXPECT_TRUE(Report.value().ProcessRanks[1].ExitedCleanly);

  Result<MomentSnapshot> Recovered =
      runManualAverage(ResultsStore(Faulted.path()));
  ASSERT_TRUE(Recovered.isOk()) << Recovered.status().toString();
  EXPECT_EQ(Recovered.value().Moments.sampleVolume(), 90);
}

TEST(TransportFault, FailedSendsCrossTheProcessBoundaryIntoTheReport) {
  // A worker process that exhausts its send retries counts the loss
  // locally — in an address space the parent cannot see. The GOODBYE
  // frame carries the counter home, and the report aggregates it exactly
  // as the thread engine's shared counter would have.
  ScratchDir Faulted("sendfail"), Clean("sendfail_ref");

  ManualClock Frozen(1'000'000);
  RunConfig CleanConfig = processConfig(Clean.path());
  ASSERT_TRUE(
      runSimulation(uniformRealization, CleanConfig, &Frozen).isOk());

  fault::FaultPlan Plan;
  Plan.SendFailProbability = 0.7;
  Plan.ExemptTags = {TagFinal};
  ManualClock FrozenToo(1'000'000);
  RunConfig Config = processConfig(Faulted.path());
  Config.Faults = &Plan;
  Config.SendMaxAttempts = 2;
  Config.SendRetryBackoffNanos = 1'000;
  Result<RunReport> Report =
      runSimulation(uniformRealization, Config, &FrozenToo);
  ASSERT_TRUE(Report.isOk()) << Report.status().toString();

  // Losses happened in the children, crossed the wire, degraded the run —
  // and the cumulative protocol still delivered exact results.
  EXPECT_GT(Report.value().FailedSends, 0);
  EXPECT_TRUE(Report.value().Degraded);
  EXPECT_EQ(Report.value().TotalSampleVolume, 90);
  int64_t ReportedByChildren = 0;
  for (const ProcessRankStatus &Rank : Report.value().ProcessRanks)
    ReportedByChildren += Rank.FailedSends;
  EXPECT_GT(ReportedByChildren, 0);
  ResultsStore FaultedStore(Faulted.path()), CleanStore(Clean.path());
  EXPECT_EQ(fileBytes(FaultedStore.meansPath()),
            fileBytes(CleanStore.meansPath()));
}

TEST(TransportFault, CollectorCrashUnderSocketsIsRecoveredByManaver) {
  // The parent-side collector dies at the closing save; the abort crosses
  // the wire so the children stop too, and their final persisted
  // subtotals — written from separate processes onto the shared
  // filesystem — are exactly what manaver needs (§3.4).
  ScratchDir Crashed("collector"), Reference("collector_ref");

  fault::FaultPlan Plan;
  Plan.CollectorCrash.AtFinalSave = true;
  {
    ManualClock Frozen(1'000'000);
    RunConfig Config = processConfig(Crashed.path());
    Config.MaxSampleVolume = 60;
    Config.Faults = &Plan;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_TRUE(Report.value().SimulatedCrash);
    EXPECT_EQ(Report.value().SavePointCount, 0);
  }
  ResultsStore CrashedStore(Crashed.path());
  EXPECT_FALSE(fileExists(CrashedStore.checkpointPath()));
  EXPECT_FALSE(fileExists(CrashedStore.meansPath()));

  {
    ManualClock Frozen(1'000'000);
    RunConfig Config = processConfig(Reference.path());
    Config.MaxSampleVolume = 60;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_EQ(Report.value().TotalSampleVolume, 60);
  }

  Result<MomentSnapshot> Recovered = runManualAverage(CrashedStore);
  ASSERT_TRUE(Recovered.isOk()) << Recovered.status().toString();
  EXPECT_EQ(Recovered.value().Moments.sampleVolume(), 60);
  ResultsStore ReferenceStore(Reference.path());
  EXPECT_EQ(fileBytes(CrashedStore.meansPath()),
            fileBytes(ReferenceStore.meansPath()));
  EXPECT_EQ(fileBytes(CrashedStore.confidencePath()),
            fileBytes(ReferenceStore.confidencePath()));
}

TEST(TransportFault, KillSignalCrashIsRejectedOnTheThreadTransport) {
  // SIGKILLing a rank THREAD would kill the whole test process;
  // validate() must refuse the combination instead of trying.
  ScratchDir Dir("reject");
  fault::FaultPlan Plan;
  Plan.WorkerCrashes.push_back({/*Rank=*/1, /*AfterRealizations=*/1,
                                /*PersistBeforeCrash=*/true,
                                /*RaiseKillSignal=*/true});
  RunConfig Config = processConfig(Dir.path());
  Config.Transport = TransportKind::Threads;
  Config.Faults = &Plan;
  Result<RunReport> Report = runSimulation(uniformRealization, Config);
  ASSERT_FALSE(Report.isOk());
  EXPECT_NE(Report.status().message().find("SIGKILL"), std::string::npos);
}

} // namespace
} // namespace parmonc
