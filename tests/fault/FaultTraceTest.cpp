//===- tests/fault/FaultTraceTest.cpp - Faults in the observability layer -===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Injected faults must be *visible*: every fault becomes a fault.* counter
// and a trace instant on the faulting rank's lane. And they must be
// visible *deterministically* — under a frozen clock a faulted run renders
// the same trace bytes every time, so a trace diff localizes a regression
// instead of drowning it in timing noise.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"
#include "parmonc/fault/FaultPlan.h"
#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace parmonc {
namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("parmonc_faulttrace_" + Name + "_" + std::to_string(Counter++)))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
  const std::string &path() const { return Path; }

private:
  static inline int Counter = 0;
  std::string Path;
};

void uniformRealization(RandomSource &Source, double *Out) {
  Out[0] = Source.nextUniform();
}

struct TracedRun {
  std::string TraceJson;
  std::string MeansFile;
  std::string MetricsFile;
  RunReport Report;
};

/// One fully instrumented run under a frozen clock.
TracedRun runTraced(const std::string &WorkDir, const RunConfig &Template,
                    const fault::FaultPlan &Plan) {
  ManualClock Frozen(1'000'000);
  obs::MetricsRegistry Registry;
  obs::TraceWriter Trace(&Frozen);
  RunConfig Config = Template;
  Config.WorkDir = WorkDir;
  Config.Metrics = &Registry;
  Config.Trace = &Trace;
  Config.Faults = &Plan;
  Result<RunReport> Report =
      runSimulation(uniformRealization, Config, &Frozen);
  EXPECT_TRUE(Report.isOk()) << Report.status().toString();
  TracedRun Run;
  Run.TraceJson = Trace.toJson();
  ResultsStore Store(WorkDir);
  Run.MeansFile = readFileToString(Store.meansPath()).valueOr("");
  Run.MetricsFile = readFileToString(Store.metricsPath()).valueOr("");
  Run.Report = Report.valueOr(RunReport{});
  return Run;
}

TEST(FaultTrace, SingleRankFaultedRunRendersIdenticalBytes) {
  // A single-rank run is fully sequential, so with an injected collector
  // crash and a scheduled file corruption, *everything* — trace, metrics
  // file, results — must be byte-identical across executions.
  RunConfig Template;
  Template.MaxSampleVolume = 40;
  Template.ProcessorCount = 1;
  Template.WorkDir = "."; // overridden per run
  Template.AveragePeriodNanos = 0; // save at every poll

  fault::FaultPlan Plan;
  fault::FileCorruptionSpec Corruption;
  Corruption.PathSubstring = "checkpoint";
  Corruption.WriteIndex = 0; // damage the very first checkpoint write
  Corruption.Action = fault::FileCorruptionSpec::Mode::Truncate;
  Corruption.KeepFraction = 0.25;
  Plan.FileCorruptions.push_back(Corruption);
  Plan.CollectorCrash.AtSavePoint = 30;

  ScratchDir First("bytes_a"), Second("bytes_b");
  const TracedRun RunA = runTraced(First.path(), Template, Plan);
  const TracedRun RunB = runTraced(Second.path(), Template, Plan);

  ASSERT_FALSE(RunA.TraceJson.empty());
  EXPECT_EQ(RunA.TraceJson, RunB.TraceJson);
  EXPECT_EQ(RunA.MetricsFile, RunB.MetricsFile);
  EXPECT_EQ(RunA.MeansFile, RunB.MeansFile);
  EXPECT_TRUE(RunA.Report.SimulatedCrash);

  // The fault events are on the trace timeline...
  EXPECT_NE(RunA.TraceJson.find("\"name\":\"fault.write_corrupted\""),
            std::string::npos);
  EXPECT_NE(RunA.TraceJson.find("\"name\":\"fault.collector_crash\""),
            std::string::npos);
  // ...and in the metrics file next to the engine's own counters.
  EXPECT_NE(RunA.MetricsFile.find("fault.writes_corrupted"),
            std::string::npos);
  EXPECT_NE(RunA.MetricsFile.find("fault.collector_crashes"),
            std::string::npos);
}

TEST(FaultTrace, CorruptedCheckpointWriteIsHealedByTheNextRotation) {
  // The corrupted first checkpoint generation is overwritten by the next
  // save and the final checkpoint must load cleanly — the injected damage
  // stayed contained to the generation it hit.
  RunConfig Template;
  Template.MaxSampleVolume = 40;
  Template.ProcessorCount = 1;
  Template.AveragePeriodNanos = 0;

  fault::FaultPlan Plan;
  fault::FileCorruptionSpec Corruption;
  Corruption.PathSubstring = "checkpoint";
  Corruption.WriteIndex = 0;
  Plan.FileCorruptions.push_back(Corruption);

  ScratchDir Dir("healed");
  const TracedRun Run = runTraced(Dir.path(), Template, Plan);
  EXPECT_FALSE(Run.Report.SimulatedCrash);
  EXPECT_EQ(Run.Report.TotalSampleVolume, 40);
  ResultsStore Store(Dir.path());
  Result<MomentSnapshot> Final =
      Store.readSnapshot(Store.checkpointPath()); // mclint: allow(R7): asserting on the sealed generation directly
  ASSERT_TRUE(Final.isOk()) << Final.status().toString();
  EXPECT_EQ(Final.value().Moments.sampleVolume(), 40);
}

TEST(FaultTrace, LossyMultiRankRunsReplayWithEqualCountersAndInstants) {
  // With several ranks the trace's lane-0 byte layout can legitimately
  // vary (workers persist their subtotal files on lane 0), but the fault
  // *content* may not: counters, per-lane fault instants and the result
  // bytes must replay exactly.
  RunConfig Template;
  Template.MaxSampleVolume = 80;
  Template.ProcessorCount = 2;
  Template.DeterministicSchedule = true;
  Template.AveragePeriodNanos = 3'600'000'000'000;

  fault::FaultPlan Plan;
  Plan.Seed = 11;
  Plan.DropProbability = 0.5;
  Plan.ExemptTags = {TagFinal};

  ScratchDir First("lossy_a"), Second("lossy_b");
  const TracedRun RunA = runTraced(First.path(), Template, Plan);
  const TracedRun RunB = runTraced(Second.path(), Template, Plan);

  EXPECT_EQ(RunA.MeansFile, RunB.MeansFile);
  const int64_t *DropsA =
      RunA.Report.Metrics.counterValue("fault.msgs_dropped");
  const int64_t *DropsB =
      RunB.Report.Metrics.counterValue("fault.msgs_dropped");
  ASSERT_NE(DropsA, nullptr);
  ASSERT_NE(DropsB, nullptr);
  EXPECT_GT(*DropsA, 0);
  EXPECT_EQ(*DropsA, *DropsB);

  // Every drop left an instant on the sender's lane.
  auto countInstants = [](const std::string &Json) {
    size_t Count = 0;
    for (size_t At = Json.find("\"name\":\"fault.msg_drop\"");
         At != std::string::npos;
         At = Json.find("\"name\":\"fault.msg_drop\"", At + 1))
      ++Count;
    return Count;
  };
  EXPECT_EQ(countInstants(RunA.TraceJson), size_t(*DropsA));
  EXPECT_EQ(countInstants(RunB.TraceJson), size_t(*DropsB));
}

} // namespace
} // namespace parmonc
