//===- tests/fault/CrashRecoveryTest.cpp - Crash-safe recovery paths ------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The acceptance tests of the fault tentpole: a run killed by an injected
// crash — collector dead at a save-point, worker dead mid-simulation —
// must be recoverable *bit-exactly* through the paper's two mechanisms:
// res=1 resumption from the surviving checkpoint (§3.2) and manaver's
// rebuild from base.dat + the per-rank subtotal files (§3.4). Cumulative
// subtotals plus deterministic per-(experiment, rank, index) streams make
// the recovered sums identical to those of a run that never failed.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"
#include "parmonc/fault/FaultPlan.h"
#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace parmonc {
namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("parmonc_crash_" + Name + "_" + std::to_string(Counter++)))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
  const std::string &path() const { return Path; }

private:
  static inline int Counter = 0;
  std::string Path;
};

void uniformRealization(RandomSource &Source, double *Out) {
  Out[0] = Source.nextUniform();
}

std::string fileBytes(const std::string &Path) {
  return readFileToString(Path).valueOr("<missing " + Path + ">");
}

TEST(CrashRecovery, GoldenResumeAfterCollectorCrashIsBitExact) {
  // Kill the collector at its fifth save-point: the checkpoint on disk
  // stays at save-point four (volume 4). Resuming with res=1 and a new
  // seqnum must then be byte-for-byte indistinguishable from a reference
  // experiment that simulated 4 realizations cleanly and resumed the same
  // way — the interrupted history leaves no trace in the results.
  ScratchDir Killed("golden"), Reference("golden_ref");

  auto baseConfig = [](const std::string &WorkDir) {
    RunConfig Config;
    Config.MaxSampleVolume = 500;
    Config.ProcessorCount = 1;
    Config.WorkDir = WorkDir;
    Config.AveragePeriodNanos = 0; // save at every collector poll
    return Config;
  };

  fault::FaultPlan Plan;
  Plan.CollectorCrash.AtSavePoint = 5;
  {
    ManualClock Frozen(1'000'000);
    RunConfig Config = baseConfig(Killed.path());
    Config.Faults = &Plan;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_TRUE(Report.value().SimulatedCrash);
    EXPECT_EQ(Report.value().SavePointCount, 4);
  }
  {
    ManualClock Frozen(1'000'000);
    RunConfig Config = baseConfig(Reference.path());
    Config.MaxSampleVolume = 4; // what the killed run's checkpoint covers
    ASSERT_TRUE(
        runSimulation(uniformRealization, Config, &Frozen).isOk());
  }

  ResultsStore KilledStore(Killed.path());
  ResultsStore ReferenceStore(Reference.path());
  // The surviving checkpoint is exactly the reference run's final one.
  EXPECT_EQ(fileBytes(KilledStore.checkpointPath()),
            fileBytes(ReferenceStore.checkpointPath()));

  // Resume both with the mandatory new subsequence number.
  for (const std::string &WorkDir : {Killed.path(), Reference.path()}) {
    ManualClock Frozen(1'000'000);
    RunConfig Config = baseConfig(WorkDir);
    Config.MaxSampleVolume = 56;
    Config.Resume = true;
    Config.SequenceNumber = 1;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_EQ(Report.value().TotalSampleVolume, 60);
    EXPECT_EQ(Report.value().NewSampleVolume, 56);
    EXPECT_FALSE(Report.value().SimulatedCrash);
  }
  EXPECT_EQ(fileBytes(KilledStore.meansPath()),
            fileBytes(ReferenceStore.meansPath()));
  EXPECT_EQ(fileBytes(KilledStore.confidencePath()),
            fileBytes(ReferenceStore.confidencePath()));
  EXPECT_EQ(fileBytes(KilledStore.checkpointPath()),
            fileBytes(ReferenceStore.checkpointPath()));
}

TEST(CrashRecovery, DeadWorkerIsDetectedAndManaverRestoresTheFullTotal) {
  // Worker 2 dies after its 30-realization quota but before its final
  // send. The collector's deadline declares it dead and the run finishes
  // degraded over 89 realizations (rank 2's last *message* covered 29);
  // manaver then recovers all 90 from the subtotal files, byte-equal to a
  // run that never lost the worker.
  ScratchDir Faulted("deadworker"), Reference("deadworker_ref");

  auto baseConfig = [](const std::string &WorkDir) {
    RunConfig Config;
    Config.MaxSampleVolume = 90;
    Config.ProcessorCount = 3;
    Config.DeterministicSchedule = true; // fixed 30/30/30 quotas
    Config.WorkDir = WorkDir;
    Config.AveragePeriodNanos = 3'600'000'000'000; // final save only
    return Config;
  };

  fault::FaultPlan Plan;
  Plan.WorkerCrashes.push_back(
      {/*Rank=*/2, /*AfterRealizations=*/30, /*PersistBeforeCrash=*/true});
  RunConfig Config = baseConfig(Faulted.path());
  Config.Faults = &Plan;
  Config.WorkerDeadlineNanos = 50'000'000; // 50 ms of silence = dead
  Result<RunReport> Degraded = runSimulation(uniformRealization, Config);
  ASSERT_TRUE(Degraded.isOk()) << Degraded.status().toString();
  EXPECT_TRUE(Degraded.value().Degraded);
  ASSERT_EQ(Degraded.value().DeadWorkers.size(), 1u);
  EXPECT_EQ(Degraded.value().DeadWorkers[0], 2);
  EXPECT_EQ(Degraded.value().TotalSampleVolume, 89);
  const int64_t *CrashCount =
      Degraded.value().Metrics.counterValue("fault.worker_crashes");
  ASSERT_NE(CrashCount, nullptr);
  EXPECT_EQ(*CrashCount, 1);
  ResultsStore FaultedStore(Faulted.path());
  EXPECT_NE(fileBytes(FaultedStore.logPath()).find("degraded 1"),
            std::string::npos);

  Result<RunReport> Clean =
      runSimulation(uniformRealization, baseConfig(Reference.path()));
  ASSERT_TRUE(Clean.isOk()) << Clean.status().toString();
  ASSERT_EQ(Clean.value().TotalSampleVolume, 90);

  // The crash persisted rank 2's full 30-realization subtotal before
  // dying, so manaver closes the gap exactly.
  Result<MomentSnapshot> Recovered = runManualAverage(FaultedStore);
  ASSERT_TRUE(Recovered.isOk()) << Recovered.status().toString();
  EXPECT_EQ(Recovered.value().Moments.sampleVolume(), 90);
  ResultsStore ReferenceStore(Reference.path());
  EXPECT_EQ(fileBytes(FaultedStore.meansPath()),
            fileBytes(ReferenceStore.meansPath()));
  EXPECT_EQ(fileBytes(FaultedStore.confidencePath()),
            fileBytes(ReferenceStore.confidencePath()));
}

TEST(CrashRecovery, CollectorCrashAtFinalSaveIsRecoveredByManaver) {
  // The collector dies at the closing save: no checkpoint, no result
  // files — only base.dat and the subtotal files every rank persisted with
  // its final send (§3.4's guaranteed freshness). manaver rebuilds the
  // complete experiment from those alone.
  ScratchDir Crashed("finalsave"), Reference("finalsave_ref");

  auto baseConfig = [](const std::string &WorkDir) {
    RunConfig Config;
    Config.MaxSampleVolume = 60;
    Config.ProcessorCount = 3;
    Config.DeterministicSchedule = true;
    Config.WorkDir = WorkDir;
    Config.AveragePeriodNanos = 3'600'000'000'000;
    return Config;
  };

  fault::FaultPlan Plan;
  Plan.CollectorCrash.AtFinalSave = true;
  {
    ManualClock Frozen(1'000'000);
    RunConfig Config = baseConfig(Crashed.path());
    Config.Faults = &Plan;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_TRUE(Report.value().SimulatedCrash);
    EXPECT_EQ(Report.value().SavePointCount, 0);
  }
  ResultsStore CrashedStore(Crashed.path());
  EXPECT_FALSE(fileExists(CrashedStore.checkpointPath()));
  EXPECT_FALSE(fileExists(CrashedStore.meansPath()));

  {
    ManualClock Frozen(1'000'000);
    Result<RunReport> Report = runSimulation(
        uniformRealization, baseConfig(Reference.path()), &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_EQ(Report.value().TotalSampleVolume, 60);
  }

  Result<MomentSnapshot> Recovered = runManualAverage(CrashedStore);
  ASSERT_TRUE(Recovered.isOk()) << Recovered.status().toString();
  EXPECT_EQ(Recovered.value().Moments.sampleVolume(), 60);
  ResultsStore ReferenceStore(Reference.path());
  EXPECT_EQ(fileBytes(CrashedStore.meansPath()),
            fileBytes(ReferenceStore.meansPath()));
  EXPECT_EQ(fileBytes(CrashedStore.confidencePath()),
            fileBytes(ReferenceStore.confidencePath()));
  EXPECT_TRUE(fileExists(CrashedStore.checkpointPath()));
}

TEST(CrashRecovery, WorkerCrashWithoutPersistLosesOnlyTheUnsentTail) {
  // PersistBeforeCrash = false models a node whose disk dies with the
  // process: manaver can then only recover what the rank's last periodic
  // persist captured — here nothing, so the recovered total is the two
  // survivors' quotas plus rank 2's realizations that reached the
  // collector... which manaver cannot see either. The merge must still
  // succeed over the surviving files rather than fail the whole rebuild.
  ScratchDir Dir("nopersist");
  RunConfig Config;
  Config.MaxSampleVolume = 90;
  Config.ProcessorCount = 3;
  Config.DeterministicSchedule = true;
  Config.WorkDir = Dir.path();
  Config.AveragePeriodNanos = 3'600'000'000'000;
  Config.WorkerDeadlineNanos = 50'000'000;
  fault::FaultPlan Plan;
  Plan.WorkerCrashes.push_back(
      {/*Rank=*/2, /*AfterRealizations=*/30, /*PersistBeforeCrash=*/false});
  Config.Faults = &Plan;
  Result<RunReport> Report = runSimulation(uniformRealization, Config);
  ASSERT_TRUE(Report.isOk()) << Report.status().toString();
  EXPECT_TRUE(Report.value().Degraded);
  EXPECT_EQ(Report.value().TotalSampleVolume, 89);

  ResultsStore Store(Dir.path());
  EXPECT_FALSE(fileExists(Store.subtotalPath(2)));
  Result<MomentSnapshot> Recovered = runManualAverage(Store);
  ASSERT_TRUE(Recovered.isOk()) << Recovered.status().toString();
  EXPECT_EQ(Recovered.value().Moments.sampleVolume(), 60);
}

} // namespace
} // namespace parmonc
