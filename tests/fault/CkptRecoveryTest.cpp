//===- tests/fault/CkptRecoveryTest.cpp - Sharded checkpoint recovery -----===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The acceptance tests of the sharded-checkpointing tentpole at the engine
// level: a run that checkpoints through per-rank shards and a manifest
// commit must survive every staged disaster — a collector killed at the
// closing save, a shard whose bytes rot after the CRC was computed, a
// manifest torn mid-write, an abandoned background writer — and recover
// *bit-exactly* to the results of a chain that never failed. Cumulative
// subtotals (§2.2) plus the two-generation manifest rotation make each
// recovery a pure replay of the collector's own merge arithmetic. The
// scale test runs the full engine at 2^10 ranks.
//
//===----------------------------------------------------------------------===//

#include "parmonc/ckpt/CheckpointStore.h"
#include "parmonc/core/Runner.h"
#include "parmonc/fault/FaultPlan.h"
#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace parmonc {
namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("parmonc_ckptrec_" + Name + "_" + std::to_string(Counter++)))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
  const std::string &path() const { return Path; }

private:
  static inline int Counter = 0;
  std::string Path;
};

void uniformRealization(RandomSource &Source, double *Out) {
  Out[0] = Source.nextUniform();
}

std::string fileBytes(const std::string &Path) {
  return readFileToString(Path).valueOr("<missing " + Path + ">");
}

/// The deterministic sharded baseline every test starts from: fixed rank
/// quotas, frozen clock (so rank shards publish exactly once, at the
/// final send), and a single closing save-point that commits generation 1.
RunConfig shardedConfig(const std::string &WorkDir, int64_t MaxVolume,
                        int Processors) {
  RunConfig Config;
  Config.MaxSampleVolume = MaxVolume;
  Config.ProcessorCount = Processors;
  Config.DeterministicSchedule = true;
  Config.WorkDir = WorkDir;
  Config.AveragePeriodNanos = 3'600'000'000'000; // final save only
  Config.CheckpointShards = true;
  return Config;
}

TEST(CkptRecovery, ShardedFinalCheckpointResumeMatchesLegacyBitExact) {
  // The same experiment run twice — once through the legacy monolithic
  // checkpoint.dat, once through shards + manifest — must produce
  // byte-identical result files, and both trees must resume into
  // byte-identical results again. The sharded restore is the collector's
  // save-time merge replayed, so no bit may differ.
  ScratchDir Legacy("legacy"), Sharded("sharded");

  for (bool UseShards : {false, true}) {
    ManualClock Frozen(1'000'000);
    RunConfig Config = shardedConfig(
        UseShards ? Sharded.path() : Legacy.path(), 60, 3);
    Config.CheckpointShards = UseShards;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_EQ(Report.value().TotalSampleVolume, 60);
    EXPECT_EQ(Report.value().SavePointCount, 1);
  }

  ResultsStore LegacyStore(Legacy.path());
  ResultsStore ShardedStore(Sharded.path());
  EXPECT_EQ(fileBytes(LegacyStore.meansPath()),
            fileBytes(ShardedStore.meansPath()));
  EXPECT_EQ(fileBytes(LegacyStore.confidencePath()),
            fileBytes(ShardedStore.confidencePath()));

  // Each mode writes only its own checkpoint artifact.
  EXPECT_TRUE(fileExists(LegacyStore.checkpointPath()));
  EXPECT_FALSE(fileExists(ShardedStore.checkpointPath()));
  ckpt::CheckpointStore LegacyProbe(LegacyStore.checkpointDir());
  EXPECT_FALSE(LegacyProbe.hasAnyManifest());
  ckpt::CheckpointStore ShardedProbe(ShardedStore.checkpointDir());
  Result<ckpt::CheckpointStore::RestoredGeneration> Committed =
      ShardedProbe.restoreWithFallback();
  ASSERT_TRUE(Committed.isOk()) << Committed.status().toString();
  EXPECT_EQ(Committed.value().Shards.size(), 3u);
  EXPECT_FALSE(Committed.value().FromBackup);

  for (bool UseShards : {false, true}) {
    ManualClock Frozen(1'000'000);
    RunConfig Config = shardedConfig(
        UseShards ? Sharded.path() : Legacy.path(), 60, 3);
    Config.CheckpointShards = UseShards;
    Config.Resume = true;
    Config.SequenceNumber = 1;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_EQ(Report.value().TotalSampleVolume, 120);
    EXPECT_EQ(Report.value().NewSampleVolume, 60);
    EXPECT_EQ(Report.value().RestoredFromShards, UseShards);
    EXPECT_FALSE(Report.value().ResumedFromBackup);
  }
  EXPECT_EQ(fileBytes(LegacyStore.meansPath()),
            fileBytes(ShardedStore.meansPath()));
  EXPECT_EQ(fileBytes(LegacyStore.confidencePath()),
            fileBytes(ShardedStore.confidencePath()));
}

TEST(CkptRecovery, FinalSaveCrashCommitsNoManifestAndManaverRebuilds) {
  // The collector dies at the closing save of a sharded run: the crash
  // check precedes every write, so no manifest generation is ever
  // committed — the two-phase protocol leaves nothing half-trusted. The
  // rank shards and subtotal files published with the final sends are all
  // on disk, and manaver rebuilds the complete experiment from the
  // subtotals, byte-equal to a run that never crashed. The rebuilt
  // checkpoint.dat then resumes cleanly even though the tree was sharded.
  ScratchDir Crashed("finalcrash"), Reference("finalcrash_ref");

  fault::FaultPlan Plan;
  Plan.CollectorCrash.AtFinalSave = true;
  {
    ManualClock Frozen(1'000'000);
    RunConfig Config = shardedConfig(Crashed.path(), 60, 3);
    Config.Faults = &Plan;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_TRUE(Report.value().SimulatedCrash);
    EXPECT_EQ(Report.value().SavePointCount, 0);
  }
  ResultsStore CrashedStore(Crashed.path());
  ckpt::CheckpointStore Probe(CrashedStore.checkpointDir());
  EXPECT_FALSE(Probe.hasAnyManifest());
  EXPECT_FALSE(fileExists(CrashedStore.checkpointPath()));
  EXPECT_FALSE(fileExists(CrashedStore.meansPath()));

  {
    ManualClock Frozen(1'000'000);
    Result<RunReport> Report = runSimulation(
        uniformRealization, shardedConfig(Reference.path(), 60, 3), &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_EQ(Report.value().TotalSampleVolume, 60);
  }

  Result<MomentSnapshot> Recovered = runManualAverage(CrashedStore);
  ASSERT_TRUE(Recovered.isOk()) << Recovered.status().toString();
  EXPECT_EQ(Recovered.value().Moments.sampleVolume(), 60);
  ResultsStore ReferenceStore(Reference.path());
  EXPECT_EQ(fileBytes(CrashedStore.meansPath()),
            fileBytes(ReferenceStore.meansPath()));
  EXPECT_EQ(fileBytes(CrashedStore.confidencePath()),
            fileBytes(ReferenceStore.confidencePath()));

  // Resume both: the crashed tree through manaver's legacy rebuild, the
  // reference through its manifest — same state, same bytes out.
  for (const std::string &WorkDir : {Crashed.path(), Reference.path()}) {
    ManualClock Frozen(1'000'000);
    RunConfig Config = shardedConfig(WorkDir, 60, 3);
    Config.Resume = true;
    Config.SequenceNumber = 1;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_EQ(Report.value().TotalSampleVolume, 120);
    EXPECT_EQ(Report.value().RestoredFromShards,
              WorkDir == Reference.path());
  }
  EXPECT_EQ(fileBytes(CrashedStore.meansPath()),
            fileBytes(ReferenceStore.meansPath()));
  EXPECT_EQ(fileBytes(CrashedStore.confidencePath()),
            fileBytes(ReferenceStore.confidencePath()));
}

/// A three-run resume chain whose middle run's checkpoint is damaged on
/// disk behind the CRC layer (the writing run cannot see it), compared
/// byte-for-byte against a reference chain that skips the damaged run:
/// run 1 commits generation 1; run 2 resumes and commits a generation
/// whose bytes \p Damage corrupts; run 3 resumes, must reject the damaged
/// generation, restore the rotated .prev manifest, and finish identical
/// to a reference that resumed straight from run 1's state.
void runDamagedResumeChain(const fault::FileCorruptionSpec &Damage,
                           const std::string &Name) {
  ScratchDir Faulted(Name), Reference(Name + "_ref");

  for (const std::string &WorkDir : {Faulted.path(), Reference.path()}) {
    ManualClock Frozen(1'000'000);
    RunConfig Config = shardedConfig(WorkDir, 30, 3);
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
  }

  // Middle run, faulted chain only: completes believing its commit is
  // good — the corruption models the disk rotting the bytes afterwards.
  {
    ManualClock Frozen(1'000'000);
    fault::FaultPlan Plan;
    Plan.FileCorruptions.push_back(Damage);
    RunConfig Config = shardedConfig(Faulted.path(), 30, 3);
    Config.Resume = true;
    Config.SequenceNumber = 1;
    Config.Faults = &Plan;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_EQ(Report.value().TotalSampleVolume, 60);
    EXPECT_FALSE(Report.value().SimulatedCrash);
  }

  // Final runs: the faulted chain falls back to run 1's generation
  // (volume 30) and must be indistinguishable from the reference chain
  // resuming run 1's state directly.
  for (const std::string &WorkDir : {Faulted.path(), Reference.path()}) {
    ManualClock Frozen(1'000'000);
    RunConfig Config = shardedConfig(WorkDir, 60, 3);
    Config.Resume = true;
    Config.SequenceNumber = 2;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_EQ(Report.value().TotalSampleVolume, 90);
    EXPECT_EQ(Report.value().NewSampleVolume, 60);
    EXPECT_TRUE(Report.value().RestoredFromShards);
    EXPECT_EQ(Report.value().ResumedFromBackup, WorkDir == Faulted.path());
  }

  ResultsStore FaultedStore(Faulted.path());
  ResultsStore ReferenceStore(Reference.path());
  EXPECT_EQ(fileBytes(FaultedStore.meansPath()),
            fileBytes(ReferenceStore.meansPath()));
  EXPECT_EQ(fileBytes(FaultedStore.confidencePath()),
            fileBytes(ReferenceStore.confidencePath()));
  // Both chains committed the same final generation: manifests match to
  // the byte (same shard names, CRCs, volumes — seqnum 2, generation 1).
  ckpt::CheckpointStore FaultedProbe(FaultedStore.checkpointDir());
  ckpt::CheckpointStore ReferenceProbe(ReferenceStore.checkpointDir());
  EXPECT_EQ(fileBytes(FaultedProbe.manifestPath()),
            fileBytes(ReferenceProbe.manifestPath()));
}

TEST(CkptRecovery, CorruptShardFallsBackToPreviousGenerationBitExact) {
  // One flipped bit in rank 1's shard, caught by the manifest CRC at
  // restore time: the whole generation is rejected, never half-merged.
  fault::FileCorruptionSpec Damage;
  Damage.PathSubstring = "rank1_s1_";
  Damage.WriteIndex = 0;
  Damage.Action = fault::FileCorruptionSpec::Mode::BitFlip;
  Damage.FlipByteOffset = 64;
  ASSERT_NO_FATAL_FAILURE(runDamagedResumeChain(Damage, "corruptshard"));
}

TEST(CkptRecovery, TornManifestFallsBackToPreviousGenerationBitExact) {
  // The manifest itself torn mid-write: the seal fails to verify and the
  // rotation's .prev generation takes over. The substring is anchored to
  // the file name ("/manifest.dat") so it can only ever match the commit
  // record, not a directory component.
  fault::FileCorruptionSpec Damage;
  Damage.PathSubstring = "/manifest.dat";
  Damage.WriteIndex = 0;
  Damage.Action = fault::FileCorruptionSpec::Mode::Truncate;
  Damage.KeepFraction = 0.5;
  ASSERT_NO_FATAL_FAILURE(runDamagedResumeChain(Damage, "torncommit"));
}

TEST(CkptRecovery, AsyncCrashPrefixIsRestorableAndFresherStateWinsResume) {
  // A background-writer run killed at the closing save: the abandoned
  // queue may discard pending commits, but everything already committed
  // is a self-consistent restorable prefix. manaver then rebuilds the
  // full state into checkpoint.dat — and the resume ladder must prefer
  // that fresher state over the stale committed manifest (cumulative
  // snapshots: larger volume wins).
  ScratchDir Crashed("asynccrash"), Reference("asynccrash_ref");

  fault::FaultPlan Plan;
  Plan.CollectorCrash.AtFinalSave = true;
  {
    ManualClock Frozen(1'000'000);
    RunConfig Config = shardedConfig(Crashed.path(), 60, 3);
    Config.AveragePeriodNanos = 0; // save at every poll: many commits
    Config.CheckpointAsync = true;
    Config.CheckpointQueueDepth = 1; // maximal backpressure
    Config.Faults = &Plan;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_TRUE(Report.value().SimulatedCrash);
    EXPECT_GT(Report.value().SavePointCount, 0);
  }
  ResultsStore CrashedStore(Crashed.path());
  ckpt::CheckpointStore Probe(CrashedStore.checkpointDir());
  EXPECT_TRUE(Probe.hasAnyManifest());
  // The abandon guarantee: whatever prefix the writer committed before
  // the kill restores without error.
  Result<ckpt::CheckpointStore::RestoredGeneration> Prefix =
      Probe.restoreWithFallback();
  ASSERT_TRUE(Prefix.isOk()) << Prefix.status().toString();

  {
    ManualClock Frozen(1'000'000);
    RunConfig Config = shardedConfig(Reference.path(), 60, 3);
    Config.AveragePeriodNanos = 0;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_EQ(Report.value().TotalSampleVolume, 60);
  }

  Result<MomentSnapshot> Recovered = runManualAverage(CrashedStore);
  ASSERT_TRUE(Recovered.isOk()) << Recovered.status().toString();
  EXPECT_EQ(Recovered.value().Moments.sampleVolume(), 60);
  ResultsStore ReferenceStore(Reference.path());
  EXPECT_EQ(fileBytes(CrashedStore.meansPath()),
            fileBytes(ReferenceStore.meansPath()));
  EXPECT_EQ(fileBytes(CrashedStore.confidencePath()),
            fileBytes(ReferenceStore.confidencePath()));

  // The crashed tree now holds BOTH a mid-run manifest (volume below 60)
  // and manaver's rebuilt checkpoint.dat (volume 60): resuming must pick
  // the rebuilt state and land byte-identical to the reference chain.
  for (const std::string &WorkDir : {Crashed.path(), Reference.path()}) {
    ManualClock Frozen(1'000'000);
    RunConfig Config = shardedConfig(WorkDir, 60, 3);
    Config.Resume = true;
    Config.SequenceNumber = 1;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_EQ(Report.value().TotalSampleVolume, 120);
    EXPECT_EQ(Report.value().RestoredFromShards,
              WorkDir == Reference.path());
    EXPECT_FALSE(Report.value().ResumedFromBackup);
  }
  EXPECT_EQ(fileBytes(CrashedStore.meansPath()),
            fileBytes(ReferenceStore.meansPath()));
  EXPECT_EQ(fileBytes(CrashedStore.confidencePath()),
            fileBytes(ReferenceStore.confidencePath()));
}

TEST(CkptRecovery, AsyncCommitsMatchSyncBitExact) {
  // Sync and async checkpointing differ only in *when* commits execute:
  // with one rank (fully deterministic poll/save sequence) the final
  // committed manifest, the result files, and a subsequent resume are all
  // byte-identical — coalescing drops intermediate generations, never
  // state. The save-point accounting must balance exactly: executed
  // background commits plus coalesced requests equal save-points.
  ScratchDir Sync("sync"), Async("async");

  for (bool UseAsync : {false, true}) {
    ManualClock Frozen(1'000'000);
    RunConfig Config =
        shardedConfig(UseAsync ? Async.path() : Sync.path(), 20, 1);
    Config.AveragePeriodNanos = 0; // save at every poll
    Config.CheckpointAsync = UseAsync;
    Config.CheckpointQueueDepth = 2;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_EQ(Report.value().TotalSampleVolume, 20);
    if (UseAsync) {
      const int64_t *Executed =
          Report.value().Metrics.counterValue("ckpt.async_commits");
      ASSERT_NE(Executed, nullptr);
      EXPECT_EQ(*Executed + Report.value().CoalescedCheckpoints,
                Report.value().SavePointCount);
      const int64_t *Coalesced =
          Report.value().Metrics.counterValue("ckpt.coalesced_saves");
      if (Report.value().CoalescedCheckpoints > 0) {
        ASSERT_NE(Coalesced, nullptr);
        EXPECT_EQ(*Coalesced, Report.value().CoalescedCheckpoints);
      }
    } else {
      EXPECT_EQ(Report.value().CoalescedCheckpoints, 0);
    }
  }

  ResultsStore SyncStore(Sync.path());
  ResultsStore AsyncStore(Async.path());
  ckpt::CheckpointStore SyncProbe(SyncStore.checkpointDir());
  ckpt::CheckpointStore AsyncProbe(AsyncStore.checkpointDir());
  EXPECT_EQ(fileBytes(SyncProbe.manifestPath()),
            fileBytes(AsyncProbe.manifestPath()));
  EXPECT_EQ(fileBytes(SyncStore.meansPath()),
            fileBytes(AsyncStore.meansPath()));

  for (const std::string &WorkDir : {Sync.path(), Async.path()}) {
    ManualClock Frozen(1'000'000);
    RunConfig Config = shardedConfig(WorkDir, 20, 1);
    Config.Resume = true;
    Config.SequenceNumber = 1;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_EQ(Report.value().TotalSampleVolume, 40);
    EXPECT_TRUE(Report.value().RestoredFromShards);
  }
  EXPECT_EQ(fileBytes(SyncStore.meansPath()),
            fileBytes(AsyncStore.meansPath()));
  EXPECT_EQ(fileBytes(SyncStore.confidencePath()),
            fileBytes(AsyncStore.confidencePath()));
}

TEST(CkptRecoveryScale, ThousandRankCrashRecoveryIsBitExact) {
  // The 2^10 proof at full engine scale: 1024 ranks each publish their
  // own shard, one manifest commits them all, a resumed run is killed at
  // its closing save (committing nothing — the prior generation survives
  // untouched to the byte), and the next resume restores all 1024 shards
  // into results byte-identical to a reference chain that never saw the
  // kill.
  constexpr int RankCount = 1024;
  ScratchDir Faulted("scale"), Reference("scale_ref");

  for (const std::string &WorkDir : {Faulted.path(), Reference.path()}) {
    ManualClock Frozen(1'000'000);
    RunConfig Config = shardedConfig(WorkDir, RankCount, RankCount);
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_EQ(Report.value().TotalSampleVolume, RankCount);
  }
  ResultsStore FaultedStore(Faulted.path());
  ckpt::CheckpointStore FaultedProbe(FaultedStore.checkpointDir());
  {
    Result<ckpt::CheckpointStore::RestoredGeneration> Gen =
        FaultedProbe.restoreWithFallback();
    ASSERT_TRUE(Gen.isOk()) << Gen.status().toString();
    EXPECT_EQ(Gen.value().Shards.size(), size_t(RankCount));
  }
  const std::string ManifestBeforeKill =
      fileBytes(FaultedProbe.manifestPath());

  // The middle run resumes and dies at its final save: the crash check
  // precedes every write, so the surviving manifest is bit-untouched.
  {
    ManualClock Frozen(1'000'000);
    fault::FaultPlan Plan;
    Plan.CollectorCrash.AtFinalSave = true;
    RunConfig Config = shardedConfig(Faulted.path(), RankCount, RankCount);
    Config.Resume = true;
    Config.SequenceNumber = 1;
    Config.Faults = &Plan;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_TRUE(Report.value().SimulatedCrash);
    EXPECT_EQ(Report.value().SavePointCount, 0);
  }
  EXPECT_EQ(fileBytes(FaultedProbe.manifestPath()), ManifestBeforeKill);

  for (const std::string &WorkDir : {Faulted.path(), Reference.path()}) {
    ManualClock Frozen(1'000'000);
    RunConfig Config = shardedConfig(WorkDir, RankCount, RankCount);
    Config.Resume = true;
    Config.SequenceNumber = 2;
    Result<RunReport> Report =
        runSimulation(uniformRealization, Config, &Frozen);
    ASSERT_TRUE(Report.isOk()) << Report.status().toString();
    EXPECT_EQ(Report.value().TotalSampleVolume, 2 * RankCount);
    EXPECT_EQ(Report.value().NewSampleVolume, RankCount);
    EXPECT_TRUE(Report.value().RestoredFromShards);
    EXPECT_FALSE(Report.value().ResumedFromBackup);
  }
  ResultsStore ReferenceStore(Reference.path());
  ckpt::CheckpointStore ReferenceProbe(ReferenceStore.checkpointDir());
  EXPECT_EQ(fileBytes(FaultedStore.meansPath()),
            fileBytes(ReferenceStore.meansPath()));
  EXPECT_EQ(fileBytes(FaultedStore.confidencePath()),
            fileBytes(ReferenceStore.confidencePath()));
  EXPECT_EQ(fileBytes(FaultedProbe.manifestPath()),
            fileBytes(ReferenceProbe.manifestPath()));
}

} // namespace
} // namespace parmonc
