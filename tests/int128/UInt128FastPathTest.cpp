//===- tests/int128/UInt128FastPathTest.cpp - Fast vs portable multiply ---===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Differential tests pinning the native unsigned __int128 multiply fast
// path bit-equal to the portable 32-bit-halves reference on random
// operands, carry-heavy edge operands, and the A^n multiplier chains the
// stream hierarchy is built from. On a portable-only build the two sides
// are the same function and the tests degenerate to self-consistency —
// they must still pass.
//
//===----------------------------------------------------------------------===//

#include "parmonc/int128/UInt128.h"
#include "parmonc/rng/Lcg128.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace parmonc {
namespace {

/// SplitMix64 step — a tiny local generator so the operand sampling does
/// not depend on the code under test.
uint64_t splitMix64(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Mixed = State;
  Mixed = (Mixed ^ (Mixed >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Mixed = (Mixed ^ (Mixed >> 27)) * 0x94d049bb133111ebULL;
  return Mixed ^ (Mixed >> 31);
}

void expectSameProduct(UInt128 A, UInt128 B) {
  const UInt128 Fast = A * B;
  const UInt128 Reference = mul128Portable(A, B);
  EXPECT_EQ(Fast.high(), Reference.high())
      << "high limb mismatch for " << A.toHexString() << " * "
      << B.toHexString();
  EXPECT_EQ(Fast.low(), Reference.low())
      << "low limb mismatch for " << A.toHexString() << " * "
      << B.toHexString();
}

TEST(UInt128FastPath, EdgeOperands) {
  const uint64_t Max = ~uint64_t(0);
  const std::vector<UInt128> Edges = {
      UInt128(0),          UInt128(1),
      UInt128(2),          UInt128(Max),
      UInt128(1, 0),       // 2^64
      UInt128(Max, 0),     UInt128(0, Max),
      UInt128(Max, Max),   // 2^128 - 1
      UInt128(1, 1),       UInt128(Max, 1),
      UInt128(1, Max),     UInt128(uint64_t(1) << 63, 0),
      UInt128(0, uint64_t(1) << 63),
      UInt128(0x8000000000000001ULL, 0x8000000000000001ULL),
  };
  for (const UInt128 &A : Edges)
    for (const UInt128 &B : Edges)
      expectSameProduct(A, B);
}

TEST(UInt128FastPath, RandomOperands) {
  uint64_t Seed = 0x1234'5678'9abc'def0ULL;
  for (int Trial = 0; Trial < 20000; ++Trial) {
    const UInt128 A(splitMix64(Seed), splitMix64(Seed));
    const UInt128 B(splitMix64(Seed), splitMix64(Seed));
    expectSameProduct(A, B);
  }
}

TEST(UInt128FastPath, RandomCarryHeavyOperands) {
  // Operands with long runs of set bits maximize cross-limb carries —
  // the failure mode a broken schoolbook multiply would show first.
  uint64_t Seed = 42;
  for (int Trial = 0; Trial < 20000; ++Trial) {
    const UInt128 A(~splitMix64(Seed) | splitMix64(Seed),
                    ~uint64_t(0) << (splitMix64(Seed) % 64));
    const UInt128 B(~uint64_t(0) >> (splitMix64(Seed) % 64),
                    ~splitMix64(Seed) | splitMix64(Seed));
    expectSameProduct(A, B);
  }
}

TEST(UInt128FastPath, MulWide64MatchesPortable) {
  uint64_t Seed = 7;
  for (int Trial = 0; Trial < 20000; ++Trial) {
    const uint64_t A = splitMix64(Seed);
    const uint64_t B = splitMix64(Seed);
    const UInt128 Fast = mulWide64(A, B);
    const UInt128 Reference = mulWide64Portable(A, B);
    EXPECT_EQ(Fast.high(), Reference.high());
    EXPECT_EQ(Fast.low(), Reference.low());
  }
}

TEST(UInt128FastPath, MultiplierPowerChainsAgree) {
  // Walk u_{k+1} = u_k * A through both paths for the paper's multiplier
  // A = 5^101 and compare every intermediate state: the exact arithmetic
  // the generator, the leap tables, and the batch kernels perform.
  const UInt128 Multiplier = Lcg128::defaultMultiplier();
  UInt128 Fast(1), Reference(1);
  for (int Step = 0; Step < 4096; ++Step) {
    Fast = Fast * Multiplier;
    Reference = mul128Portable(Reference, Multiplier);
    ASSERT_EQ(Fast.high(), Reference.high()) << "diverged at step " << Step;
    ASSERT_EQ(Fast.low(), Reference.low()) << "diverged at step " << Step;
  }
}

TEST(UInt128FastPath, LeapMultiplierChainsAgree) {
  // A(n) = A^n for the three default leap exponents, squared-chain style:
  // powModPow2 internally uses operator*, so recompute the same powers by
  // repeated portable squaring and compare.
  const UInt128 Multiplier = Lcg128::defaultMultiplier();
  for (unsigned Exponent : {43u, 98u, 115u}) {
    UInt128 Fast = Multiplier;
    UInt128 Reference = Multiplier;
    for (unsigned Square = 0; Square < Exponent; ++Square) {
      Fast = Fast * Fast;
      Reference = mul128Portable(Reference, Reference);
      ASSERT_EQ(Fast.high(), Reference.high())
          << "2^" << Exponent << " chain diverged at squaring " << Square;
      ASSERT_EQ(Fast.low(), Reference.low());
    }
    const UInt128 ViaPow =
        UInt128::powModPow2(Multiplier, UInt128(uint64_t(1) << 20), 128);
    (void)ViaPow; // powModPow2 itself is covered by UInt128Test
  }
}

TEST(UInt128FastPath, ReportsConfiguredPath) {
#if defined(PARMONC_FORCE_PORTABLE_INT128) || !defined(__SIZEOF_INT128__)
  EXPECT_FALSE(UInt128::hasNativeMultiply());
#else
  EXPECT_TRUE(UInt128::hasNativeMultiply());
#endif
}

} // namespace
} // namespace parmonc
