//===- tests/int128/UInt128Test.cpp - UInt128 unit & property tests -------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/int128/UInt128.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

namespace parmonc {
namespace {

TEST(UInt128, DefaultConstructsToZero) {
  UInt128 Zero;
  EXPECT_TRUE(Zero.isZero());
  EXPECT_EQ(Zero.low(), 0u);
  EXPECT_EQ(Zero.high(), 0u);
}

TEST(UInt128, ConstructsFromUint64) {
  UInt128 Value(0xdeadbeefcafebabeull);
  EXPECT_EQ(Value.low(), 0xdeadbeefcafebabeull);
  EXPECT_EQ(Value.high(), 0u);
}

TEST(UInt128, AdditionCarriesAcrossLimbs) {
  UInt128 AlmostCarry(0, ~0ull);
  UInt128 Sum = AlmostCarry + UInt128(1);
  EXPECT_EQ(Sum.high(), 1u);
  EXPECT_EQ(Sum.low(), 0u);
}

TEST(UInt128, AdditionWrapsAtModulus) {
  UInt128 Max = ~UInt128();
  UInt128 Sum = Max + UInt128(1);
  EXPECT_TRUE(Sum.isZero());
}

TEST(UInt128, SubtractionBorrowsAcrossLimbs) {
  UInt128 Value(1, 0);
  UInt128 Difference = Value - UInt128(1);
  EXPECT_EQ(Difference.high(), 0u);
  EXPECT_EQ(Difference.low(), ~0ull);
}

TEST(UInt128, SubtractionWrapsBelowZero) {
  UInt128 Difference = UInt128(0) - UInt128(1);
  EXPECT_EQ(Difference, ~UInt128());
}

TEST(UInt128, MulWide64MatchesKnownProduct) {
  // 0xffffffffffffffff^2 = 0xfffffffffffffffe0000000000000001.
  UInt128 Product = mulWide64(~0ull, ~0ull);
  EXPECT_EQ(Product.high(), 0xfffffffffffffffeull);
  EXPECT_EQ(Product.low(), 1u);
}

TEST(UInt128, MulWide64AgainstNativeInt128) {
  // Cross-check the portable multiply against the compiler's __int128 on
  // random operands. The library itself never uses __int128; the test may.
  std::mt19937_64 Rng(42);
  for (int Trial = 0; Trial < 1000; ++Trial) {
    uint64_t A = Rng();
    uint64_t B = Rng();
    unsigned __int128 Expected = (unsigned __int128)A * B;
    UInt128 Actual = mulWide64(A, B);
    EXPECT_EQ(Actual.low(), uint64_t(Expected));
    EXPECT_EQ(Actual.high(), uint64_t(Expected >> 64));
  }
}

TEST(UInt128, MultiplyWrapsMod2To128) {
  // (2^64)*(2^64) = 2^128 ≡ 0.
  UInt128 TwoTo64(1, 0);
  EXPECT_TRUE((TwoTo64 * TwoTo64).isZero());
}

TEST(UInt128, MultiplyByOneIsIdentity) {
  UInt128 Value(0x0123456789abcdefull, 0xfedcba9876543210ull);
  EXPECT_EQ(Value * UInt128(1), Value);
  EXPECT_EQ(UInt128(1) * Value, Value);
}

TEST(UInt128, MultiplyIsCommutativeOnRandomOperands) {
  std::mt19937_64 Rng(7);
  for (int Trial = 0; Trial < 200; ++Trial) {
    UInt128 A(Rng(), Rng());
    UInt128 B(Rng(), Rng());
    EXPECT_EQ(A * B, B * A);
  }
}

TEST(UInt128, MultiplyDistributesOverAddition) {
  std::mt19937_64 Rng(13);
  for (int Trial = 0; Trial < 200; ++Trial) {
    UInt128 A(Rng(), Rng());
    UInt128 B(Rng(), Rng());
    UInt128 C(Rng(), Rng());
    EXPECT_EQ(A * (B + C), A * B + A * C);
  }
}

TEST(UInt128, MulFullHighOfSquareOfMax) {
  // (2^128-1)^2 = 2^256 - 2^129 + 1: high = 2^128 - 2 and low = 1.
  WideProduct128 Product = mulFull128(~UInt128(), ~UInt128());
  EXPECT_EQ(Product.High, ~UInt128() - UInt128(1));
  EXPECT_EQ(Product.Low, UInt128(1));
}

TEST(UInt128, MulFullLowMatchesWrappingMultiply) {
  std::mt19937_64 Rng(99);
  for (int Trial = 0; Trial < 500; ++Trial) {
    UInt128 A(Rng(), Rng());
    UInt128 B(Rng(), Rng());
    EXPECT_EQ(mulFull128(A, B).Low, A * B);
  }
}

TEST(UInt128, ShiftLeftAndRightAreInverseForSmallValues) {
  UInt128 Value(0, 0x1234u);
  for (unsigned Amount = 0; Amount < 116; ++Amount) {
    UInt128 Shifted = Value << Amount;
    EXPECT_EQ(Shifted >> Amount, Value) << "amount " << Amount;
  }
}

TEST(UInt128, ShiftByWidthOrMoreYieldsZero) {
  UInt128 Value(~0ull, ~0ull);
  EXPECT_TRUE((Value << 128).isZero());
  EXPECT_TRUE((Value >> 128).isZero());
  EXPECT_TRUE((Value << 200).isZero());
}

TEST(UInt128, ShiftAcrossLimbBoundary) {
  UInt128 Value(0, 0x8000000000000000ull);
  UInt128 Shifted = Value << 1;
  EXPECT_EQ(Shifted.high(), 1u);
  EXPECT_EQ(Shifted.low(), 0u);
  EXPECT_EQ(Shifted >> 1, Value);
}

TEST(UInt128, ComparisonOrdersByHighLimbFirst) {
  EXPECT_LT(UInt128(0, ~0ull), UInt128(1, 0));
  EXPECT_GT(UInt128(2, 0), UInt128(1, ~0ull));
  EXPECT_LE(UInt128(1, 5), UInt128(1, 5));
  EXPECT_GE(UInt128(1, 5), UInt128(1, 5));
  EXPECT_NE(UInt128(1, 5), UInt128(1, 6));
}

TEST(UInt128, BitAccessMatchesLimbLayout) {
  UInt128 Value(0x8000000000000001ull, 0x2ull);
  EXPECT_FALSE(Value.bit(0));
  EXPECT_TRUE(Value.bit(1));
  EXPECT_TRUE(Value.bit(64));
  EXPECT_TRUE(Value.bit(127));
  EXPECT_FALSE(Value.bit(126));
}

TEST(UInt128, CountLeadingZeros) {
  EXPECT_EQ(UInt128().countLeadingZeros(), 128u);
  EXPECT_EQ(UInt128(1).countLeadingZeros(), 127u);
  EXPECT_EQ(UInt128(1, 0).countLeadingZeros(), 63u);
  EXPECT_EQ((~UInt128()).countLeadingZeros(), 0u);
}

TEST(UInt128, CountTrailingZeros) {
  EXPECT_EQ(UInt128().countTrailingZeros(), 128u);
  EXPECT_EQ(UInt128(1).countTrailingZeros(), 0u);
  EXPECT_EQ(UInt128(1, 0).countTrailingZeros(), 64u);
  EXPECT_EQ(UInt128::powerOfTwo(100).countTrailingZeros(), 100u);
}

TEST(UInt128, BitWidth) {
  EXPECT_EQ(UInt128().bitWidth(), 0u);
  EXPECT_EQ(UInt128(1).bitWidth(), 1u);
  EXPECT_EQ(UInt128(255).bitWidth(), 8u);
  EXPECT_EQ(UInt128::powerOfTwo(127).bitWidth(), 128u);
}

TEST(UInt128, DivModSmallValues) {
  DivMod128 Result = divMod128(UInt128(100), UInt128(7));
  EXPECT_EQ(Result.Quotient, UInt128(14));
  EXPECT_EQ(Result.Remainder, UInt128(2));
}

TEST(UInt128, DivModDividendSmallerThanDivisor) {
  DivMod128 Result = divMod128(UInt128(3), UInt128(10));
  EXPECT_TRUE(Result.Quotient.isZero());
  EXPECT_EQ(Result.Remainder, UInt128(3));
}

TEST(UInt128, DivModByOne) {
  UInt128 Value(0xabcdull, 0x1234ull);
  DivMod128 Result = divMod128(Value, UInt128(1));
  EXPECT_EQ(Result.Quotient, Value);
  EXPECT_TRUE(Result.Remainder.isZero());
}

TEST(UInt128, DivModReconstructsDividend) {
  // Property: Dividend == Quotient*Divisor + Remainder, Remainder < Divisor.
  std::mt19937_64 Rng(2024);
  for (int Trial = 0; Trial < 500; ++Trial) {
    UInt128 Dividend(Rng(), Rng());
    UInt128 Divisor(Trial % 3 == 0 ? 0 : Rng(), Rng());
    if (Divisor.isZero())
      Divisor = UInt128(1);
    DivMod128 Result = divMod128(Dividend, Divisor);
    EXPECT_LT(Result.Remainder, Divisor);
    EXPECT_EQ(Result.Quotient * Divisor + Result.Remainder, Dividend);
  }
}

TEST(UInt128, TruncateToBitsMasksHighBits) {
  UInt128 Value = ~UInt128();
  EXPECT_EQ(UInt128::truncateToBits(Value, 1), UInt128(1));
  EXPECT_EQ(UInt128::truncateToBits(Value, 40),
            UInt128::powerOfTwo(40) - UInt128(1));
  EXPECT_EQ(UInt128::truncateToBits(Value, 128), Value);
  EXPECT_TRUE(UInt128::truncateToBits(Value, 0).isZero());
}

TEST(UInt128, PowModPow2KnownValues) {
  // 5^17 mod 2^40 = 762939453125 mod 2^40 (5^17 = 762939453125 < 2^40).
  UInt128 Result = UInt128::powModPow2(UInt128(5), UInt128(17), 40);
  EXPECT_EQ(Result, UInt128(762939453125ull));
  // 3^0 = 1 under any modulus.
  EXPECT_EQ(UInt128::powModPow2(UInt128(3), UInt128(0), 128), UInt128(1));
  // 2^128 mod 2^128 = 0.
  EXPECT_TRUE(
      UInt128::powModPow2(UInt128(2), UInt128(128), 128).isZero());
}

TEST(UInt128, PowModPow2MatchesRepeatedMultiplication) {
  std::mt19937_64 Rng(5);
  for (int Trial = 0; Trial < 50; ++Trial) {
    UInt128 Base(Rng(), Rng() | 1);
    uint64_t Exponent = Rng() % 200;
    UInt128 Expected(1);
    for (uint64_t Step = 0; Step < Exponent; ++Step)
      Expected = Expected * Base;
    EXPECT_EQ(UInt128::powModPow2(Base, UInt128(Exponent), 128), Expected);
  }
}

TEST(UInt128, PowModPow2ExponentAdditionLaw) {
  // Property: A^(m+n) == A^m * A^n (mod 2^128).
  std::mt19937_64 Rng(77);
  for (int Trial = 0; Trial < 100; ++Trial) {
    UInt128 Base(Rng(), Rng() | 1);
    UInt128 ExponentM(Rng() % 1000000);
    UInt128 ExponentN(Rng() % 1000000);
    UInt128 Combined =
        UInt128::powModPow2(Base, ExponentM + ExponentN, 128);
    UInt128 Split = UInt128::powModPow2(Base, ExponentM, 128) *
                    UInt128::powModPow2(Base, ExponentN, 128);
    EXPECT_EQ(Combined, Split);
  }
}

TEST(UInt128, PowModPow2HugeExponent) {
  // A^(2^115) under mod 2^128 must equal squaring A 115 times.
  UInt128 Base = UInt128::powModPow2(UInt128(5), UInt128(101), 128);
  UInt128 Expected = Base;
  for (int Squaring = 0; Squaring < 115; ++Squaring)
    Expected = Expected * Expected;
  EXPECT_EQ(
      UInt128::powModPow2(Base, UInt128::powerOfTwo(115), 128), Expected);
}

TEST(UInt128, PowerOfTwo) {
  EXPECT_EQ(UInt128::powerOfTwo(0), UInt128(1));
  EXPECT_EQ(UInt128::powerOfTwo(64), UInt128(1, 0));
  EXPECT_EQ(UInt128::powerOfTwo(127), UInt128(0x8000000000000000ull, 0));
}

TEST(UInt128, ToDoubleExactBelow2To53) {
  EXPECT_DOUBLE_EQ(UInt128(0).toDouble(), 0.0);
  EXPECT_DOUBLE_EQ(UInt128(1).toDouble(), 1.0);
  EXPECT_DOUBLE_EQ(UInt128((1ull << 53) - 1).toDouble(),
                   9007199254740991.0);
  EXPECT_DOUBLE_EQ(UInt128(1, 0).toDouble(), 18446744073709551616.0);
}

TEST(UInt128, DecimalRoundTrip) {
  std::vector<UInt128> Cases = {
      UInt128(),
      UInt128(1),
      UInt128(9),
      UInt128(10),
      UInt128(1234567890123456789ull),
      UInt128(1, 0),
      ~UInt128(),
  };
  for (UInt128 Value : Cases) {
    Result<UInt128> Parsed =
        UInt128::fromDecimalString(Value.toDecimalString());
    ASSERT_TRUE(Parsed.isOk()) << Parsed.status().toString();
    EXPECT_EQ(Parsed.value(), Value);
  }
}

TEST(UInt128, DecimalKnownValues) {
  EXPECT_EQ((~UInt128()).toDecimalString(),
            "340282366920938463463374607431768211455");
  EXPECT_EQ(UInt128(1, 0).toDecimalString(), "18446744073709551616");
}

TEST(UInt128, DecimalParseRejectsBadInput) {
  EXPECT_FALSE(UInt128::fromDecimalString("").isOk());
  EXPECT_FALSE(UInt128::fromDecimalString("12a").isOk());
  EXPECT_FALSE(UInt128::fromDecimalString("-1").isOk());
  // 2^128 exactly: one past the maximum.
  EXPECT_FALSE(
      UInt128::fromDecimalString("340282366920938463463374607431768211456")
          .isOk());
}

TEST(UInt128, DecimalParseAcceptsMaximum) {
  Result<UInt128> Parsed = UInt128::fromDecimalString(
      "340282366920938463463374607431768211455");
  ASSERT_TRUE(Parsed.isOk());
  EXPECT_EQ(Parsed.value(), ~UInt128());
}

TEST(UInt128, HexRoundTrip) {
  std::mt19937_64 Rng(31337);
  for (int Trial = 0; Trial < 100; ++Trial) {
    UInt128 Value(Rng(), Rng());
    Result<UInt128> Parsed = UInt128::fromHexString(Value.toHexString());
    ASSERT_TRUE(Parsed.isOk());
    EXPECT_EQ(Parsed.value(), Value);
  }
}

TEST(UInt128, HexFixedWidth) {
  EXPECT_EQ(UInt128(0xabull).toHexString(),
            "0x000000000000000000000000000000ab");
  EXPECT_EQ(UInt128().toHexString(),
            "0x00000000000000000000000000000000");
}

TEST(UInt128, HexParseRejectsBadInput) {
  EXPECT_FALSE(UInt128::fromHexString("").isOk());
  EXPECT_FALSE(UInt128::fromHexString("0x").isOk());
  EXPECT_FALSE(UInt128::fromHexString("0xg").isOk());
  // 33 hex digits overflow.
  EXPECT_FALSE(
      UInt128::fromHexString("0x100000000000000000000000000000000").isOk());
}

TEST(UInt128, BitwiseOperators) {
  UInt128 A(0xff00ff00ff00ff00ull, 0x0f0f0f0f0f0f0f0full);
  UInt128 B(0x0ff00ff00ff00ff0ull, 0xf0f0f0f0f0f0f0f0ull);
  EXPECT_EQ((A & B).high(), 0x0f000f000f000f00ull);
  EXPECT_EQ((A | B).low(), ~0ull);
  EXPECT_EQ(A ^ A, UInt128());
  EXPECT_EQ(~(~A), A);
}

TEST(UInt128, DivModAgainstNativeInt128) {
  // Cross-check the binary long division against the compiler runtime's
  // 128-bit division on random operands of mixed widths.
  std::mt19937_64 Rng(777);
  for (int Trial = 0; Trial < 2000; ++Trial) {
    const unsigned WidthChoice = unsigned(Rng() % 4);
    UInt128 Dividend(Rng(), Rng());
    UInt128 Divisor =
        WidthChoice == 0   ? UInt128(Rng() % 1000 + 1)
        : WidthChoice == 1 ? UInt128(Rng() | 1)
        : WidthChoice == 2 ? UInt128(Rng() % 16, Rng())
                           : UInt128(Rng(), Rng());
    if (Divisor.isZero())
      Divisor = UInt128(3);
    unsigned __int128 NativeDividend =
        ((unsigned __int128)Dividend.high() << 64) | Dividend.low();
    unsigned __int128 NativeDivisor =
        ((unsigned __int128)Divisor.high() << 64) | Divisor.low();
    DivMod128 Ours = divMod128(Dividend, Divisor);
    unsigned __int128 NativeQuotient = NativeDividend / NativeDivisor;
    unsigned __int128 NativeRemainder = NativeDividend % NativeDivisor;
    EXPECT_EQ(Ours.Quotient.low(), uint64_t(NativeQuotient));
    EXPECT_EQ(Ours.Quotient.high(), uint64_t(NativeQuotient >> 64));
    EXPECT_EQ(Ours.Remainder.low(), uint64_t(NativeRemainder));
    EXPECT_EQ(Ours.Remainder.high(), uint64_t(NativeRemainder >> 64));
  }
}

TEST(UInt128, WrappingMultiplyAgainstNativeInt128) {
  std::mt19937_64 Rng(888);
  for (int Trial = 0; Trial < 2000; ++Trial) {
    UInt128 A(Rng(), Rng());
    UInt128 B(Rng(), Rng());
    unsigned __int128 NativeA =
        ((unsigned __int128)A.high() << 64) | A.low();
    unsigned __int128 NativeB =
        ((unsigned __int128)B.high() << 64) | B.low();
    unsigned __int128 NativeProduct = NativeA * NativeB;
    UInt128 Product = A * B;
    EXPECT_EQ(Product.low(), uint64_t(NativeProduct));
    EXPECT_EQ(Product.high(), uint64_t(NativeProduct >> 64));
  }
}

// Parameterized decimal round-trip sweep over bit positions: 2^k, 2^k - 1,
// 2^k + 1 for every k — exercises carries in the base-10 conversion at all
// widths.
class UInt128DecimalSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(UInt128DecimalSweep, PowerOfTwoNeighborhoodRoundTrips) {
  unsigned Exponent = GetParam();
  UInt128 Power = UInt128::powerOfTwo(Exponent);
  for (UInt128 Value :
       {Power, Power - UInt128(1), Power + UInt128(1)}) {
    Result<UInt128> Parsed =
        UInt128::fromDecimalString(Value.toDecimalString());
    ASSERT_TRUE(Parsed.isOk());
    EXPECT_EQ(Parsed.value(), Value);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBitPositions, UInt128DecimalSweep,
                         ::testing::Range(0u, 128u, 7u));

} // namespace
} // namespace parmonc
