// mclint fixture (negative): the sanctioned way to obtain a stream is
// RealizationCursor::beginRealization(); assignment from a call is fine.

namespace parmonc {

void fixtureRealizationBody(RealizationCursor &Cursor) {
  Lcg128 Stream = Cursor.beginRealization();
  fixtureConsume(Stream);
}

} // namespace parmonc
