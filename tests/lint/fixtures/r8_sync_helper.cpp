// mclint fixture: a helper TU hiding raw synchronization behind a
// function boundary. Its definitions taint calls made from core/ (R8);
// outside core/ the raw primitives themselves are R3 findings.
#include <mutex> // expect: R3

namespace parmonc {

void fixtureSpinHelper(int *Flag) {
  std::mutex FixtureLock; // expect: R3
  *Flag = 1;
}

} // namespace parmonc
