// mclint fixture: R11 must-check — the flow-sensitive successor of R1.
// A Status/Result local must be consumed on EVERY path before scope exit;
// the CFG makes "checked on one branch only" visible where the token-level
// R1 could not see it. Never compiled — linted only.

namespace parmonc {

// Positive: consumed on the then-branch, leaks on the else path.
int fixtureBranchLeak(bool Flag) {
  Status First = writeFileAtomic("a.dat", "x"); // expect: R11
  if (Flag)
    return First.isOk() ? 1 : 0;
  return 2;
}

// Positive: the early return exits before the check is reached.
int fixtureEarlyReturnLeak(bool Flag) {
  Status Saved = writeFileAtomic("b.dat", "y"); // expect: R11
  if (Flag)
    return 0;
  return Saved.isOk();
}

// Positive: no default — the fall-through past the switch never consumes.
int fixtureSwitchLeak(int Kind) {
  Status Wrote = writeFileAtomic("c.dat", "z"); // expect: R11
  switch (Kind) {
  case 0:
    return Wrote.isOk();
  }
  return 0;
}

// Negative: the loop may check, and the final return always does.
int fixtureLoopConsumes(int Count) {
  Status Sum = writeFileAtomic("d.dat", "w");
  for (int I = 0; I < Count; ++I) {
    if (!Sum.isOk())
      return I;
  }
  return Sum.isOk() ? 1 : 0;
}

// Negative: every switch section consumes, fallthrough included, and the
// default seals the remaining paths.
int fixtureSwitchConsumes(int Kind) {
  Status Other = writeFileAtomic("e.dat", "v");
  switch (Kind) {
  case 0:
  case 1:
    return Other.isOk() ? 1 : 0;
  default:
    return Other.isOk() ? 2 : 3;
  }
}

} // namespace parmonc
