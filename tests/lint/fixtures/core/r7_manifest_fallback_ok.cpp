// mclint fixture (negative): a TU on the recovery ladder may also read a
// manifest directly for its fast path.

namespace parmonc {

int fixtureResumeShardedSafely(CheckpointStore &Store) {
  auto Loaded = Store.restoreWithFallback();
  if (!Loaded)
    return 0;
  auto Direct = Store.readManifest("manifest.dat");
  return Direct ? 1 : 0;
}

} // namespace parmonc
