// mclint fixture: R7 — resume code loading a checkpoint manifest directly,
// with no fallback to the previous generation.

namespace parmonc {

int fixtureResumeSharded(CheckpointStore &Store) {
  auto Loaded = Store.readManifest("manifest.dat"); // expect: R7
  return Loaded ? 1 : 0;
}

} // namespace parmonc
