// mclint fixture: R8 direct raw synchronization inside core/ (the rule
// supersedes R3 there).
#include <condition_variable> // expect: R8

namespace parmonc {

struct FixtureGate {
  std::condition_variable Ready; // expect: R8
  int Guarded = 0;
};

} // namespace parmonc
