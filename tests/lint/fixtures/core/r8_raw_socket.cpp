// mclint fixture: R8 raw socket I/O outside mpsim/ — the wire belongs to
// the transport layer, behind the CRC frame codec and the supervisor.
#include <sys/socket.h> // expect: R8

namespace parmonc {

int fixtureOpenChannel() {
  int Fds[2];
  return socketpair(AF_UNIX, SOCK_STREAM, 0, Fds); // expect: R8
}

} // namespace parmonc
