// mclint fixture: R10 — a file-scope waiver the file no longer earns.
// mclint: allow-file(R8): legacy sweep, nothing left - expect: R10

namespace parmonc {

int fixtureIdleEngine() { return 0; }

} // namespace parmonc
