// mclint fixture (negative): a TU that reaches the fallback API may also
// call the direct loader for its fast path.

namespace parmonc {

int fixtureResumeSafely(ResultsStore &Store) {
  auto Loaded = Store.readSnapshotWithFallback("run.mcs");
  if (!Loaded)
    return 0;
  auto Direct = Store.readSnapshot("run.mcs");
  return Direct ? 1 : 0;
}

} // namespace parmonc
