// mclint fixture: R8 call-graph taint — core/ calling into a TU that
// uses raw synchronization internally (see ../r8_sync_helper.cpp).

namespace parmonc {

void fixtureEngineTick(int *Flag) {
  fixtureSpinHelper(Flag); // expect: R8
}

} // namespace parmonc
