// mclint fixture: R7 — resume code loading a snapshot with no error
// branch for a torn seal.

namespace parmonc {

int fixtureResume(ResultsStore &Store) {
  auto Loaded = Store.readSnapshot("run.mcs"); // expect: R7
  return Loaded ? 1 : 0;
}

} // namespace parmonc
