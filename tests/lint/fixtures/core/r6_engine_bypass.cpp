// mclint fixture: R6 fires inside core/ too — the engine itself may not
// hand-roll streams around the cursor protocol.

namespace parmonc {

void fixtureRunnerScratch() {
  LcgPow2 Scratch;  // expect: R6
  LcgPow2 Jump(9u); // expect: R6
  UInt128 Mult = Lcg128::defaultMultiplier();
}

} // namespace parmonc
