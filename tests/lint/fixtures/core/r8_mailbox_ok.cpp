// mclint fixture (negative): core/ drives workers through the blessed
// mpsim::WorkerGroup / Mailbox layer; no raw primitives, no taint.

namespace parmonc {

void fixtureDispatchJobs(WorkerGroup &Group, Mailbox &Box) {
  Group.dispatch(7);
  Box.post(9);
}

} // namespace parmonc
