// mclint fixture: R13 wire-protocol. The §2.2 frame protocol is a state
// machine: exactly one Hello opens a session, Goodbye/Abort close it and
// nothing may be sent afterwards, and a decoded frame must be checked
// before its value is used (FrameDecoder poisons permanently on a bad
// frame). Never compiled — linted only.

namespace parmonc {

void sendFrame(Socket &Peer, FrameKind Kind);
void consumeFrame(Frame Decoded);

// Positive: Data after Goodbye — the session is already closed.
void fixtureSendAfterGoodbye(Socket &Peer) {
  sendFrame(Peer, FrameKind::Hello);
  sendFrame(Peer, FrameKind::Goodbye);
  sendFrame(Peer, FrameKind::Data); // expect: R13
}

// Positive: the merge joins {open, closed} to closed — out-of-order
// Goodbye on the Flag path poisons the fall-through send.
void fixtureBranchGoodbye(Socket &Peer, bool Flag) {
  sendFrame(Peer, FrameKind::Hello);
  if (Flag)
    sendFrame(Peer, FrameKind::Goodbye);
  sendFrame(Peer, FrameKind::Data); // expect: R13
}

// Positive: a second Hello on an already-open session.
void fixtureDuplicateHello(Socket &Peer) {
  sendFrame(Peer, FrameKind::Hello);
  sendFrame(Peer, FrameKind::Hello); // expect: R13
}

// Positive: the decode result's value is used before anyone checked it.
void fixtureDecodeUnchecked(FrameDecoder &Decoder) {
  auto Incoming = Decoder.next();
  consumeFrame(*Incoming); // expect: R13
}

// Positive: inline .next().value() can never be checked.
void fixtureInlineDecode(FrameDecoder &Decoder) {
  consumeFrame(Decoder.next().value()); // expect: R13
}

// Negative: the full handshake in order, decode checked before use.
void fixtureCleanSession(Socket &Peer, FrameDecoder &Decoder) {
  sendFrame(Peer, FrameKind::Hello);
  sendFrame(Peer, FrameKind::Data);
  auto Incoming = Decoder.next();
  if (!Incoming)
    return;
  consumeFrame(*Incoming);
  sendFrame(Peer, FrameKind::Goodbye);
}

} // namespace parmonc
