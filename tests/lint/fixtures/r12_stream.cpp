// mclint fixture: R12 stream-lifecycle. A stream-hierarchy handle owns a
// partition of the leap-table stream space: copying it duplicates live
// streams, using it after a std::move hand-off replays streams the new
// owner is consuming, and a by-reference lambda capture can outlive the
// rank that owns it. Never compiled — linted only.

namespace parmonc {

void consumeHierarchy(StreamHierarchy Taken);

// Positive: used after the hand-off transferred ownership.
void fixtureUseAfterHandoff(LeapTable &Table) {
  StreamHierarchy Owner(Table);
  consumeHierarchy(std::move(Owner));
  Owner.attachMetrics(); // expect: R12
}

// Positive: the merge joins {moved, live} to moved — the use below is
// a replay on the Flag path even though the else path never moved.
void fixtureBranchMove(LeapTable &Table, bool Flag) {
  StreamHierarchy Owner(Table);
  if (Flag)
    consumeHierarchy(std::move(Owner));
  Owner.attachMetrics(); // expect: R12
}

// Positive: copy-initialization duplicates the live stream partition.
void fixtureCopyDuplicates(LeapTable &Table) {
  StreamHierarchy Owner(Table);
  StreamHierarchy Alias = Owner; // expect: R12
  Alias.attachMetrics();
}

// Positive: the by-reference capture lets the handle escape its scope.
void fixtureLambdaEscape(LeapTable &Table) {
  StreamHierarchy Owner(Table);
  auto Grab = [&]() { Owner.attachMetrics(); }; // expect: R12
  Grab();
}

// Negative: use-then-move is the sanctioned hand-off order.
void fixtureHandoffOk(LeapTable &Table) {
  StreamHierarchy Owner(Table);
  Owner.attachMetrics();
  consumeHierarchy(std::move(Owner));
}

} // namespace parmonc
