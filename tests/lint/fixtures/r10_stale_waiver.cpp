// mclint fixture: R10 — a trailing waiver with nothing left to waive.

namespace parmonc {

int fixtureComputeTotal(int Count) {
  int Total = Count * 2; // mclint: allow(R2): stale - expect: R10
  return Total;
}

} // namespace parmonc
