// mclint fixture (negative): socket calls inside mpsim/ are the blessed
// home of the wire — R8's socket discipline must not fire here.
#include <sys/socket.h>

namespace parmonc {

int fixtureTransportChannel() {
  int Fds[2];
  return socketpair(AF_UNIX, SOCK_STREAM, 0, Fds);
}

} // namespace parmonc
