#ifndef PARMONC_LINT_FIXTURE_R9_CYCLE_A_H
#define PARMONC_LINT_FIXTURE_R9_CYCLE_A_H

#include "r9_cycle_b.h" // expect: R4 R9

struct FixtureCycleA {
  int Value;
};

#endif // PARMONC_LINT_FIXTURE_R9_CYCLE_A_H
