// mclint fixture (negative): a directive on the spliced continuation of \
   a line comment still counts: mclint: allow(R2): spliced waiver
long fixtureSplicedStamp() { return time(nullptr); }
