// mclint fixture: R16 chain hop 1 — the function whose declaration makes
// the whole chain fallible. Never compiled — linted only.

namespace parmonc {

Status fixtureDeepSave(const char *Path) {
  return writeFileAtomic(Path, "payload");
}

} // namespace parmonc
