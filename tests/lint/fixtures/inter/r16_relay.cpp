// mclint fixture: R16 chain hop 2 — an `auto` wrapper that forwards the
// Status without spelling it, which is exactly what R1/R11 cannot see
// through. Never compiled — linted only.

namespace parmonc {

auto fixtureRelaySave(const char *Path) {
  return fixtureDeepSave(Path);
}

} // namespace parmonc
