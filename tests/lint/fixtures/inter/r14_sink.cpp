// mclint fixture: R14 chain hop 3 — the sink. The tainted value crossed
// two translation units before landing in estimator accumulation; the
// witness path walks back to the getenv call in r14_source.cpp. Never
// compiled — linted only.

namespace parmonc {

void fixtureFoldSample(EstimatorMatrix &Est) {
  const double Noisy = fixtureRelayKnob();
  Est.accumulate(&Noisy); // expect: R14
}

} // namespace parmonc
