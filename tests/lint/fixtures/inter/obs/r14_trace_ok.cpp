// mclint fixture (negative): the obs/ trace layer is a sanctioned
// determinism-taint carrier — telemetry is supposed to differ between
// runs, so R14 must stay quiet here. Never compiled — linted only.

namespace parmonc {

void fixtureTraceFlush(TraceSink &Sink) {
  Sink.commit(getenv("PARMONC_TRACE_TAG")); // ok: obs/ is sanctioned
}

} // namespace parmonc
