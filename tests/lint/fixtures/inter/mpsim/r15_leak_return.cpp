// mclint fixture: R15 leak-on-return — the fast path returns while the
// raw .lock() is still held; every later acquirer deadlocks. The slow
// path unlocks and is clean. Never compiled — linted only.
#include <mutex>

namespace parmonc {

struct FixtureGate {
  std::mutex GateMutex;

  bool fixtureTryPass(bool Fast) {
    GateMutex.lock();
    if (Fast)
      return true; // expect: R15
    GateMutex.unlock();
    return false;
  }
};

} // namespace parmonc
