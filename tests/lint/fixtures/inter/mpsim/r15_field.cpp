// mclint fixture: R15 field consistency — `Pending` is guarded in one
// writer and bare in another, and nobody only-calls the bare writer with
// the lock held. The helper that IS always called under the lock stays
// clean. Never compiled — linted only.
#include <mutex>

namespace parmonc {

struct FixtureQueue {
  std::mutex QueueMutex;
  int Pending = 0;
  int Drained = 0;

  void fixtureLockedEnqueue() {
    std::lock_guard<std::mutex> Guard(QueueMutex);
    Pending += 1;
    fixtureCountDrainLocked();
  }

  void fixtureBareBump() {
    Pending += 1; // expect: R15
  }

  // Negative: written bare here, but every call site holds QueueMutex —
  // the summaries' called-under-lock closure clears it.
  void fixtureCountDrainLocked() {
    Drained += 1;
  }
};

} // namespace parmonc
