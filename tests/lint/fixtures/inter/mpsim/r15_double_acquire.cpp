// mclint fixture: R15 double-acquire — fixtureFlush holds SendMutex and
// calls a helper whose summary says it acquires SendMutex again;
// std::mutex is non-recursive, so that is a self-deadlock. Never
// compiled — linted only.
#include <mutex>

namespace parmonc {

struct FixtureChannel {
  std::mutex SendMutex;
  int Queued = 0;

  void fixtureDrainAll() {
    std::lock_guard<std::mutex> Guard(SendMutex);
    Queued = 0;
  }

  void fixtureFlush() {
    std::lock_guard<std::mutex> Guard(SendMutex);
    fixtureDrainAll(); // expect: R15
  }
};

} // namespace parmonc
