// mclint fixture: R16 chain hop 3 — the discard. No frame between here
// and fixtureDeepSave consumes the Status; the witness path walks the
// forwarding chain down to the declaration. The spelled discard and the
// consuming caller are clean. Never compiled — linted only.

namespace parmonc {

void fixtureAutosave(const char *Path) {
  fixtureRelaySave(Path); // expect: R16
  (void)fixtureRelaySave(Path);
}

int fixtureAutosaveChecked(const char *Path) {
  Status Saved = fixtureRelaySave(Path);
  return Saved.isOk() ? 1 : 0;
}

} // namespace parmonc
