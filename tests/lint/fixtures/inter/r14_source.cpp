// mclint fixture: R14 chain hop 1 — the environment read. Nothing is
// flagged here; the taint only matters once it reaches a sink two calls
// away (r14_relay.cpp -> r14_sink.cpp). Never compiled — linted only.

namespace parmonc {

double fixtureReadTuningKnob() {
  const char *Raw = getenv("PARMONC_TUNE");
  return Raw ? 1.5 : 1.0;
}

} // namespace parmonc
