// mclint fixture: R14 single-file variant — an environment read is bound
// to a local and the local lands in a snapshot payload. The Status is
// consumed, so this is R14's finding alone. Never compiled — linted only.

namespace parmonc {

int fixtureStampResults(SnapshotWriter &Writer) {
  const int Tag = getenv("PARMONC_TAG") ? 1 : 0;
  Status Wrote = Writer.writeSnapshot(&Tag); // expect: R14
  return Wrote.isOk() ? 1 : 0;
}

} // namespace parmonc
