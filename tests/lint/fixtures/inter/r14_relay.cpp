// mclint fixture: R14 chain hop 2 — an innocent-looking carrier. The
// summary stage marks it tainted because it calls the getenv reader in
// r14_source.cpp. Never compiled — linted only.

namespace parmonc {

double fixtureRelayKnob() {
  return fixtureReadTuningKnob() * 2.0;
}

} // namespace parmonc
