// mclint fixture: R6 stream discipline for the counter-based backend.
// Never compiled — linted only.

namespace parmonc {

double fixturePhiloxDraw(Philox &Existing) {
  Philox Fresh;                       // expect: R6
  Philox Keyed(0x9e3779b9u);          // expect: R6
  Philox Copy = Existing;             // expect: R6
  Philox Placed = Philox::streamFor(makeCoordinates()); // sanctioned
  return Placed.nextUniform() + Existing.nextUniform();
}

} // namespace parmonc
