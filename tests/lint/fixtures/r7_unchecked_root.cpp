// mclint fixture: R7 applies wherever resume code lives, not only in
// core/; both call sites are flagged.

namespace parmonc {

void fixtureReloadTwice(ResultsStore &Store) {
  auto First = Store.readSnapshot("a.mcs"); // expect: R7 R11
  auto Again = Store.readSnapshot("b.mcs"); // expect: R7 R11
}

} // namespace parmonc
