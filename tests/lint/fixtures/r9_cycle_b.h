#ifndef PARMONC_LINT_FIXTURE_R9_CYCLE_B_H
#define PARMONC_LINT_FIXTURE_R9_CYCLE_B_H

#include "r9_cycle_a.h" // expect: R4

struct FixtureCycleB {
  int Value;
};

#endif // PARMONC_LINT_FIXTURE_R9_CYCLE_B_H
