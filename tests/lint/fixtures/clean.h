#ifndef PARMONC_LINT_FIXTURE_CLEAN_H
#define PARMONC_LINT_FIXTURE_CLEAN_H

#include "parmonc/support/Status.h"

#include <string>

namespace parmonc {

/// A header that violates none of R1–R5.
[[nodiscard]] Status fixtureSave(const std::string &Path);

} // namespace parmonc

#endif // PARMONC_LINT_FIXTURE_CLEAN_H
