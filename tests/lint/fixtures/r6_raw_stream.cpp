// mclint fixture: R6 stream discipline. Never compiled — linted only.

namespace parmonc {

double fixtureDraw(Lcg128 &Existing) {
  Lcg128 Fresh;                            // expect: R6
  Lcg128 Seeded(0x9a, 0x3c);               // expect: R6
  Lcg128 Copy = Existing;                  // expect: R6
  return double(Existing.nextRaw() >> 64); // expect: R6
}

} // namespace parmonc
