// mclint fixture: violates none of R1–R5. Mentions of "std::thread" and
// rand() in comments or strings must not trigger: the rules match only on
// scrubbed code.
#include "parmonc/support/Text.h"

#include <string>

namespace parmonc {

[[nodiscard]] Status fixtureSave(const std::string &Path) {
  const char *Note = "calling rand() or std::thread here would be bad";
  if (Status Written = writeFileAtomic(Path, Note); !Written)
    return Written;
  (void)createDirectories(Path + ".d");
  return Status::ok();
}

} // namespace parmonc
