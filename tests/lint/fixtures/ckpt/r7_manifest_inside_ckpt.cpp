// mclint fixture (negative): the ckpt component implements the recovery
// ladder itself, so direct manifest reads inside it are exempt from R7.

namespace parmonc {

int fixtureLadderRung(CheckpointStore &Store) {
  auto Loaded = Store.readManifest("manifest.dat");
  return Loaded ? 1 : 0;
}

} // namespace parmonc
