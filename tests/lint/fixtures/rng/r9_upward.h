#ifndef PARMONC_LINT_FIXTURE_RNG_R9_UPWARD_H
#define PARMONC_LINT_FIXTURE_RNG_R9_UPWARD_H

#include "parmonc/core/Runner.h" // expect: R9

struct FixtureUpward {
  int Value;
};

#endif // PARMONC_LINT_FIXTURE_RNG_R9_UPWARD_H
