#ifndef PARMONC_LINT_FIXTURE_RNG_R9_DOWN_OK_H
#define PARMONC_LINT_FIXTURE_RNG_R9_DOWN_OK_H

#include "parmonc/int128/UInt128.h"
#include "parmonc/support/Status.h"

struct FixtureDownward {
  int Value;
};

#endif // PARMONC_LINT_FIXTURE_RNG_R9_DOWN_OK_H
