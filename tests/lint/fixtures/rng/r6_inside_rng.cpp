// mclint fixture (negative): rng/ owns the stream algebra — R6 does not
// apply inside it.

namespace parmonc {

UInt128 fixtureStreamAlgebra() {
  Lcg128 Gen;
  LcgPow2 Aux(1u, 2u);
  Lcg128 Dup = Gen;
  return Gen.nextRaw();
}

} // namespace parmonc
