// mclint fixture (negative): inside an rng/ path the backend may seed and
// copy its own streams — R6 only polices code outside rng/.

namespace parmonc {

Philox fixtureMakeBackend(unsigned long long Key) {
  Philox Fresh(Key);
  Philox Copy = Fresh;
  return Copy;
}

} // namespace parmonc
