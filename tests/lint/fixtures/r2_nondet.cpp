// mclint fixture: R2 nondeterminism sources. Never compiled — linted only.
#include <chrono>
#include <ctime>
#include <random>

double fixtureEntropy() {
  std::random_device Device;
  auto Now = std::chrono::system_clock::now();
  long Stamp = time(nullptr);
  return double(Device()) + double(Stamp) +
         double(Now.time_since_epoch().count());
}
