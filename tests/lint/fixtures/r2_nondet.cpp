// mclint fixture: R2 nondeterminism sources. Never compiled — linted only.
#include <chrono>
#include <ctime>
#include <random>

double fixtureEntropy() {
  std::random_device Device;                   // expect: R2
  auto Now = std::chrono::system_clock::now(); // expect: R2
  long Stamp = time(nullptr);                  // expect: R2
  return double(Device()) + double(Stamp) +
         double(Now.time_since_epoch().count());
}
