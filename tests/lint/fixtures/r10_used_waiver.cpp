// mclint fixture (negative): a waiver that still suppresses a live
// finding is not stale.
#include <ctime>

namespace parmonc {

long fixtureWallStamp() {
  return time(nullptr); // mclint: allow(R2): deliberate wall-clock read
}

} // namespace parmonc
