// mclint fixture: R5 narrowing under a stats/ path. Never compiled.

float meanOf(const float *Values, int Count) {
  float Sum = 0.0f;
  for (int I = 0; I < Count; ++I)
    Sum += Values[I];
  return Sum / 1.0f;
}
