// mclint fixture: R5 narrowing under a stats/ path. Never compiled.

float meanOf(const float *Values, int Count) { // expect: R5
  float Sum = 0.0f;                            // expect: R5
  for (int I = 0; I < Count; ++I)
    Sum += Values[I];
  return Sum / 1.0f;                           // expect: R5
}
