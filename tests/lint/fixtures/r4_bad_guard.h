#ifndef WRONG_GUARD_H // expect: R4
#define WRONG_GUARD_H

#include "localheader.h"          // expect: R4
#include <bits/stdc++.h>          // expect: R4
#include <parmonc/support/Status.h> // expect: R4

using namespace std; // expect: R4

#endif // WRONG_GUARD_H
