#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

#include "localheader.h"
#include <bits/stdc++.h>
#include <parmonc/support/Status.h>

using namespace std;

#endif // WRONG_GUARD_H
