// mclint fixture: R1/R11 discarded-status. Inside a function body the
// flow-sensitive R11 supersedes R1; a rule-filtered R1-only run still
// reports these lines as R1. Never compiled — linted only.
#include "parmonc/support/Text.h"

[[nodiscard]] int mightFail();

namespace parmonc {

void fixtureBody() {
  writeFileAtomic("ledger.dat", "x"); // expect: R11
  mightFail();                        // expect: R11
  (void)writeFileAtomic("ledger.dat", "x");
  Status Saved = writeFileAtomic("ledger.dat", "x");
  if (!Saved)
    return;
  // mclint: allow(R1, R11): fixture demonstrates the waiver escape hatch
  // (R1 for rule-filtered runs where the flow engine is off, R11 for the
  // full-rule run where it supersedes R1 inside bodies).
  writeFileAtomic("waived.dat", "x");
}

} // namespace parmonc
