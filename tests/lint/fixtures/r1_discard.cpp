// mclint fixture: R1 discarded-status. Never compiled — linted only.
#include "parmonc/support/Text.h"

[[nodiscard]] int mightFail();

namespace parmonc {

void fixtureBody() {
  writeFileAtomic("ledger.dat", "x"); // expect: R1
  mightFail();                        // expect: R1
  (void)writeFileAtomic("ledger.dat", "x");
  Status Saved = writeFileAtomic("ledger.dat", "x");
  if (!Saved)
    return;
  // mclint: allow(R1): fixture demonstrates the waiver escape hatch
  writeFileAtomic("waived.dat", "x");
}

} // namespace parmonc
