// mclint fixture: R3 raw concurrency. Never compiled — linted only.
#include <mutex>
#include <vector>

struct FixtureQueue {
  std::mutex Lock;
  // mclint: allow(R3): fixture demonstrates the waiver escape hatch
  std::atomic<int> Waived{0};
};
