// mclint fixture: R3 raw concurrency. Never compiled — linted only.
#include <mutex> // expect: R3
#include <vector>

struct FixtureQueue {
  std::mutex Lock; // expect: R3
  // mclint: allow(R3): fixture demonstrates the waiver escape hatch
  std::atomic<int> Waived{0};
};
