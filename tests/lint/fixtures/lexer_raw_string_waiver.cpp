// mclint fixture: waiver text inside a raw string literal is data, not a
// directive — the R2 finding below must survive.

namespace parmonc {

const char *fixtureDocText() {
  return R"(write // mclint: allow-file(R2) to waive a whole file)";
}

long fixtureWallClock() {
  return time(nullptr); // expect: R2
}

} // namespace parmonc
