//===- tests/lint/LexerTest.cpp - mclint tokenizer tests ------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Exercises the lexical front end of the mclint pipeline on synthetic
// buffers: token classification, physical-vs-logical spelling across line
// splices, raw string delimiters, and the never-fails contract on
// malformed input.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Lexer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace parmonc {
namespace lint {
namespace {

/// The (kind, text) pairs of a lexed buffer, skipping nothing.
std::vector<std::pair<TokenKind, std::string>> lexed(std::string_view S) {
  std::vector<std::pair<TokenKind, std::string>> Out;
  for (const Token &T : lexFile(S).Tokens)
    Out.emplace_back(T.Kind, T.Text);
  return Out;
}

/// The first token of \p Kind, or a default Token when absent.
Token firstOfKind(std::string_view S, TokenKind Kind) {
  for (const Token &T : lexFile(S).Tokens)
    if (T.Kind == Kind)
      return T;
  return {};
}

TEST(LexerTest, ClassifiesBasicTokens) {
  const auto Tokens = lexed("int A = 42; // note\n");
  ASSERT_EQ(Tokens.size(), 6u);
  EXPECT_EQ(Tokens[0], std::make_pair(TokenKind::Identifier,
                                      std::string("int")));
  EXPECT_EQ(Tokens[1], std::make_pair(TokenKind::Identifier,
                                      std::string("A")));
  EXPECT_EQ(Tokens[2], std::make_pair(TokenKind::Punct, std::string("=")));
  EXPECT_EQ(Tokens[3], std::make_pair(TokenKind::Number,
                                      std::string("42")));
  EXPECT_EQ(Tokens[4], std::make_pair(TokenKind::Punct, std::string(";")));
  EXPECT_EQ(Tokens[5], std::make_pair(TokenKind::Comment,
                                      std::string("// note")));
}

TEST(LexerTest, NumbersKeepSeparatorsAndSuffixes) {
  EXPECT_EQ(firstOfKind("auto N = 1'000'000ull;", TokenKind::Number).Text,
            "1'000'000ull");
  EXPECT_EQ(firstOfKind("auto F = 1.5e-3f;", TokenKind::Number).Text,
            "1.5e-3f");
}

TEST(LexerTest, StringAndCharPrefixes) {
  EXPECT_EQ(firstOfKind("auto S = u8\"x\";", TokenKind::String).Text,
            "u8\"x\"");
  EXPECT_EQ(firstOfKind("auto C = L'y';", TokenKind::CharLiteral).Text,
            "L'y'");
  // An escaped quote does not terminate the literal.
  EXPECT_EQ(firstOfKind("auto S = \"a\\\"b\";", TokenKind::String).Text,
            "\"a\\\"b\"");
}

TEST(LexerTest, RawStringDelimitersRespected) {
  // The body may contain )" — only the matching )delim" closes it.
  const Token T = firstOfKind("auto S = R\"xx(a)\" b)xx\"; int Z;",
                              TokenKind::RawString);
  EXPECT_EQ(T.Text, "R\"xx(a)\" b)xx\"");
  // Code after the literal still lexes.
  const auto Tokens = lexed("auto S = R\"xx(a)\" b)xx\"; int Z;");
  bool SawZ = false;
  for (const auto &[Kind, Text] : Tokens)
    SawZ = SawZ || (Kind == TokenKind::Identifier && Text == "Z");
  EXPECT_TRUE(SawZ);
}

TEST(LexerTest, BlockCommentSpansLines) {
  const Token T = firstOfKind("int A; /* one\ntwo */ int B;",
                              TokenKind::Comment);
  EXPECT_EQ(T.Text, "/* one\ntwo */");
  EXPECT_EQ(T.Line, 0u);
  EXPECT_EQ(T.EndLine, 1u);
}

TEST(LexerTest, SplicedIdentifierIsOneToken) {
  // A backslash-newline splice inside an identifier: one token, logical
  // spelling with the splice removed, physical range spanning both lines.
  const Token T = firstOfKind("long some\\\nThing = 1;",
                              TokenKind::Identifier);
  EXPECT_EQ(T.Text, "long");
  const auto Tokens = lexFile("long some\\\nThing = 1;").Tokens;
  ASSERT_GE(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[1].Text, "someThing");
  EXPECT_EQ(Tokens[1].Line, 0u);
  EXPECT_EQ(Tokens[1].EndLine, 1u);
}

TEST(LexerTest, SplicedLineCommentIsOneToken) {
  const Token T = firstOfKind("// first \\\nsecond\nint A;",
                              TokenKind::Comment);
  EXPECT_EQ(T.Text, "// first second");
  EXPECT_EQ(T.Line, 0u);
  EXPECT_EQ(T.EndLine, 1u);
  // The code on line 2 is not swallowed.
  bool SawA = false;
  for (const Token &Tok : lexFile("// first \\\nsecond\nint A;").Tokens)
    SawA = SawA || (Tok.Kind == TokenKind::Identifier && Tok.Text == "A");
  EXPECT_TRUE(SawA);
}

TEST(LexerTest, ColumnsArePhysicalAcrossSplices) {
  // A token's Column counts bytes from the start of the physical line its
  // first character sits on. A backslash-newline splice mid-token must not
  // shift the columns of anything after it: the next token starts on the
  // continuation line and its column is measured from THAT line's start,
  // not from where the logical line began.
  const auto Tokens = lexFile("long some\\\nThing = 1;\nint A;").Tokens;
  ASSERT_GE(Tokens.size(), 7u);
  EXPECT_EQ(Tokens[0].Text, "long");
  EXPECT_EQ(Tokens[0].Column, 0u);
  // "someThing" begins at column 5 of line 0 and spans the splice.
  EXPECT_EQ(Tokens[1].Text, "someThing");
  EXPECT_EQ(Tokens[1].Line, 0u);
  EXPECT_EQ(Tokens[1].EndLine, 1u);
  EXPECT_EQ(Tokens[1].Column, 5u);
  // '=' sits on the continuation line after "Thing " — physical column 6.
  EXPECT_EQ(Tokens[2].Text, "=");
  EXPECT_EQ(Tokens[2].Line, 1u);
  EXPECT_EQ(Tokens[2].Column, 6u);
  // The line after the spliced statement is unaffected.
  EXPECT_EQ(Tokens[5].Text, "int");
  EXPECT_EQ(Tokens[5].Line, 2u);
  EXPECT_EQ(Tokens[5].Column, 0u);
}

TEST(LexerTest, LineStartsIndexPhysicalLines) {
  const LexedFile File = lexFile("ab\ncd\n\nef");
  const std::vector<uint32_t> Expected = {0, 3, 6, 7};
  EXPECT_EQ(File.LineStarts, Expected);
}

TEST(LexerTest, NeverFailsOnMalformedInput) {
  // Unterminated constructs close at end of file instead of looping or
  // crashing; every byte lands in some token.
  for (const char *Bad :
       {"\"unterminated", "'x", "/* open", "R\"(open", "R\"verylongdelim",
        "R\"d(body)e\""}) {
    const LexedFile File = lexFile(Bad);
    size_t Covered = 0;
    for (const Token &T : File.Tokens)
      Covered += T.End - T.Begin;
    EXPECT_EQ(Covered, std::string_view(Bad).size()) << Bad;
  }
}

TEST(LexerTest, IdentifierCharPredicate) {
  EXPECT_TRUE(isIdentifierChar('a'));
  EXPECT_TRUE(isIdentifierChar('Z'));
  EXPECT_TRUE(isIdentifierChar('_'));
  EXPECT_TRUE(isIdentifierChar('7'));
  EXPECT_FALSE(isIdentifierChar(' '));
  EXPECT_FALSE(isIdentifierChar(':'));
}

} // namespace
} // namespace lint
} // namespace parmonc
