//===- tests/lint/CfgTest.cpp - CFG builder and dataflow tests ------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Exercises the third mclint pipeline stage on synthetic buffers: the
// per-function CFG builder (branch, loop, switch-fallthrough and early-
// return shapes; the conservative goto/preprocessor bail-outs) and the
// forward-dataflow fixed point over those graphs, including convergence
// across loop back edges under both may- and must-style joins.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Cfg.h"
#include "parmonc/lint/Dataflow.h"
#include "parmonc/lint/Lexer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace parmonc {
namespace lint {
namespace {

/// Builds CFGs for \p Src and returns the single expected function.
FunctionCfg buildOne(std::string_view Src) {
  const LexedFile File = lexFile(Src);
  std::vector<FunctionCfg> Cfgs = buildFunctionCfgs(File.Tokens);
  EXPECT_EQ(Cfgs.size(), 1u);
  return Cfgs.empty() ? FunctionCfg{} : std::move(Cfgs.front());
}

/// Index of the block containing a statement whose first token is on the
/// 0-based \p Line, or UINT32_MAX.
uint32_t blockOnLine(const FunctionCfg &Cfg, uint32_t Line) {
  for (uint32_t B = 0; B < Cfg.Blocks.size(); ++B)
    for (uint32_t S : Cfg.Blocks[B].Statements)
      if (Cfg.Statements[S].Line == Line)
        return B;
  return UINT32_MAX;
}

bool hasEdge(const FunctionCfg &Cfg, uint32_t From, uint32_t To) {
  const auto &Succs = Cfg.Blocks[From].Successors;
  return std::find(Succs.begin(), Succs.end(), To) != Succs.end();
}

/// One fact; transfer marks it on every Plain statement. MayReach joins
/// with max ("marked on SOME path"), MustReach with min ("on EVERY path").
class ReachClient : public DataflowClient {
public:
  explicit ReachClient(bool Must) : Must(Must) {}
  size_t factCount() const override { return 1; }
  uint8_t join(uint8_t A, uint8_t B) const override {
    return Must ? std::min(A, B) : std::max(A, B);
  }
  void transfer(const CfgStatement &Stmt,
                std::vector<uint8_t> &State) const override {
    if (Stmt.Kind == StmtKind::Plain)
      State[0] = 1;
  }

private:
  bool Must;
};

//===----------------------------------------------------------------------===//
// Graph shapes.
//===----------------------------------------------------------------------===//

TEST(CfgTest, StraightLineBodyIsOneBlockPlusExit) {
  const FunctionCfg Cfg = buildOne("void f() {\n"
                                   "  int A = 1;\n"
                                   "  int B = 2;\n"
                                   "}\n");
  EXPECT_EQ(Cfg.Name, "f");
  ASSERT_EQ(Cfg.Statements.size(), 2u);
  EXPECT_EQ(Cfg.Statements[0].Kind, StmtKind::Plain);
  EXPECT_EQ(Cfg.Statements[0].Line, 1u);
  EXPECT_EQ(Cfg.Statements[0].Column, 2u);
  // Both statements share one block, which falls through to the exit.
  const uint32_t B = blockOnLine(Cfg, 1);
  ASSERT_NE(B, UINT32_MAX);
  EXPECT_EQ(blockOnLine(Cfg, 2), B);
  EXPECT_TRUE(hasEdge(Cfg, B, Cfg.Exit));
  EXPECT_TRUE(Cfg.Blocks[Cfg.Exit].Statements.empty());
  EXPECT_TRUE(Cfg.analyzable());
}

TEST(CfgTest, IfElseFormsADiamond) {
  const FunctionCfg Cfg = buildOne("void f(bool C) {\n"
                                   "  if (C) {\n"
                                   "    int A = 1;\n"
                                   "  } else {\n"
                                   "    int B = 2;\n"
                                   "  }\n"
                                   "  int D = 3;\n"
                                   "}\n");
  const uint32_t Cond = blockOnLine(Cfg, 1);
  const uint32_t Then = blockOnLine(Cfg, 2);
  const uint32_t Else = blockOnLine(Cfg, 4);
  const uint32_t After = blockOnLine(Cfg, 6);
  ASSERT_NE(Cond, UINT32_MAX);
  ASSERT_NE(Then, UINT32_MAX);
  ASSERT_NE(Else, UINT32_MAX);
  ASSERT_NE(After, UINT32_MAX);
  EXPECT_EQ(Cfg.Blocks[Cond].Successors.size(), 2u);
  EXPECT_TRUE(hasEdge(Cfg, Cond, Then));
  EXPECT_TRUE(hasEdge(Cfg, Cond, Else));
  EXPECT_TRUE(hasEdge(Cfg, Then, After));
  EXPECT_TRUE(hasEdge(Cfg, Else, After));
}

TEST(CfgTest, WhileLoopHasABackEdge) {
  const FunctionCfg Cfg = buildOne("void f(int N) {\n"
                                   "  while (N > 0) {\n"
                                   "    N = N - 1;\n"
                                   "  }\n"
                                   "  int A = 0;\n"
                                   "}\n");
  const uint32_t Head = blockOnLine(Cfg, 1);
  const uint32_t Body = blockOnLine(Cfg, 2);
  const uint32_t After = blockOnLine(Cfg, 4);
  ASSERT_NE(Head, UINT32_MAX);
  ASSERT_NE(Body, UINT32_MAX);
  ASSERT_NE(After, UINT32_MAX);
  EXPECT_TRUE(hasEdge(Cfg, Head, Body));
  EXPECT_TRUE(hasEdge(Cfg, Head, After));
  EXPECT_TRUE(hasEdge(Cfg, Body, Head)); // the back edge
}

TEST(CfgTest, EarlyReturnEdgesToExit) {
  const FunctionCfg Cfg = buildOne("int f(bool C) {\n"
                                   "  if (C)\n"
                                   "    return 1;\n"
                                   "  return 0;\n"
                                   "}\n");
  const uint32_t Early = blockOnLine(Cfg, 2);
  const uint32_t Tail = blockOnLine(Cfg, 3);
  ASSERT_NE(Early, UINT32_MAX);
  ASSERT_NE(Tail, UINT32_MAX);
  EXPECT_EQ(Cfg.Statements[Cfg.Blocks[Early].Statements.back()].Kind,
            StmtKind::Return);
  EXPECT_TRUE(hasEdge(Cfg, Early, Cfg.Exit));
  EXPECT_TRUE(hasEdge(Cfg, Tail, Cfg.Exit));
  // A return block does NOT fall through to the statement after it.
  EXPECT_FALSE(hasEdge(Cfg, Early, Tail));
}

TEST(CfgTest, SwitchSectionsFallThrough) {
  const FunctionCfg Cfg = buildOne("void f(int K) {\n"
                                   "  switch (K) {\n"
                                   "  case 0:\n"
                                   "    K = 1;\n"
                                   "  case 1:\n"
                                   "    K = 2;\n"
                                   "    break;\n"
                                   "  }\n"
                                   "}\n");
  const uint32_t Cond = blockOnLine(Cfg, 1);
  const uint32_t Sec0 = blockOnLine(Cfg, 3);
  const uint32_t Sec1 = blockOnLine(Cfg, 5);
  ASSERT_NE(Cond, UINT32_MAX);
  ASSERT_NE(Sec0, UINT32_MAX);
  ASSERT_NE(Sec1, UINT32_MAX);
  // The dispatch reaches both sections; section 0 falls through into 1.
  EXPECT_TRUE(hasEdge(Cfg, Cond, Sec0));
  EXPECT_TRUE(hasEdge(Cfg, Cond, Sec1));
  EXPECT_TRUE(hasEdge(Cfg, Sec0, Sec1));
}

TEST(CfgTest, NestedSwitchInsideLoopKeepsFallThroughAndBackEdge) {
  const FunctionCfg Cfg = buildOne("void f(int N) {\n"
                                   "  while (N > 0) {\n"
                                   "    switch (N) {\n"
                                   "    case 0:\n"
                                   "      N = 1;\n"
                                   "    case 1:\n"
                                   "      N = 2;\n"
                                   "      break;\n"
                                   "    }\n"
                                   "    N = N - 1;\n"
                                   "  }\n"
                                   "  int A = 0;\n"
                                   "}\n");
  const uint32_t Head = blockOnLine(Cfg, 1);
  const uint32_t Dispatch = blockOnLine(Cfg, 2);
  const uint32_t Sec0 = blockOnLine(Cfg, 4);
  const uint32_t Sec1 = blockOnLine(Cfg, 6);
  const uint32_t Tail = blockOnLine(Cfg, 9);
  const uint32_t After = blockOnLine(Cfg, 11);
  ASSERT_NE(Head, UINT32_MAX);
  ASSERT_NE(Dispatch, UINT32_MAX);
  ASSERT_NE(Sec0, UINT32_MAX);
  ASSERT_NE(Sec1, UINT32_MAX);
  ASSERT_NE(Tail, UINT32_MAX);
  ASSERT_NE(After, UINT32_MAX);
  // The switch keeps its shape inside the loop body ...
  EXPECT_TRUE(hasEdge(Cfg, Dispatch, Sec0));
  EXPECT_TRUE(hasEdge(Cfg, Dispatch, Sec1));
  EXPECT_TRUE(hasEdge(Cfg, Sec0, Sec1));
  // ... the break targets the statement after the switch, not the loop
  // exit, and the loop's own back edge survives the nesting.
  EXPECT_TRUE(hasEdge(Cfg, Sec1, Tail));
  EXPECT_TRUE(hasEdge(Cfg, Tail, Head));
  EXPECT_TRUE(hasEdge(Cfg, Head, After));
  EXPECT_FALSE(hasEdge(Cfg, Sec1, After));
}

TEST(CfgTest, GotoDisablesOnlyTheFunctionThatContainsIt) {
  const LexedFile File = lexFile("void bad() {\n"
                                 "  goto out;\n"
                                 "out:\n"
                                 "  return;\n"
                                 "}\n"
                                 "\n"
                                 "void good(bool C) {\n"
                                 "  if (C)\n"
                                 "    return;\n"
                                 "  int A = 1;\n"
                                 "}\n");
  std::vector<FunctionCfg> Cfgs = buildFunctionCfgs(File.Tokens);
  ASSERT_EQ(Cfgs.size(), 2u);
  EXPECT_EQ(Cfgs[0].Name, "bad");
  EXPECT_TRUE(Cfgs[0].HasGoto);
  EXPECT_FALSE(Cfgs[0].analyzable());
  // The sibling is untouched by the bail-out and still runs to a fixed
  // point.
  EXPECT_EQ(Cfgs[1].Name, "good");
  EXPECT_FALSE(Cfgs[1].HasGoto);
  ASSERT_TRUE(Cfgs[1].analyzable());
  const DataflowResult May = runForwardDataflow(Cfgs[1], ReachClient(false));
  EXPECT_TRUE(May.Reached[Cfgs[1].Exit]);
  EXPECT_EQ(May.In[Cfgs[1].Exit][0], 1u);
}

TEST(CfgTest, GotoAndDirectivesDisableAnalysis) {
  const FunctionCfg WithGoto = buildOne("void f() {\n"
                                        "  goto out;\n"
                                        "out:\n"
                                        "  return;\n"
                                        "}\n");
  EXPECT_TRUE(WithGoto.HasGoto);
  EXPECT_FALSE(WithGoto.analyzable());

  const FunctionCfg WithIf = buildOne("void f() {\n"
                                      "#if FAST\n"
                                      "  int A = 1;\n"
                                      "#endif\n"
                                      "}\n");
  EXPECT_TRUE(WithIf.HasDirectives);
  EXPECT_FALSE(WithIf.analyzable());
}

TEST(CfgTest, ReversePostorderStartsAtEntryAndCoversReachable) {
  const FunctionCfg Cfg = buildOne("void f(bool C) {\n"
                                   "  if (C)\n"
                                   "    return;\n"
                                   "  int A = 1;\n"
                                   "}\n");
  const std::vector<uint32_t> Order = reversePostorder(Cfg);
  ASSERT_FALSE(Order.empty());
  EXPECT_EQ(Order.front(), Cfg.Entry);
  // Every block is reachable here, so the order covers all of them once.
  std::vector<uint32_t> Sorted = Order;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(Sorted.size(), Cfg.Blocks.size());
  EXPECT_EQ(std::adjacent_find(Sorted.begin(), Sorted.end()), Sorted.end());
}

TEST(CfgTest, ShortestBlockPathFindsAWitness) {
  const FunctionCfg Cfg = buildOne("void f(bool C) {\n"
                                   "  if (C) {\n"
                                   "    int A = 1;\n"
                                   "  }\n"
                                   "  int B = 2;\n"
                                   "}\n");
  const std::vector<uint32_t> Path =
      shortestBlockPath(Cfg, Cfg.Entry, Cfg.Exit);
  ASSERT_GE(Path.size(), 2u);
  EXPECT_EQ(Path.front(), Cfg.Entry);
  EXPECT_EQ(Path.back(), Cfg.Exit);
  for (size_t I = 0; I + 1 < Path.size(); ++I)
    EXPECT_TRUE(hasEdge(Cfg, Path[I], Path[I + 1]));
  // Unreachable direction: no block precedes the entry.
  EXPECT_TRUE(shortestBlockPath(Cfg, Cfg.Exit, Cfg.Entry).empty());
}

TEST(CfgTest, ShapeCrcSeesStructuralChange) {
  const auto CrcOf = [](std::string_view Src) {
    return cfgShapeCrc(buildFunctionCfgs(lexFile(Src).Tokens));
  };
  const uint32_t Straight = CrcOf("void f() { int A = 1; }\n");
  const uint32_t Branch = CrcOf("void f() { if (X) { int A = 1; } }\n");
  EXPECT_NE(Straight, Branch);
  // Identical shape, different spelling inside a statement: same crc —
  // content changes are caught by the content crc, not the shape crc.
  EXPECT_EQ(Straight, CrcOf("void f() { int B = 2; }\n"));
}

//===----------------------------------------------------------------------===//
// Dataflow fixed points.
//===----------------------------------------------------------------------===//

TEST(CfgTest, DataflowMustJoinSeesTheUnmarkedPath) {
  // The then-branch marks, the implicit else does not: under a must-join
  // the exit state is unmarked, under a may-join it is marked.
  const FunctionCfg Cfg = buildOne("void f(bool C) {\n"
                                   "  if (C) {\n"
                                   "    int A = 1;\n"
                                   "  }\n"
                                   "}\n");
  const DataflowResult Must = runForwardDataflow(Cfg, ReachClient(true));
  const DataflowResult May = runForwardDataflow(Cfg, ReachClient(false));
  ASSERT_TRUE(Must.Reached[Cfg.Exit]);
  EXPECT_EQ(Must.In[Cfg.Exit][0], 0u);
  EXPECT_EQ(May.In[Cfg.Exit][0], 1u);
}

TEST(CfgTest, DataflowBothBranchesMarkedSatisfiesMust) {
  const FunctionCfg Cfg = buildOne("void f(bool C) {\n"
                                   "  if (C) {\n"
                                   "    int A = 1;\n"
                                   "  } else {\n"
                                   "    int B = 2;\n"
                                   "  }\n"
                                   "}\n");
  const DataflowResult Must = runForwardDataflow(Cfg, ReachClient(true));
  EXPECT_EQ(Must.In[Cfg.Exit][0], 1u);
}

TEST(CfgTest, DataflowConvergesAcrossLoopBackEdge) {
  // The only marking statement is inside the loop: the zero-iteration
  // path reaches the exit unmarked, so must-join says 0 while may-join
  // says 1 — and both fixed points terminate despite the back edge.
  const FunctionCfg Cfg = buildOne("void f(int N) {\n"
                                   "  while (N > 0) {\n"
                                   "    N = N - 1;\n"
                                   "  }\n"
                                   "}\n");
  const DataflowResult Must = runForwardDataflow(Cfg, ReachClient(true));
  const DataflowResult May = runForwardDataflow(Cfg, ReachClient(false));
  EXPECT_EQ(Must.In[Cfg.Exit][0], 0u);
  EXPECT_EQ(May.In[Cfg.Exit][0], 1u);
  // The loop head's entry state joins the back edge: marked on the
  // iterating path under may-analysis.
  const uint32_t Head = blockOnLine(Cfg, 1);
  ASSERT_NE(Head, UINT32_MAX);
  EXPECT_EQ(May.In[Head][0], 1u);
}

TEST(CfgTest, DataflowConvergesAcrossNestedBackEdges) {
  // Two nested loops, the only marking statement in the innermost body:
  // the fixed point must terminate with both back edges live, and the
  // zero-iteration paths keep the must-join at 0 everywhere.
  const FunctionCfg Cfg = buildOne("void f(int N, int M) {\n"
                                   "  while (N > 0) {\n"
                                   "    while (M > 0) {\n"
                                   "      M = M - 1;\n"
                                   "    }\n"
                                   "    N = N - 1;\n"
                                   "  }\n"
                                   "}\n");
  const uint32_t Outer = blockOnLine(Cfg, 1);
  const uint32_t Inner = blockOnLine(Cfg, 2);
  const uint32_t InnerBody = blockOnLine(Cfg, 3);
  const uint32_t OuterTail = blockOnLine(Cfg, 5);
  ASSERT_NE(Outer, UINT32_MAX);
  ASSERT_NE(Inner, UINT32_MAX);
  ASSERT_NE(InnerBody, UINT32_MAX);
  ASSERT_NE(OuterTail, UINT32_MAX);
  EXPECT_TRUE(hasEdge(Cfg, InnerBody, Inner)); // inner back edge
  EXPECT_TRUE(hasEdge(Cfg, OuterTail, Outer)); // outer back edge
  const DataflowResult Must = runForwardDataflow(Cfg, ReachClient(true));
  const DataflowResult May = runForwardDataflow(Cfg, ReachClient(false));
  EXPECT_EQ(Must.In[Cfg.Exit][0], 0u);
  EXPECT_EQ(May.In[Cfg.Exit][0], 1u);
  // The mark escapes the inner loop and rides the outer back edge all
  // the way around to both loop heads.
  EXPECT_EQ(May.In[Outer][0], 1u);
  EXPECT_EQ(May.In[Inner][0], 1u);
}

TEST(CfgTest, DataflowLeavesUnreachableBlocksAtZero) {
  const FunctionCfg Cfg = buildOne("void f() {\n"
                                   "  int A = 1;\n"
                                   "  return;\n"
                                   "  int B = 2;\n"
                                   "}\n");
  const DataflowResult May = runForwardDataflow(Cfg, ReachClient(false));
  const uint32_t Dead = blockOnLine(Cfg, 3);
  ASSERT_NE(Dead, UINT32_MAX);
  EXPECT_FALSE(May.Reached[Dead]);
  EXPECT_EQ(May.In[Dead][0], 0u);
  EXPECT_TRUE(May.Reached[Cfg.Exit]);
  EXPECT_EQ(May.In[Cfg.Exit][0], 1u);
}

} // namespace
} // namespace lint
} // namespace parmonc
