//===- tests/lint/LintRulesTest.cpp - mclint engine tests -----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Exercises the mclint analyzer against the fixture tree under
// tests/lint/fixtures/ (each file deliberately violates exactly one rule,
// plus a clean pair) and the SourceFile lexer against synthetic buffers.
// The fixture tests assert exact (file, line, rule-id) triples so any
// change to a rule's matching behavior is visible in review.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Analyzer.h"
#include "parmonc/lint/Rules.h"
#include "parmonc/lint/SourceFile.h"
#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <tuple>
#include <vector>

namespace parmonc {
namespace lint {
namespace {

std::string fixturePath(const std::string &Name) {
  return std::string(PARMONC_LINT_FIXTURE_DIR) + "/" + Name;
}

/// Runs the analyzer over the given roots with the given rule subset and
/// asserts environmental success.
LintReport runOn(std::vector<std::string> Paths,
                 std::vector<std::string> RuleIds = {}) {
  AnalyzerOptions Options;
  Options.Paths = std::move(Paths);
  Options.RuleIds = std::move(RuleIds);
  Result<LintReport> Report = runAnalyzer(Options);
  EXPECT_TRUE(Report) << Report.status().message();
  return Report ? Report.value() : LintReport{};
}

/// The (line, rule-id) pairs of a report, in output order.
std::vector<std::pair<unsigned, std::string>>
lineRulePairs(const LintReport &Report) {
  std::vector<std::pair<unsigned, std::string>> Pairs;
  for (const Diagnostic &Diag : Report.Diagnostics)
    Pairs.emplace_back(Diag.Line, Diag.RuleId);
  return Pairs;
}

using Pairs = std::vector<std::pair<unsigned, std::string>>;

/// \p Path relative to the fixture tree root (forward slashes).
std::string fixtureRel(std::string_view Path) {
  std::string Normal(Path);
  std::replace(Normal.begin(), Normal.end(), '\\', '/');
  const size_t At = Normal.rfind("fixtures/");
  return At == std::string::npos ? Normal : Normal.substr(At + 9);
}

//===----------------------------------------------------------------------===//
// Fixture tests: one file per rule, exact (file, line, rule-id) output.
//===----------------------------------------------------------------------===//

TEST(LintRulesTest, R1FlagsDiscardedFallibleCalls) {
  const std::string Path = fixturePath("r1_discard.cpp");
  LintReport Report = runOn({Path}, {"R1"});
  ASSERT_EQ(Report.FileCount, 1u);
  EXPECT_EQ(lineRulePairs(Report), (Pairs{{11, "R1"}, {12, "R1"}}));
  for (const Diagnostic &Diag : Report.Diagnostics) {
    EXPECT_EQ(Diag.Path, Path);
    EXPECT_EQ(Diag.RuleName, "discarded-status");
  }
  // Line 11 discards a builtin fallible API; line 12 discards a function
  // the analyzer harvested from the fixture's own [[nodiscard]] declaration.
  ASSERT_EQ(Report.Diagnostics.size(), 2u);
  EXPECT_NE(Report.Diagnostics[0].Message.find("writeFileAtomic"),
            std::string::npos);
  EXPECT_NE(Report.Diagnostics[1].Message.find("mightFail"),
            std::string::npos);
}

TEST(LintRulesTest, R2FlagsNondeterminismSources) {
  const std::string Path = fixturePath("r2_nondet.cpp");
  LintReport Report = runOn({Path}, {"R2"});
  EXPECT_EQ(lineRulePairs(Report),
            (Pairs{{7, "R2"}, {8, "R2"}, {9, "R2"}}));
  ASSERT_EQ(Report.Diagnostics.size(), 3u);
  EXPECT_NE(Report.Diagnostics[0].Message.find("std::random_device"),
            std::string::npos);
  EXPECT_NE(Report.Diagnostics[1].Message.find("std::chrono::system_clock"),
            std::string::npos);
  EXPECT_NE(Report.Diagnostics[2].Message.find("'time()'"),
            std::string::npos);
}

TEST(LintRulesTest, R3FlagsRawConcurrencyAndHonorsWaiver) {
  const std::string Path = fixturePath("r3_thread.cpp");
  LintReport Report = runOn({Path}, {"R3"});
  // Line 2: banned include. Line 6: std::mutex member. Line 8 would be a
  // std::atomic finding but is waived by the stand-alone comment above it.
  EXPECT_EQ(lineRulePairs(Report), (Pairs{{2, "R3"}, {6, "R3"}}));
  for (const Diagnostic &Diag : Report.Diagnostics)
    EXPECT_EQ(Diag.RuleName, "raw-concurrency");
}

TEST(LintRulesTest, R4FlagsIncludeAndGuardViolations) {
  const std::string Path = fixturePath("r4_bad_guard.h");
  LintReport Report = runOn({Path}, {"R4"});
  // 1: non-PARMONC guard macro; 4: quoted non-project include; 5: <bits/>;
  // 6: project header via <>; 8: using-namespace in a header.
  EXPECT_EQ(lineRulePairs(Report),
            (Pairs{{1, "R4"}, {4, "R4"}, {5, "R4"}, {6, "R4"}, {8, "R4"}}));
  ASSERT_EQ(Report.Diagnostics.size(), 5u);
  EXPECT_NE(Report.Diagnostics[0].Message.find("WRONG_GUARD_H"),
            std::string::npos);
  EXPECT_NE(Report.Diagnostics[4].Message.find("using-namespace"),
            std::string::npos);
}

TEST(LintRulesTest, R5FlagsFloatInEstimatorPaths) {
  const std::string Path = fixturePath("stats/r5_float.cpp");
  LintReport Report = runOn({Path}, {"R5"});
  EXPECT_EQ(lineRulePairs(Report),
            (Pairs{{3, "R5"}, {4, "R5"}, {7, "R5"}}));
  ASSERT_EQ(Report.Diagnostics.size(), 3u);
  // Line 7 has no 'float' token — only the 1.0f literal.
  EXPECT_NE(Report.Diagnostics[2].Message.find("float literal"),
            std::string::npos);
}

TEST(LintRulesTest, R5IgnoresFloatOutsideEstimatorPaths) {
  // The same rule run against a non-stats/, non-core/ file stays silent.
  LintReport Report = runOn({fixturePath("r2_nondet.cpp")}, {"R5"});
  EXPECT_TRUE(Report.Diagnostics.empty());
}

TEST(LintRulesTest, R6FlagsRawStreamsOutsideRng) {
  const std::string Path = fixturePath("r6_raw_stream.cpp");
  LintReport Report = runOn({Path}, {"R6"});
  EXPECT_EQ(lineRulePairs(Report),
            (Pairs{{6, "R6"}, {7, "R6"}, {8, "R6"}, {9, "R6"}}));
  ASSERT_EQ(Report.Diagnostics.size(), 4u);
  EXPECT_NE(Report.Diagnostics[0].Message.find("default-seeds"),
            std::string::npos);
  EXPECT_NE(Report.Diagnostics[1].Message.find("hand-seeds"),
            std::string::npos);
  EXPECT_NE(Report.Diagnostics[2].Message.find("copied"),
            std::string::npos);
  EXPECT_NE(Report.Diagnostics[3].Message.find("nextRaw"),
            std::string::npos);
}

TEST(LintRulesTest, R6AllowsCursorStreamsAndRngInternals) {
  LintReport Report = runOn({fixturePath("r6_cursor_ok.cpp"),
                             fixturePath("rng/r6_inside_rng.cpp")},
                            {"R6"});
  EXPECT_EQ(Report.FileCount, 2u);
  EXPECT_TRUE(Report.Diagnostics.empty());
}

TEST(LintRulesTest, R7FlagsUncheckedSnapshotLoads) {
  LintReport Report = runOn({fixturePath("core/r7_unchecked_load.cpp"),
                             fixturePath("r7_unchecked_root.cpp")},
                            {"R7"});
  EXPECT_EQ(lineRulePairs(Report),
            (Pairs{{7, "R7"}, {7, "R7"}, {8, "R7"}}));
  for (const Diagnostic &Diag : Report.Diagnostics) {
    EXPECT_EQ(Diag.RuleName, "unchecked-snapshot");
    EXPECT_NE(Diag.Message.find(".prev"), std::string::npos);
  }
}

TEST(LintRulesTest, R7SilencedByFallbackEvidence) {
  LintReport Report =
      runOn({fixturePath("core/r7_fallback_ok.cpp")}, {"R7"});
  EXPECT_TRUE(Report.Diagnostics.empty());
}

TEST(LintRulesTest, R7FlagsUncheckedManifestLoads) {
  LintReport Report =
      runOn({fixturePath("core/r7_manifest_unchecked.cpp")}, {"R7"});
  EXPECT_EQ(lineRulePairs(Report), (Pairs{{7, "R7"}}));
  ASSERT_EQ(Report.Diagnostics.size(), 1u);
  EXPECT_NE(Report.Diagnostics[0].Message.find("manifest"),
            std::string::npos);
  EXPECT_NE(Report.Diagnostics[0].Message.find(".prev"), std::string::npos);
}

TEST(LintRulesTest, R7ManifestLoadsSilencedByLadderEvidence) {
  // restoreWithFallback() in the TU is evidence the fallback ladder is
  // reachable; and inside the ckpt component — the ladder's implementation
  // — direct manifest reads are exempt entirely.
  LintReport Report =
      runOn({fixturePath("core/r7_manifest_fallback_ok.cpp"),
             fixturePath("ckpt/r7_manifest_inside_ckpt.cpp")},
            {"R7"});
  EXPECT_EQ(Report.FileCount, 2u);
  EXPECT_TRUE(Report.Diagnostics.empty());
}

TEST(LintRulesTest, R8FlagsDirectSyncAndTaintedCalls) {
  // The taint set comes from the project index, so R8 runs over the whole
  // fixture tree: the raw-sync helper at the root taints its definition,
  // and the core/ caller picks up the edge.
  LintReport Report =
      runOn({std::string(PARMONC_LINT_FIXTURE_DIR)}, {"R8"});
  std::vector<std::string> Got;
  for (const Diagnostic &Diag : Report.Diagnostics)
    Got.push_back(fixtureRel(Diag.Path) + ":" + std::to_string(Diag.Line));
  EXPECT_EQ(Got, (std::vector<std::string>{"core/r8_direct_sync.cpp:3",
                                           "core/r8_direct_sync.cpp:8",
                                           "core/r8_raw_socket.cpp:3",
                                           "core/r8_raw_socket.cpp:9",
                                           "core/r8_tainted_call.cpp:7"}));
  ASSERT_EQ(Report.Diagnostics.size(), 5u);
  EXPECT_NE(Report.Diagnostics[2].Message.find("<sys/socket.h>"),
            std::string::npos);
  EXPECT_NE(Report.Diagnostics[3].Message.find("socketpair"),
            std::string::npos);
  EXPECT_NE(Report.Diagnostics[4].Message.find("fixtureSpinHelper"),
            std::string::npos);
  // core/r8_mailbox_ok.cpp (blessed-layer calls) and the mpsim/ socket
  // fixture (the blessed home of the wire) contributed nothing.
}

TEST(LintRulesTest, R9FlagsUpwardIncludesAndCycles) {
  LintReport Report =
      runOn({std::string(PARMONC_LINT_FIXTURE_DIR)}, {"R9"});
  ASSERT_EQ(Report.Diagnostics.size(), 2u);
  EXPECT_EQ(fixtureRel(Report.Diagnostics[0].Path), "r9_cycle_a.h");
  EXPECT_EQ(Report.Diagnostics[0].Line, 4u);
  EXPECT_NE(Report.Diagnostics[0].Message.find("include cycle:"),
            std::string::npos);
  EXPECT_NE(Report.Diagnostics[0].Message.find("r9_cycle_b.h"),
            std::string::npos);
  EXPECT_EQ(fixtureRel(Report.Diagnostics[1].Path), "rng/r9_upward.h");
  EXPECT_EQ(Report.Diagnostics[1].Line, 4u);
  EXPECT_NE(Report.Diagnostics[1].Message.find("couples rng/ to core/"),
            std::string::npos);
}

TEST(LintRulesTest, R10FlagsStaleWaivers) {
  // All rules active: the only findings in these files are the audits of
  // their dead waivers (one trailing, one file-scope).
  LintReport Report = runOn({fixturePath("r10_stale_waiver.cpp"),
                             fixturePath("core/r10_stale_file_waiver.cpp")});
  EXPECT_EQ(lineRulePairs(Report), (Pairs{{2, "R10"}, {6, "R10"}}));
  ASSERT_EQ(Report.Diagnostics.size(), 2u);
  EXPECT_NE(Report.Diagnostics[0].Message.find("'allow-file(R8)'"),
            std::string::npos);
  EXPECT_NE(Report.Diagnostics[1].Message.find("suppresses no finding"),
            std::string::npos);
}

TEST(LintRulesTest, R10IgnoresUsedWaivers) {
  LintReport Report = runOn({fixturePath("r10_used_waiver.cpp")});
  EXPECT_TRUE(Report.Diagnostics.empty());
}

TEST(LintRulesTest, CleanFixturesProduceNoFindings) {
  LintReport Report =
      runOn({fixturePath("clean.cpp"), fixturePath("clean.h")});
  EXPECT_EQ(Report.FileCount, 2u);
  EXPECT_TRUE(Report.Diagnostics.empty())
      << formatDiagnostic(Report.Diagnostics.front(), false);
}

//===----------------------------------------------------------------------===//
// Self-describing fixture driver: every fixture carries its expected
// findings as `// expect: Rn [Rm ...]` annotations on the flagged line,
// and the full-rule run over the tree must match them exactly. Adding a
// fixture therefore needs no test edit — and a rule regression shows up
// as a readable diff of "<file>:<line> <rule>" strings.
//===----------------------------------------------------------------------===//

TEST(LintRulesTest, FixtureExpectationsMatch) {
  namespace fs = std::filesystem;
  std::vector<std::string> Expected;
  for (const auto &Entry : fs::recursive_directory_iterator(
           std::string(PARMONC_LINT_FIXTURE_DIR))) {
    if (!Entry.is_regular_file())
      continue;
    const std::string Path = Entry.path().generic_string();
    Result<std::string> Contents = readFileToString(Path);
    ASSERT_TRUE(Contents) << Contents.status().message();
    unsigned LineNo = 0;
    for (std::string_view Line : splitChar(Contents.value(), '\n')) {
      ++LineNo;
      const size_t At = Line.find("expect:");
      if (At == std::string_view::npos)
        continue;
      for (std::string_view Id : splitWhitespace(Line.substr(At + 7))) {
        ASSERT_TRUE(Id.size() >= 2 && Id[0] == 'R' &&
                    Id.find_first_not_of("0123456789", 1) ==
                        std::string_view::npos)
            << "malformed expect annotation in " << Path << ":" << LineNo;
        Expected.push_back(fixtureRel(Path) + ":" + std::to_string(LineNo) +
                           " " + std::string(Id));
      }
    }
  }
  ASSERT_FALSE(Expected.empty());

  LintReport Report = runOn({std::string(PARMONC_LINT_FIXTURE_DIR)});
  // Deterministic ordering: sorted by (path, line, rule id).
  EXPECT_TRUE(std::is_sorted(
      Report.Diagnostics.begin(), Report.Diagnostics.end(),
      [](const Diagnostic &A, const Diagnostic &B) {
        return std::tie(A.Path, A.Line, A.RuleId) <
               std::tie(B.Path, B.Line, B.RuleId);
      }));
  std::vector<std::string> Actual;
  for (const Diagnostic &Diag : Report.Diagnostics)
    Actual.push_back(fixtureRel(Diag.Path) + ":" +
                     std::to_string(Diag.Line) + " " + Diag.RuleId);
  std::sort(Expected.begin(), Expected.end());
  std::sort(Actual.begin(), Actual.end());
  EXPECT_EQ(Expected, Actual);
}

//===----------------------------------------------------------------------===//
// Interprocedural rules (R14-R16): the witness path follows the call
// chain across translation units, so these run over the multi-file
// fixture set under inter/ and assert the cross-file steps explicitly.
//===----------------------------------------------------------------------===//

TEST(LintRulesTest, R14WitnessWalksTheTaintChainAcrossFiles) {
  LintReport Report = runOn({fixturePath("inter/r14_source.cpp"),
                             fixturePath("inter/r14_relay.cpp"),
                             fixturePath("inter/r14_sink.cpp")},
                            {"R14"});
  ASSERT_EQ(Report.Diagnostics.size(), 1u);
  const Diagnostic &Diag = Report.Diagnostics.front();
  EXPECT_EQ(Diag.Path, fixturePath("inter/r14_sink.cpp"));
  EXPECT_EQ(Diag.Line, 10u);
  EXPECT_NE(Diag.Message.find("environment variable read"),
            std::string::npos);
  EXPECT_NE(Diag.Message.find("estimator accumulation"), std::string::npos);
  // Bind step (own file), one step per chain hop, then the sink step.
  ASSERT_EQ(Diag.Flow.size(), 4u);
  EXPECT_TRUE(Diag.Flow[0].Path.empty());
  EXPECT_NE(Diag.Flow[0].Message.find("'Noisy' is bound here"),
            std::string::npos);
  EXPECT_EQ(Diag.Flow[1].Path, fixturePath("inter/r14_relay.cpp"));
  EXPECT_EQ(Diag.Flow[1].Line, 8u);
  EXPECT_NE(
      Diag.Flow[1].Message.find("'fixtureRelayKnob' carries it through"),
      std::string::npos);
  EXPECT_EQ(Diag.Flow[2].Path, fixturePath("inter/r14_source.cpp"));
  EXPECT_EQ(Diag.Flow[2].Line, 8u);
  EXPECT_NE(Diag.Flow[2].Message.find(
                "originates in 'fixtureReadTuningKnob' here"),
            std::string::npos);
  EXPECT_TRUE(Diag.Flow[3].Path.empty());
  EXPECT_EQ(Diag.Flow[3].Line, 10u);
}

TEST(LintRulesTest, R14StandsDownWithoutTheChain) {
  // The sink file alone: fixtureRelayKnob has no definition in the index,
  // so no taint reaches the sink and R14 stays quiet.
  LintReport Report = runOn({fixturePath("inter/r14_sink.cpp")}, {"R14"});
  EXPECT_TRUE(Report.Diagnostics.empty());
}

TEST(LintRulesTest, R15SummariesDecideLockConsistency) {
  LintReport Report =
      runOn({fixturePath("inter/mpsim/r15_field.cpp")}, {"R15"});
  // fixtureBareBump's bare write is flagged; fixtureCountDrainLocked's is
  // not, because every call site holds the lock (CalledUnderLock closure).
  ASSERT_EQ(Report.Diagnostics.size(), 1u);
  EXPECT_EQ(Report.Diagnostics[0].Line, 21u);
  EXPECT_NE(Report.Diagnostics[0].Message.find("'Pending'"),
            std::string::npos);
  ASSERT_EQ(Report.Diagnostics[0].Flow.size(), 2u);
}

TEST(LintRulesTest, R16WitnessWalksTheForwardingChainAcrossFiles) {
  LintReport Report = runOn({fixturePath("inter/r16_deep.cpp"),
                             fixturePath("inter/r16_relay.cpp"),
                             fixturePath("inter/r16_caller.cpp")},
                            {"R16"});
  ASSERT_EQ(Report.Diagnostics.size(), 1u);
  const Diagnostic &Diag = Report.Diagnostics.front();
  EXPECT_EQ(Diag.Path, fixturePath("inter/r16_caller.cpp"));
  EXPECT_EQ(Diag.Line, 9u);
  EXPECT_NE(Diag.Message.find("forwarded from 'fixtureDeepSave'"),
            std::string::npos);
  ASSERT_EQ(Diag.Flow.size(), 3u);
  EXPECT_TRUE(Diag.Flow[0].Path.empty());
  EXPECT_EQ(Diag.Flow[1].Path, fixturePath("inter/r16_relay.cpp"));
  EXPECT_EQ(Diag.Flow[1].Line, 8u);
  EXPECT_NE(Diag.Flow[1].Message.find("forwards the result of"),
            std::string::npos);
  EXPECT_EQ(Diag.Flow[2].Path, fixturePath("inter/r16_deep.cpp"));
  EXPECT_EQ(Diag.Flow[2].Line, 6u);
  EXPECT_NE(Diag.Flow[2].Message.find("declared fallible"),
            std::string::npos);
}

TEST(LintRulesTest, RulesSelectableByName) {
  LintReport Report =
      runOn({fixturePath("r2_nondet.cpp")}, {"nondeterminism"});
  EXPECT_EQ(Report.Diagnostics.size(), 3u);
}

//===----------------------------------------------------------------------===//
// Diagnostic rendering.
//===----------------------------------------------------------------------===//

TEST(LintRulesTest, FormatDiagnosticIsByteStable) {
  Diagnostic Diag;
  Diag.Path = "src/core/Runner.cpp";
  Diag.Line = 42;
  Diag.RuleId = "R3";
  Diag.RuleName = "raw-concurrency";
  Diag.Message = "'std::mutex' outside mpsim/ and obs/";
  EXPECT_EQ(formatDiagnostic(Diag, false),
            "src/core/Runner.cpp:42: warning: 'std::mutex' outside mpsim/ "
            "and obs/ [R3:raw-concurrency]");
  EXPECT_EQ(formatDiagnostic(Diag, true),
            "src/core/Runner.cpp:42: error: 'std::mutex' outside mpsim/ "
            "and obs/ [R3:raw-concurrency]");
}

//===----------------------------------------------------------------------===//
// SourceFile lexing: scrubbing and waivers on synthetic buffers.
//===----------------------------------------------------------------------===//

TEST(SourceFileTest, ScrubsCommentsAndLiterals) {
  SourceFile File("x.cpp",
                  "int A = 1; // std::thread in a comment\n"
                  "const char *S = \"rand() in a string\";\n"
                  "/* block\n"
                  "   std::mutex */ int B = 2;\n"
                  "char C = 'x';\n"
                  "long D = 1'000'000; // digit separator survives\n");
  ASSERT_EQ(File.lineCount(), 6u);
  EXPECT_EQ(File.scrubbedLine(0).find("std::thread"),
            std::string_view::npos);
  EXPECT_EQ(File.scrubbedLine(1).find("rand"), std::string_view::npos);
  EXPECT_NE(File.scrubbedLine(1).find("const char *S"),
            std::string_view::npos);
  EXPECT_EQ(File.scrubbedLine(3).find("std::mutex"),
            std::string_view::npos);
  EXPECT_NE(File.scrubbedLine(3).find("int B = 2;"),
            std::string_view::npos);
  EXPECT_EQ(File.scrubbedLine(4).find('x'), std::string_view::npos);
  EXPECT_NE(File.scrubbedLine(5).find("1'000'000"),
            std::string_view::npos);
  // Columns are preserved: scrubbed lines are exactly as long as raw ones.
  for (size_t I = 0; I < File.lineCount(); ++I)
    EXPECT_EQ(File.scrubbedLine(I).size(), File.rawLine(I).size());
}

TEST(SourceFileTest, ScrubsRawStringLiterals) {
  SourceFile File("x.cpp",
                  "auto S = R\"(std::thread\n"
                  "rand())\"; int After = 1;\n");
  EXPECT_EQ(File.scrubbedLine(0).find("std::thread"),
            std::string_view::npos);
  EXPECT_EQ(File.scrubbedLine(1).find("rand"), std::string_view::npos);
  EXPECT_NE(File.scrubbedLine(1).find("int After = 1;"),
            std::string_view::npos);
}

TEST(SourceFileTest, WaiverScopes) {
  SourceFile File("x.cpp",
                  "std::mutex A; // mclint: allow(R3): reviewed\n"
                  "// mclint: allow(R2,R3): next-line waiver\n"
                  "std::mutex B;\n"
                  "std::mutex C;\n");
  EXPECT_TRUE(File.isWaived(0, "R3"));
  EXPECT_FALSE(File.isWaived(0, "R2"));
  EXPECT_TRUE(File.isWaived(2, "R3")); // from the stand-alone comment
  EXPECT_TRUE(File.isWaived(2, "R2"));
  EXPECT_FALSE(File.isWaived(3, "R3"));
}

TEST(SourceFileTest, WaiverInsideRawStringIsNotHonored) {
  // A directive spelled inside a raw string literal is data, not a
  // waiver: the scrubbing bug this guards against parsed it as one.
  SourceFile File("x.cpp",
                  "const char *S = R\"(// mclint: allow-file(R2))\";\n"
                  "long T = time(nullptr);\n");
  EXPECT_TRUE(File.waivers().empty());
  EXPECT_FALSE(File.isWaived(1, "R2"));
}

TEST(SourceFileTest, SplicedLineCommentWaiverIsHonored) {
  // A backslash-newline splice continues a line comment; a directive on
  // the continuation line is still inside the comment token.
  SourceFile File("x.cpp",
                  "// spliced \\\n"
                  "   mclint: allow(R2): continuation\n"
                  "long T = time(nullptr);\n");
  ASSERT_EQ(File.waivers().size(), 1u);
  EXPECT_TRUE(File.isWaived(2, "R2"));
}

TEST(SourceFileTest, StandaloneWaiverSkipsCommentLinesToCode) {
  // A stand-alone directive may sit on top of further prose comment
  // lines; it covers the first code line after them.
  SourceFile File("x.cpp",
                  "// mclint: allow(R2): reviewed\n"
                  "// because the fixture wants wall-clock time here.\n"
                  "\n"
                  "long T = time(nullptr);\n"
                  "long U = time(nullptr);\n");
  EXPECT_TRUE(File.isWaived(3, "R2"));
  EXPECT_FALSE(File.isWaived(4, "R2"));
}

TEST(SourceFileTest, FileWaiverCoversEveryLine) {
  SourceFile File("x.cpp",
                  "// mclint: allow-file(R3): engine-internal atomics\n"
                  "std::mutex A;\n"
                  "std::mutex B;\n");
  EXPECT_TRUE(File.isWaived(1, "R3"));
  EXPECT_TRUE(File.isWaived(2, "R3"));
  EXPECT_FALSE(File.isWaived(1, "R1"));
}

TEST(SourceFileTest, HeaderDetection) {
  EXPECT_TRUE(SourceFile("a/b.h", "").isHeader());
  EXPECT_TRUE(SourceFile("a/b.hpp", "").isHeader());
  EXPECT_FALSE(SourceFile("a/b.cpp", "").isHeader());
}

//===----------------------------------------------------------------------===//
// Nodiscard harvesting.
//===----------------------------------------------------------------------===//

TEST(LintRulesTest, HarvestFindsAnnotatedFunctions) {
  SourceFile File("x.h",
                  "[[nodiscard]] Status saveAll(int X);\n"
                  "[[nodiscard]] Result<int>\n"
                  "parseThing(std::string_view Text);\n"
                  "[[nodiscard]] class Status {\n"
                  "public:\n"
                  "  bool ok() const;\n"
                  "};\n");
  std::set<std::string, std::less<>> Names;
  harvestNodiscardFunctions(File, Names);
  EXPECT_TRUE(Names.count("saveAll"));
  EXPECT_TRUE(Names.count("parseThing")); // declaration spans two lines
  // The class-level [[nodiscard]] on Status must not harvest ok() or
  // anything else.
  EXPECT_FALSE(Names.count("ok"));
  EXPECT_FALSE(Names.count("Status"));
}

TEST(LintRulesTest, BuiltinListMatchesHeaders) {
  // Every name in the builtin fallible-function seed list must actually be
  // declared [[nodiscard]] somewhere under include/ — otherwise the list
  // has gone stale against an API rename.
  std::set<std::string, std::less<>> Harvested;
  namespace fs = std::filesystem;
  for (const auto &Entry :
       fs::recursive_directory_iterator(std::string(PARMONC_LINT_INCLUDE_DIR))) {
    if (!Entry.is_regular_file())
      continue;
    const std::string Ext = Entry.path().extension().string();
    if (Ext != ".h" && Ext != ".hpp")
      continue;
    Result<std::string> Contents =
        readFileToString(Entry.path().generic_string());
    ASSERT_TRUE(Contents) << Contents.status().message();
    SourceFile File(Entry.path().generic_string(), Contents.value());
    harvestNodiscardFunctions(File, Harvested);
  }
  for (const std::string &Name : builtinFallibleFunctions())
    EXPECT_TRUE(Harvested.count(Name))
        << "builtin fallible function '" << Name
        << "' is not declared [[nodiscard]] under include/";
}

//===----------------------------------------------------------------------===//
// Analyzer error handling.
//===----------------------------------------------------------------------===//

TEST(LintRulesTest, UnknownRuleIsAnError) {
  AnalyzerOptions Options;
  Options.Paths = {fixturePath("clean.cpp")};
  Options.RuleIds = {"R99"};
  Result<LintReport> Report = runAnalyzer(Options);
  ASSERT_FALSE(Report);
  EXPECT_NE(Report.status().message().find("unknown lint rule"),
            std::string::npos);
}

TEST(LintRulesTest, MissingPathIsAnError) {
  AnalyzerOptions Options;
  Options.Paths = {fixturePath("no_such_file.cpp")};
  Result<LintReport> Report = runAnalyzer(Options);
  EXPECT_FALSE(Report);
}

TEST(LintRulesTest, EmptyPathListIsAnError) {
  AnalyzerOptions Options;
  Result<LintReport> Report = runAnalyzer(Options);
  ASSERT_FALSE(Report);
  EXPECT_NE(Report.status().message().find("no paths"), std::string::npos);
}

} // namespace
} // namespace lint
} // namespace parmonc
