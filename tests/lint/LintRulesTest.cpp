//===- tests/lint/LintRulesTest.cpp - mclint engine tests -----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Exercises the mclint analyzer against the fixture tree under
// tests/lint/fixtures/ (each file deliberately violates exactly one rule,
// plus a clean pair) and the SourceFile lexer against synthetic buffers.
// The fixture tests assert exact (file, line, rule-id) triples so any
// change to a rule's matching behavior is visible in review.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Analyzer.h"
#include "parmonc/lint/Rules.h"
#include "parmonc/lint/SourceFile.h"
#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <tuple>
#include <vector>

namespace parmonc {
namespace lint {
namespace {

std::string fixturePath(const std::string &Name) {
  return std::string(PARMONC_LINT_FIXTURE_DIR) + "/" + Name;
}

/// Runs the analyzer over the given roots with the given rule subset and
/// asserts environmental success.
LintReport runOn(std::vector<std::string> Paths,
                 std::vector<std::string> RuleIds = {}) {
  AnalyzerOptions Options;
  Options.Paths = std::move(Paths);
  Options.RuleIds = std::move(RuleIds);
  Result<LintReport> Report = runAnalyzer(Options);
  EXPECT_TRUE(Report) << Report.status().message();
  return Report ? Report.value() : LintReport{};
}

/// The (line, rule-id) pairs of a report, in output order.
std::vector<std::pair<unsigned, std::string>>
lineRulePairs(const LintReport &Report) {
  std::vector<std::pair<unsigned, std::string>> Pairs;
  for (const Diagnostic &Diag : Report.Diagnostics)
    Pairs.emplace_back(Diag.Line, Diag.RuleId);
  return Pairs;
}

using Pairs = std::vector<std::pair<unsigned, std::string>>;

//===----------------------------------------------------------------------===//
// Fixture tests: one file per rule, exact (file, line, rule-id) output.
//===----------------------------------------------------------------------===//

TEST(LintRulesTest, R1FlagsDiscardedFallibleCalls) {
  const std::string Path = fixturePath("r1_discard.cpp");
  LintReport Report = runOn({Path}, {"R1"});
  ASSERT_EQ(Report.FileCount, 1u);
  EXPECT_EQ(lineRulePairs(Report), (Pairs{{9, "R1"}, {10, "R1"}}));
  for (const Diagnostic &Diag : Report.Diagnostics) {
    EXPECT_EQ(Diag.Path, Path);
    EXPECT_EQ(Diag.RuleName, "discarded-status");
  }
  // Line 9 discards a builtin fallible API; line 10 discards a function the
  // analyzer harvested from the fixture's own [[nodiscard]] declaration.
  ASSERT_EQ(Report.Diagnostics.size(), 2u);
  EXPECT_NE(Report.Diagnostics[0].Message.find("writeFileAtomic"),
            std::string::npos);
  EXPECT_NE(Report.Diagnostics[1].Message.find("mightFail"),
            std::string::npos);
}

TEST(LintRulesTest, R2FlagsNondeterminismSources) {
  const std::string Path = fixturePath("r2_nondet.cpp");
  LintReport Report = runOn({Path}, {"R2"});
  EXPECT_EQ(lineRulePairs(Report),
            (Pairs{{7, "R2"}, {8, "R2"}, {9, "R2"}}));
  ASSERT_EQ(Report.Diagnostics.size(), 3u);
  EXPECT_NE(Report.Diagnostics[0].Message.find("std::random_device"),
            std::string::npos);
  EXPECT_NE(Report.Diagnostics[1].Message.find("std::chrono::system_clock"),
            std::string::npos);
  EXPECT_NE(Report.Diagnostics[2].Message.find("'time()'"),
            std::string::npos);
}

TEST(LintRulesTest, R3FlagsRawConcurrencyAndHonorsWaiver) {
  const std::string Path = fixturePath("r3_thread.cpp");
  LintReport Report = runOn({Path}, {"R3"});
  // Line 2: banned include. Line 6: std::mutex member. Line 8 would be a
  // std::atomic finding but is waived by the stand-alone comment above it.
  EXPECT_EQ(lineRulePairs(Report), (Pairs{{2, "R3"}, {6, "R3"}}));
  for (const Diagnostic &Diag : Report.Diagnostics)
    EXPECT_EQ(Diag.RuleName, "raw-concurrency");
}

TEST(LintRulesTest, R4FlagsIncludeAndGuardViolations) {
  const std::string Path = fixturePath("r4_bad_guard.h");
  LintReport Report = runOn({Path}, {"R4"});
  // 1: non-PARMONC guard macro; 4: quoted non-project include; 5: <bits/>;
  // 6: project header via <>; 8: using-namespace in a header.
  EXPECT_EQ(lineRulePairs(Report),
            (Pairs{{1, "R4"}, {4, "R4"}, {5, "R4"}, {6, "R4"}, {8, "R4"}}));
  ASSERT_EQ(Report.Diagnostics.size(), 5u);
  EXPECT_NE(Report.Diagnostics[0].Message.find("WRONG_GUARD_H"),
            std::string::npos);
  EXPECT_NE(Report.Diagnostics[4].Message.find("using-namespace"),
            std::string::npos);
}

TEST(LintRulesTest, R5FlagsFloatInEstimatorPaths) {
  const std::string Path = fixturePath("stats/r5_float.cpp");
  LintReport Report = runOn({Path}, {"R5"});
  EXPECT_EQ(lineRulePairs(Report),
            (Pairs{{3, "R5"}, {4, "R5"}, {7, "R5"}}));
  ASSERT_EQ(Report.Diagnostics.size(), 3u);
  // Line 7 has no 'float' token — only the 1.0f literal.
  EXPECT_NE(Report.Diagnostics[2].Message.find("float literal"),
            std::string::npos);
}

TEST(LintRulesTest, R5IgnoresFloatOutsideEstimatorPaths) {
  // The same rule run against a non-stats/, non-core/ file stays silent.
  LintReport Report = runOn({fixturePath("r2_nondet.cpp")}, {"R5"});
  EXPECT_TRUE(Report.Diagnostics.empty());
}

TEST(LintRulesTest, CleanFixturesProduceNoFindings) {
  LintReport Report =
      runOn({fixturePath("clean.cpp"), fixturePath("clean.h")});
  EXPECT_EQ(Report.FileCount, 2u);
  EXPECT_TRUE(Report.Diagnostics.empty())
      << formatDiagnostic(Report.Diagnostics.front(), false);
}

TEST(LintRulesTest, WholeFixtureTreeTotals) {
  LintReport Report = runOn({std::string(PARMONC_LINT_FIXTURE_DIR)});
  EXPECT_EQ(Report.FileCount, 7u);
  EXPECT_EQ(Report.Diagnostics.size(), 15u);
  // Deterministic ordering: sorted by (path, line, rule id).
  EXPECT_TRUE(std::is_sorted(
      Report.Diagnostics.begin(), Report.Diagnostics.end(),
      [](const Diagnostic &A, const Diagnostic &B) {
        return std::tie(A.Path, A.Line, A.RuleId) <
               std::tie(B.Path, B.Line, B.RuleId);
      }));
}

TEST(LintRulesTest, RulesSelectableByName) {
  LintReport Report =
      runOn({fixturePath("r2_nondet.cpp")}, {"nondeterminism"});
  EXPECT_EQ(Report.Diagnostics.size(), 3u);
}

//===----------------------------------------------------------------------===//
// Diagnostic rendering.
//===----------------------------------------------------------------------===//

TEST(LintRulesTest, FormatDiagnosticIsByteStable) {
  Diagnostic Diag{"src/core/Runner.cpp", 42, "R3", "raw-concurrency",
                  "'std::mutex' outside mpsim/ and obs/"};
  EXPECT_EQ(formatDiagnostic(Diag, false),
            "src/core/Runner.cpp:42: warning: 'std::mutex' outside mpsim/ "
            "and obs/ [R3:raw-concurrency]");
  EXPECT_EQ(formatDiagnostic(Diag, true),
            "src/core/Runner.cpp:42: error: 'std::mutex' outside mpsim/ "
            "and obs/ [R3:raw-concurrency]");
}

//===----------------------------------------------------------------------===//
// SourceFile lexing: scrubbing and waivers on synthetic buffers.
//===----------------------------------------------------------------------===//

TEST(SourceFileTest, ScrubsCommentsAndLiterals) {
  SourceFile File("x.cpp",
                  "int A = 1; // std::thread in a comment\n"
                  "const char *S = \"rand() in a string\";\n"
                  "/* block\n"
                  "   std::mutex */ int B = 2;\n"
                  "char C = 'x';\n"
                  "long D = 1'000'000; // digit separator survives\n");
  ASSERT_EQ(File.lineCount(), 6u);
  EXPECT_EQ(File.scrubbedLine(0).find("std::thread"),
            std::string_view::npos);
  EXPECT_EQ(File.scrubbedLine(1).find("rand"), std::string_view::npos);
  EXPECT_NE(File.scrubbedLine(1).find("const char *S"),
            std::string_view::npos);
  EXPECT_EQ(File.scrubbedLine(3).find("std::mutex"),
            std::string_view::npos);
  EXPECT_NE(File.scrubbedLine(3).find("int B = 2;"),
            std::string_view::npos);
  EXPECT_EQ(File.scrubbedLine(4).find('x'), std::string_view::npos);
  EXPECT_NE(File.scrubbedLine(5).find("1'000'000"),
            std::string_view::npos);
  // Columns are preserved: scrubbed lines are exactly as long as raw ones.
  for (size_t I = 0; I < File.lineCount(); ++I)
    EXPECT_EQ(File.scrubbedLine(I).size(), File.rawLine(I).size());
}

TEST(SourceFileTest, ScrubsRawStringLiterals) {
  SourceFile File("x.cpp",
                  "auto S = R\"(std::thread\n"
                  "rand())\"; int After = 1;\n");
  EXPECT_EQ(File.scrubbedLine(0).find("std::thread"),
            std::string_view::npos);
  EXPECT_EQ(File.scrubbedLine(1).find("rand"), std::string_view::npos);
  EXPECT_NE(File.scrubbedLine(1).find("int After = 1;"),
            std::string_view::npos);
}

TEST(SourceFileTest, WaiverScopes) {
  SourceFile File("x.cpp",
                  "std::mutex A; // mclint: allow(R3): reviewed\n"
                  "// mclint: allow(R2,R3): next-line waiver\n"
                  "std::mutex B;\n"
                  "std::mutex C;\n");
  EXPECT_TRUE(File.isWaived(0, "R3"));
  EXPECT_FALSE(File.isWaived(0, "R2"));
  EXPECT_TRUE(File.isWaived(2, "R3")); // from the stand-alone comment
  EXPECT_TRUE(File.isWaived(2, "R2"));
  EXPECT_FALSE(File.isWaived(3, "R3"));
}

TEST(SourceFileTest, FileWaiverCoversEveryLine) {
  SourceFile File("x.cpp",
                  "// mclint: allow-file(R3): engine-internal atomics\n"
                  "std::mutex A;\n"
                  "std::mutex B;\n");
  EXPECT_TRUE(File.isWaived(1, "R3"));
  EXPECT_TRUE(File.isWaived(2, "R3"));
  EXPECT_FALSE(File.isWaived(1, "R1"));
}

TEST(SourceFileTest, HeaderDetection) {
  EXPECT_TRUE(SourceFile("a/b.h", "").isHeader());
  EXPECT_TRUE(SourceFile("a/b.hpp", "").isHeader());
  EXPECT_FALSE(SourceFile("a/b.cpp", "").isHeader());
}

//===----------------------------------------------------------------------===//
// Nodiscard harvesting.
//===----------------------------------------------------------------------===//

TEST(LintRulesTest, HarvestFindsAnnotatedFunctions) {
  SourceFile File("x.h",
                  "[[nodiscard]] Status saveAll(int X);\n"
                  "[[nodiscard]] Result<int>\n"
                  "parseThing(std::string_view Text);\n"
                  "[[nodiscard]] class Status {\n"
                  "public:\n"
                  "  bool ok() const;\n"
                  "};\n");
  std::set<std::string, std::less<>> Names;
  harvestNodiscardFunctions(File, Names);
  EXPECT_TRUE(Names.count("saveAll"));
  EXPECT_TRUE(Names.count("parseThing")); // declaration spans two lines
  // The class-level [[nodiscard]] on Status must not harvest ok() or
  // anything else.
  EXPECT_FALSE(Names.count("ok"));
  EXPECT_FALSE(Names.count("Status"));
}

TEST(LintRulesTest, BuiltinListMatchesHeaders) {
  // Every name in the builtin fallible-function seed list must actually be
  // declared [[nodiscard]] somewhere under include/ — otherwise the list
  // has gone stale against an API rename.
  std::set<std::string, std::less<>> Harvested;
  namespace fs = std::filesystem;
  for (const auto &Entry :
       fs::recursive_directory_iterator(std::string(PARMONC_LINT_INCLUDE_DIR))) {
    if (!Entry.is_regular_file())
      continue;
    const std::string Ext = Entry.path().extension().string();
    if (Ext != ".h" && Ext != ".hpp")
      continue;
    Result<std::string> Contents =
        readFileToString(Entry.path().generic_string());
    ASSERT_TRUE(Contents) << Contents.status().message();
    SourceFile File(Entry.path().generic_string(), Contents.value());
    harvestNodiscardFunctions(File, Harvested);
  }
  for (const std::string &Name : builtinFallibleFunctions())
    EXPECT_TRUE(Harvested.count(Name))
        << "builtin fallible function '" << Name
        << "' is not declared [[nodiscard]] under include/";
}

//===----------------------------------------------------------------------===//
// Analyzer error handling.
//===----------------------------------------------------------------------===//

TEST(LintRulesTest, UnknownRuleIsAnError) {
  AnalyzerOptions Options;
  Options.Paths = {fixturePath("clean.cpp")};
  Options.RuleIds = {"R9"};
  Result<LintReport> Report = runAnalyzer(Options);
  ASSERT_FALSE(Report);
  EXPECT_NE(Report.status().message().find("unknown lint rule"),
            std::string::npos);
}

TEST(LintRulesTest, MissingPathIsAnError) {
  AnalyzerOptions Options;
  Options.Paths = {fixturePath("no_such_file.cpp")};
  Result<LintReport> Report = runAnalyzer(Options);
  EXPECT_FALSE(Report);
}

TEST(LintRulesTest, EmptyPathListIsAnError) {
  AnalyzerOptions Options;
  Result<LintReport> Report = runAnalyzer(Options);
  ASSERT_FALSE(Report);
  EXPECT_NE(Report.status().message().find("no paths"), std::string::npos);
}

} // namespace
} // namespace lint
} // namespace parmonc
