//===- tests/lint/CachePerfTest.cpp - warm-cache speedup gate -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The point of the incremental cache is to make `mclint` cheap enough to
// run on every build: a warm run re-lexes nothing and re-runs no per-file
// rule. This test generates a synthetic tree large enough that lexing and
// rule matching dominate, then requires the warm run to be at least 5x
// faster than the cold one. Labelled `perf` (with the other
// timing-sensitive tests) so sanitizer presets can exclude it.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Analyzer.h"
#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>

namespace parmonc {
namespace lint {
namespace {

namespace fs = std::filesystem;

/// One synthetic TU: enough identifiers, literals and call sites that the
/// lexer and the token-walking rules do real work.
std::string syntheticSource(int FileIndex) {
  std::string Out = "namespace parmonc {\n\n";
  for (int F = 0; F < 24; ++F) {
    const std::string Id =
        "fixtureWork" + std::to_string(FileIndex) + "_" + std::to_string(F);
    Out += "int " + Id + "(int Seed) {\n";
    Out += "  int Total = Seed * " + std::to_string(F + 3) + ";\n";
    Out += "  const char *Note = \"synthetic body " + Id + "\";\n";
    Out += "  for (int I = 0; I < 64; ++I)\n";
    Out += "    Total += I ^ (Total >> 3); // mixing step\n";
    Out += "  (void)Note;\n";
    Out += "  return Total;\n";
    Out += "}\n\n";
  }
  Out += "} // namespace parmonc\n";
  return Out;
}

double runSeconds(const AnalyzerOptions &Options) {
  const auto Begin = std::chrono::steady_clock::now();
  Result<LintReport> Report = runAnalyzer(Options);
  const auto End = std::chrono::steady_clock::now();
  EXPECT_TRUE(Report) << Report.status().message();
  return std::chrono::duration<double>(End - Begin).count();
}

TEST(LintCachePerfTest, WarmRunIsAtLeastFiveTimesFaster) {
  const fs::path Root =
      fs::path(::testing::TempDir()) / "mclint_cache_perf";
  fs::remove_all(Root);
  fs::create_directories(Root);
  for (int I = 0; I < 48; ++I) {
    Status Written = writeFileAtomic(
        (Root / ("gen_" + std::to_string(I) + ".cpp")).generic_string(),
        syntheticSource(I));
    ASSERT_TRUE(Written) << Written.message();
  }

  AnalyzerOptions Options;
  Options.Paths = {Root.generic_string()};
  Options.CachePath = (Root / "cache.txt").generic_string();

  const double Cold = runSeconds(Options);
  // Best of three warm runs, to keep scheduler noise out of the ratio.
  double Warm = runSeconds(Options);
  for (int I = 0; I < 2; ++I) {
    const double Again = runSeconds(Options);
    Warm = Again < Warm ? Again : Warm;
  }

  // Sanity: the warm run actually hit the cache for every file.
  Result<LintReport> Check = runAnalyzer(Options);
  ASSERT_TRUE(Check) << Check.status().message();
  EXPECT_EQ(Check.value().FileCount, 48u);
  EXPECT_EQ(Check.value().CacheHits, 48u);
  EXPECT_EQ(Check.value().CacheMisses, 0u);

  EXPECT_GE(Cold, Warm * 5.0)
      << "cold=" << Cold << "s warm=" << Warm
      << "s — warm cache is not at least 5x faster";
}

TEST(LintCachePerfTest, ParallelWarmRunHitsCacheAndMatchesSerial) {
  // --jobs must not change what the cache sees: a parallel warm run still
  // hits for every file, and its findings are byte-identical to the
  // serial run's (the whole point of the deterministic fan-out).
  const fs::path Root =
      fs::path(::testing::TempDir()) / "mclint_cache_perf_jobs";
  fs::remove_all(Root);
  fs::create_directories(Root);
  for (int I = 0; I < 16; ++I) {
    Status Written = writeFileAtomic(
        (Root / ("gen_" + std::to_string(I) + ".cpp")).generic_string(),
        syntheticSource(I));
    ASSERT_TRUE(Written) << Written.message();
  }

  AnalyzerOptions Options;
  Options.Paths = {Root.generic_string()};
  Options.CachePath = (Root / "cache.txt").generic_string();
  Options.Jobs = 4;

  // Cold parallel run populates the cache.
  Result<LintReport> Cold = runAnalyzer(Options);
  ASSERT_TRUE(Cold) << Cold.status().message();
  EXPECT_EQ(Cold.value().FileCount, 16u);
  EXPECT_EQ(Cold.value().CacheMisses, 16u);

  // Warm parallel run hits for every file.
  Result<LintReport> Warm = runAnalyzer(Options);
  ASSERT_TRUE(Warm) << Warm.status().message();
  EXPECT_EQ(Warm.value().CacheHits, 16u);
  EXPECT_EQ(Warm.value().CacheMisses, 0u);

  // And agrees with a serial warm run, diagnostic by diagnostic.
  AnalyzerOptions Serial = Options;
  Serial.Jobs = 1;
  Result<LintReport> Ref = runAnalyzer(Serial);
  ASSERT_TRUE(Ref) << Ref.status().message();
  ASSERT_EQ(Warm.value().Diagnostics.size(),
            Ref.value().Diagnostics.size());
  for (size_t I = 0; I < Ref.value().Diagnostics.size(); ++I) {
    const Diagnostic &A = Warm.value().Diagnostics[I];
    const Diagnostic &B = Ref.value().Diagnostics[I];
    EXPECT_EQ(A.Path, B.Path);
    EXPECT_EQ(A.Line, B.Line);
    EXPECT_EQ(A.RuleId, B.RuleId);
    EXPECT_EQ(A.Message, B.Message);
  }
  EXPECT_EQ(Warm.value().DiagnosticLineText, Ref.value().DiagnosticLineText);
}

} // namespace
} // namespace lint
} // namespace parmonc
