//===- tests/lint/CacheTest.cpp - cache, baseline and autofix tests -------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// End-to-end tests of the analyzer's persistence features against small
// synthetic trees in a temp directory: the incremental cache (content and
// context invalidation, malformed-file recovery), the accepted-findings
// baseline (round trip, multiset consumption, strict parsing), and the
// `--fix` path (R4 guard/include rewrites, R10 waiver removal).
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Analyzer.h"
#include "parmonc/lint/Baseline.h"
#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

namespace parmonc {
namespace lint {
namespace {

namespace fs = std::filesystem;

/// A fresh scratch tree under the gtest temp dir; removed first so reruns
/// are deterministic.
std::string scratchTree(const std::string &Name) {
  const fs::path Root = fs::path(::testing::TempDir()) / ("mclint_" + Name);
  fs::remove_all(Root);
  fs::create_directories(Root);
  return Root.generic_string();
}

void writeAt(const std::string &Root, const std::string &Rel,
             const std::string &Contents) {
  const fs::path Full = fs::path(Root) / Rel;
  fs::create_directories(Full.parent_path());
  Status Written = writeFileAtomic(Full.generic_string(), Contents);
  ASSERT_TRUE(Written) << Written.message();
}

/// A TU with one R2 finding (the wall-clock read).
std::string stampedSource(const std::string &Suffix) {
  return "namespace parmonc {\n"
         "\n"
         "long fixtureStamp" +
         Suffix +
         "() {\n"
         "  return time(nullptr);\n"
         "}\n"
         "\n"
         "} // namespace parmonc\n";
}

/// A TU with no findings.
std::string quietSource(const std::string &Suffix) {
  return "namespace parmonc {\n"
         "\n"
         "int fixtureQuiet" +
         Suffix +
         "() {\n"
         "  return 7;\n"
         "}\n"
         "\n"
         "} // namespace parmonc\n";
}

LintReport runTree(const std::string &Root, const std::string &CachePath,
                   std::vector<std::string> RuleIds = {},
                   const std::string &BaselinePath = {},
                   bool ComputeFixes = false) {
  AnalyzerOptions Options;
  Options.Paths = {Root};
  Options.RuleIds = std::move(RuleIds);
  Options.CachePath = CachePath;
  Options.BaselinePath = BaselinePath;
  Options.ComputeFixes = ComputeFixes;
  Result<LintReport> Report = runAnalyzer(Options);
  EXPECT_TRUE(Report) << Report.status().message();
  return Report ? Report.value() : LintReport{};
}

std::vector<std::string> renderedDiags(const LintReport &Report) {
  std::vector<std::string> Out;
  for (const Diagnostic &Diag : Report.Diagnostics)
    Out.push_back(formatDiagnostic(Diag, false));
  return Out;
}

//===----------------------------------------------------------------------===//
// Incremental cache.
//===----------------------------------------------------------------------===//

TEST(LintCacheTest, WarmRunReusesEverythingAndAgreesWithCold) {
  const std::string Root = scratchTree("warm");
  const std::string CachePath = Root + "/cache.txt";
  writeAt(Root, "a.cpp", stampedSource("A"));
  writeAt(Root, "b.cpp", quietSource("B"));
  writeAt(Root, "c.cpp", quietSource("C"));

  LintReport Cold = runTree(Root, CachePath);
  EXPECT_EQ(Cold.FileCount, 3u);
  EXPECT_EQ(Cold.CacheHits, 0u);
  EXPECT_EQ(Cold.CacheMisses, 3u);
  ASSERT_EQ(Cold.Diagnostics.size(), 1u);
  EXPECT_EQ(Cold.Diagnostics[0].RuleId, "R2");

  LintReport Warm = runTree(Root, CachePath);
  EXPECT_EQ(Warm.CacheHits, 3u);
  EXPECT_EQ(Warm.CacheMisses, 0u);
  EXPECT_EQ(renderedDiags(Warm), renderedDiags(Cold));
}

TEST(LintCacheTest, ContentChangeInvalidatesOnlyThatFile) {
  const std::string Root = scratchTree("content");
  const std::string CachePath = Root + "/cache.txt";
  writeAt(Root, "a.cpp", stampedSource("A"));
  writeAt(Root, "b.cpp", quietSource("B"));
  writeAt(Root, "c.cpp", quietSource("C"));
  (void)runTree(Root, CachePath);

  // Same defined-function name (so the cross-file context is unchanged),
  // new body with a finding: only b.cpp's cache entry goes stale.
  writeAt(Root, "b.cpp",
          "namespace parmonc {\n"
          "\n"
          "int fixtureQuietB() {\n"
          "  return (int)time(nullptr);\n"
          "}\n"
          "\n"
          "} // namespace parmonc\n");
  LintReport Report = runTree(Root, CachePath);
  EXPECT_EQ(Report.CacheHits, 2u);
  EXPECT_EQ(Report.CacheMisses, 1u);
  ASSERT_EQ(Report.Diagnostics.size(), 2u);
}

TEST(LintCacheTest, CrossFileContextChangeInvalidatesCachedDiags) {
  const std::string Root = scratchTree("context");
  const std::string CachePath = Root + "/cache.txt";
  writeAt(Root, "a.cpp", stampedSource("A"));
  writeAt(Root, "b.cpp", quietSource("B"));
  (void)runTree(Root, CachePath);

  // A new [[nodiscard]] declaration anywhere changes the cross-file
  // context, so every cached diagnostic list is stale even though the
  // other files' contents (and their cached facts) are unchanged.
  writeAt(Root, "api.h",
          "#ifndef PARMONC_API_H\n"
          "#define PARMONC_API_H\n"
          "namespace parmonc {\n"
          "[[nodiscard]] int fixtureNewApi();\n"
          "}\n"
          "#endif // PARMONC_API_H\n");
  LintReport Report = runTree(Root, CachePath);
  EXPECT_EQ(Report.CacheHits, 0u);
  EXPECT_EQ(Report.CacheMisses, 3u);
}

TEST(LintCacheTest, CalleeSummaryChangeInvalidatesOnlyDependents) {
  // The cache-v5 dependency fingerprint: a semantic change to a leaf
  // function re-analyzes exactly the files whose summaries can see it
  // through the call graph — the unrelated file stays cached.
  const std::string Root = scratchTree("deps");
  const std::string CachePath = Root + "/cache.txt";
  writeAt(Root, "leaf.cpp",
          "namespace parmonc {\n"
          "double fixtureLeafKnob() {\n"
          "  return 1.0;\n"
          "}\n"
          "} // namespace parmonc\n");
  writeAt(Root, "mid.cpp",
          "namespace parmonc {\n"
          "double fixtureMidRelay() {\n"
          "  return fixtureLeafKnob();\n"
          "}\n"
          "} // namespace parmonc\n");
  writeAt(Root, "user.cpp",
          "namespace parmonc {\n"
          "void fixtureUserFold(EstimatorMatrix &Est) {\n"
          "  const double V = fixtureMidRelay();\n"
          "  Est.accumulate(&V);\n"
          "}\n"
          "} // namespace parmonc\n");
  writeAt(Root, "other.cpp", quietSource("Other"));

  LintReport Cold = runTree(Root, CachePath);
  EXPECT_EQ(Cold.FileCount, 4u);
  EXPECT_EQ(Cold.CacheMisses, 4u);
  EXPECT_TRUE(Cold.Diagnostics.empty());

  // The leaf turns into an environment read: its summary fingerprint
  // changes, so mid.cpp and user.cpp (transitive dependents) go stale
  // alongside the edited file itself — but other.cpp does not.
  writeAt(Root, "leaf.cpp",
          "namespace parmonc {\n"
          "double fixtureLeafKnob() {\n"
          "  return getenv(\"PARMONC_KNOB\") ? 2.0 : 1.0;\n"
          "}\n"
          "} // namespace parmonc\n");
  LintReport Warm = runTree(Root, CachePath);
  EXPECT_EQ(Warm.CacheHits, 1u);
  EXPECT_EQ(Warm.CacheMisses, 3u);
  // The re-analysis surfaces the new cross-file R14 finding, identical to
  // a from-scratch run.
  LintReport Fresh = runTree(Root, Root + "/fresh-cache.txt");
  EXPECT_EQ(renderedDiags(Warm), renderedDiags(Fresh));
  ASSERT_EQ(Warm.Diagnostics.size(), 1u);
  EXPECT_EQ(Warm.Diagnostics[0].RuleId, "R14");
  EXPECT_NE(Warm.Diagnostics[0].Path.find("user.cpp"), std::string::npos);
}

TEST(LintCacheTest, MalformedCacheIsDiscardedAndRebuilt) {
  const std::string Root = scratchTree("malformed");
  const std::string CachePath = Root + "/cache.txt";
  writeAt(Root, "a.cpp", stampedSource("A"));
  (void)runTree(Root, CachePath);

  Status Corrupted = writeFileAtomic(CachePath, "mclint-cache 3\ngarbage\n");
  ASSERT_TRUE(Corrupted) << Corrupted.message();
  LintReport Rebuilt = runTree(Root, CachePath);
  EXPECT_EQ(Rebuilt.CacheHits, 0u);
  EXPECT_EQ(Rebuilt.CacheMisses, 1u);
  ASSERT_EQ(Rebuilt.Diagnostics.size(), 1u);

  LintReport Warm = runTree(Root, CachePath);
  EXPECT_EQ(Warm.CacheHits, 1u);
}

//===----------------------------------------------------------------------===//
// Baselines.
//===----------------------------------------------------------------------===//

TEST(LintBaselineTest, RoundTripSuppressesOldDebtOnly) {
  const std::string Root = scratchTree("baseline");
  const std::string BaselinePath = Root + "/accepted.baseline";
  writeAt(Root, "a.cpp", stampedSource("A"));
  writeAt(Root, "b.cpp", stampedSource("B"));

  LintReport Before = runTree(Root, "");
  ASSERT_EQ(Before.Diagnostics.size(), 2u);
  const std::string Serialized = formatBaseline(
      Before.Diagnostics, [&](const Diagnostic &Diag) -> std::string_view {
        for (size_t I = 0; I < Before.Diagnostics.size(); ++I)
          if (&Before.Diagnostics[I] == &Diag)
            return Before.DiagnosticLineText[I];
        return {};
      });
  Status Written = writeFileAtomic(BaselinePath, Serialized);
  ASSERT_TRUE(Written) << Written.message();

  LintReport Suppressed = runTree(Root, "", {}, BaselinePath);
  EXPECT_TRUE(Suppressed.Diagnostics.empty());
  EXPECT_EQ(Suppressed.BaselineSuppressed, 2u);

  // New debt is not covered by the old record.
  writeAt(Root, "c.cpp", stampedSource("C"));
  LintReport WithNew = runTree(Root, "", {}, BaselinePath);
  ASSERT_EQ(WithNew.Diagnostics.size(), 1u);
  EXPECT_NE(WithNew.Diagnostics[0].Path.find("c.cpp"), std::string::npos);
  EXPECT_EQ(WithNew.BaselineSuppressed, 2u);
}

TEST(LintBaselineTest, EntriesAreConsumedMultisetStyle) {
  // Two byte-identical findings, one baseline entry: exactly one of the
  // two is suppressed and the other survives.
  std::vector<Diagnostic> Diags = {
      {"a.cpp", 3, "R2", "nondeterminism", "call to 'time()'", {}},
      {"a.cpp", 9, "R2", "nondeterminism", "call to 'time()'", {}}};
  const auto LineTextOf = [](const Diagnostic &) -> std::string_view {
    return "  return time(nullptr);";
  };
  std::vector<Diagnostic> One = {Diags[0]};
  const std::string Serialized = formatBaseline(One, LineTextOf);
  Result<std::vector<BaselineEntry>> Entries = [&] {
    const std::string Path =
        scratchTree("baseline_multiset") + "/one.baseline";
    Status Written = writeFileAtomic(Path, Serialized);
    EXPECT_TRUE(Written) << Written.message();
    return loadBaseline(Path);
  }();
  ASSERT_TRUE(Entries) << Entries.status().message();
  EXPECT_EQ(applyBaseline(Entries.value(), LineTextOf, Diags), 1u);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Line, 9u);
}

TEST(LintBaselineTest, MalformedBaselineIsAnError) {
  const std::string Root = scratchTree("baseline_bad");
  const std::string BaselinePath = Root + "/bad.baseline";
  Status Written =
      writeFileAtomic(BaselinePath, "# comment is fine\nR2 nothex a.cpp\n");
  ASSERT_TRUE(Written) << Written.message();
  Result<std::vector<BaselineEntry>> Entries = loadBaseline(BaselinePath);
  ASSERT_FALSE(Entries);
  EXPECT_NE(Entries.status().message().find("malformed baseline entry"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Autofixes.
//===----------------------------------------------------------------------===//

TEST(LintFixTest, RewritesGuardAndIncludeStyle) {
  const std::string Root = scratchTree("fix_r4");
  const std::string Rel = "include/parmonc/foo/Bar.h";
  writeAt(Root, Rel,
          "#ifndef WRONG_H\n"
          "#define WRONG_H\n"
          "\n"
          "#include <parmonc/support/Status.h>\n"
          "\n"
          "struct FixtureBar {\n"
          "  int Value;\n"
          "};\n"
          "\n"
          "#endif // WRONG_H\n");

  LintReport Report = runTree(Root, "", {"R4"}, "", /*ComputeFixes=*/true);
  ASSERT_EQ(Report.Diagnostics.size(), 2u);
  Result<size_t> Fixed = applyFixes(Report.Diagnostics);
  ASSERT_TRUE(Fixed) << Fixed.status().message();
  EXPECT_EQ(Fixed.value(), 1u);

  Result<std::string> After =
      readFileToString((fs::path(Root) / Rel).generic_string());
  ASSERT_TRUE(After) << After.status().message();
  EXPECT_NE(After.value().find("#ifndef PARMONC_FOO_BAR_H\n"),
            std::string::npos);
  EXPECT_NE(After.value().find("#define PARMONC_FOO_BAR_H\n"),
            std::string::npos);
  EXPECT_NE(After.value().find("#endif // PARMONC_FOO_BAR_H"),
            std::string::npos);
  EXPECT_NE(After.value().find("#include \"parmonc/support/Status.h\"\n"),
            std::string::npos);

  LintReport Clean = runTree(Root, "", {"R4"});
  EXPECT_TRUE(Clean.Diagnostics.empty());
}

TEST(LintFixTest, RemovesStaleWaivers) {
  const std::string Root = scratchTree("fix_r10");
  writeAt(Root, "a.cpp",
          "namespace parmonc {\n"
          "\n"
          "long fixtureValue() {\n"
          "  // mclint: allow(R2): stale standalone\n"
          "  return 7;\n"
          "}\n"
          "\n"
          "long fixtureOther() { return 8; } // mclint: allow(R2): stale\n"
          "\n"
          "} // namespace parmonc\n");

  LintReport Report = runTree(Root, "", {}, "", /*ComputeFixes=*/true);
  ASSERT_EQ(Report.Diagnostics.size(), 2u);
  EXPECT_EQ(Report.Diagnostics[0].RuleId, "R10");
  Result<size_t> Fixed = applyFixes(Report.Diagnostics);
  ASSERT_TRUE(Fixed) << Fixed.status().message();
  EXPECT_EQ(Fixed.value(), 1u);

  Result<std::string> After =
      readFileToString((fs::path(Root) / "a.cpp").generic_string());
  ASSERT_TRUE(After) << After.status().message();
  EXPECT_EQ(After.value().find("mclint:"), std::string::npos);
  EXPECT_NE(After.value().find("long fixtureOther() { return 8; }\n"),
            std::string::npos);
  EXPECT_NE(After.value().find("  return 7;\n"), std::string::npos);

  LintReport Clean = runTree(Root, "");
  EXPECT_TRUE(Clean.Diagnostics.empty());
}

TEST(LintFixTest, FixesAreByteIdenticalAtAnyJobCount) {
  // Two copies of the same fixable tree: several headers with wrong guards
  // and angle includes, plus TUs with stale waivers, so the fix set spans
  // many files and many edits per file.
  const auto Populate = [](const std::string &Root) {
    for (char Letter : {'a', 'b', 'c', 'd'}) {
      const std::string Name(1, Letter);
      const std::string Upper(1, char(Letter - 'a' + 'A'));
      writeAt(Root, "include/parmonc/fix/" + Upper + ".h",
              "#ifndef WRONG_" + Upper +
                  "_H\n"
                  "#define WRONG_" +
                  Upper +
                  "_H\n"
                  "\n"
                  "#include <parmonc/support/Status.h>\n"
                  "#include <parmonc/support/Text.h>\n"
                  "\n"
                  "struct Fixture" +
                  Upper +
                  " {\n"
                  "  int Value;\n"
                  "};\n"
                  "\n"
                  "#endif // WRONG_" +
                  Upper + "_H\n");
      writeAt(Root, "src/" + Name + ".cpp",
              "namespace parmonc {\n"
              "\n"
              "long fixtureWaived" +
                  Upper +
                  "() {\n"
                  "  // mclint: allow(R2): stale standalone\n"
                  "  return 7;\n"
                  "}\n"
                  "\n"
                  "long fixtureTail" +
                  Upper + "() { return 8; } // mclint: allow(R2): stale\n"
                          "\n"
                          "} // namespace parmonc\n");
    }
  };

  const std::string Serial = scratchTree("fix_jobs1");
  const std::string Parallel = scratchTree("fix_jobs8");
  Populate(Serial);
  Populate(Parallel);

  const auto FixTree = [](const std::string &Root, unsigned Jobs) {
    AnalyzerOptions Options;
    Options.Paths = {Root};
    Options.ComputeFixes = true;
    Options.Jobs = Jobs;
    Result<LintReport> Report = runAnalyzer(Options);
    EXPECT_TRUE(Report) << Report.status().message();
    std::vector<std::string> Rendered;
    if (Report) {
      for (const Diagnostic &Diag : Report.value().Diagnostics) {
        std::string Line = formatDiagnostic(Diag, false);
        // Strip the tree root so the two transcripts are comparable.
        const size_t At = Line.find(Root);
        if (At != std::string::npos)
          Line.erase(At, Root.size());
        Rendered.push_back(Line);
      }
      Result<size_t> Fixed = applyFixes(Report.value().Diagnostics);
      EXPECT_TRUE(Fixed) << Fixed.status().message();
      EXPECT_EQ(Fixed.value(), 8u);
    }
    return Rendered;
  };

  const std::vector<std::string> SerialDiags = FixTree(Serial, 1);
  const std::vector<std::string> ParallelDiags = FixTree(Parallel, 8);
  ASSERT_FALSE(SerialDiags.empty());
  EXPECT_EQ(SerialDiags, ParallelDiags);

  // Every rewritten file must be byte-for-byte identical across job counts.
  size_t Compared = 0;
  for (const auto &Entry : fs::recursive_directory_iterator(Serial)) {
    if (!Entry.is_regular_file())
      continue;
    const std::string Rel =
        fs::relative(Entry.path(), Serial).generic_string();
    Result<std::string> Ours = readFileToString(Entry.path().generic_string());
    Result<std::string> Theirs =
        readFileToString((fs::path(Parallel) / Rel).generic_string());
    ASSERT_TRUE(Ours) << Ours.status().message();
    ASSERT_TRUE(Theirs) << Rel << ": " << Theirs.status().message();
    EXPECT_EQ(Ours.value(), Theirs.value()) << Rel;
    ++Compared;
  }
  EXPECT_EQ(Compared, 8u);

  // And the serial tree must actually be clean after the rewrite.
  LintReport Clean = runTree(Serial, "");
  EXPECT_TRUE(Clean.Diagnostics.empty());
}

} // namespace
} // namespace lint
} // namespace parmonc
