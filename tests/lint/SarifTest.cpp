//===- tests/lint/SarifTest.cpp - SARIF emitter tests ---------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Validates the hand-rolled SARIF 2.1.0 emitter: RFC 8259 string escaping,
// JSON well-formedness (a small recursive-descent parser — no JSON library
// is available, and the emitter must not depend on one), and the
// structural shape the 2.1.0 schema requires of a code-scanning upload:
// $schema/version, tool.driver with rule metadata, one result per finding
// with location and stable fingerprint.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Analyzer.h"
#include "parmonc/lint/Rules.h"
#include "parmonc/lint/Sarif.h"

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <vector>

namespace parmonc {
namespace lint {
namespace {

//===----------------------------------------------------------------------===//
// A minimal JSON well-formedness checker (values are not materialized).
//===----------------------------------------------------------------------===//

class JsonScanner {
public:
  explicit JsonScanner(std::string_view Text) : Text(Text) {}

  /// True when the whole input is exactly one valid JSON value.
  bool valid() {
    skipSpace();
    if (!value())
      return false;
    skipSpace();
    return Pos == Text.size();
  }

private:
  bool value() {
    if (Pos >= Text.size())
      return false;
    switch (Text[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object() {
    ++Pos; // '{'
    skipSpace();
    if (peek() == '}')
      return ++Pos, true;
    while (true) {
      skipSpace();
      if (!string())
        return false;
      skipSpace();
      if (peek() != ':')
        return false;
      ++Pos;
      skipSpace();
      if (!value())
        return false;
      skipSpace();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}')
        return ++Pos, true;
      return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipSpace();
    if (peek() == ']')
      return ++Pos, true;
    while (true) {
      skipSpace();
      if (!value())
        return false;
      skipSpace();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']')
        return ++Pos, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < Text.size()) {
      const char C = Text[Pos];
      if (C == '"')
        return ++Pos, true;
      if (static_cast<unsigned char>(C) < 0x20)
        return false; // raw control character — must be escaped
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return false;
        const char E = Text[Pos];
        if (E == 'u') {
          for (int I = 0; I < 4; ++I)
            if (++Pos >= Text.size() || !std::isxdigit(static_cast<unsigned char>(Text[Pos])))
              return false;
        } else if (std::string_view("\"\\/bfnrt").find(E) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++Pos;
    }
    return false;
  }

  bool number() {
    const size_t Begin = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            std::string_view(".eE+-").find(Text[Pos]) !=
                std::string_view::npos))
      ++Pos;
    return Pos > Begin;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  std::string_view Text;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Fixtures: a two-finding report rendered through the real rule set.
//===----------------------------------------------------------------------===//

std::vector<Diagnostic> sampleDiags() {
  return {{"src/core/Runner.cpp", 42, "R3", "raw-concurrency",
           "'std::mutex' outside mpsim/ and obs/", {}},
          {"include/parmonc/rng/Lcg128.h", 7, "R6", "stream-discipline",
           "'Lcg128' default-seeds a raw stream \"quoted\"", {}}};
}

std::string renderSample(bool AsError) {
  const std::vector<std::unique_ptr<Rule>> Rules = makeAllRules();
  std::vector<const Rule *> RulePtrs;
  for (const auto &R : Rules)
    RulePtrs.push_back(R.get());
  return formatSarif(sampleDiags(), RulePtrs, AsError,
                     [](const Diagnostic &) -> std::string_view {
                       return "  std::mutex M;";
                     });
}

TEST(SarifTest, EscapesJsonStrings) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(jsonEscape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(SarifTest, DocumentIsWellFormedJson) {
  const std::string Doc = renderSample(false);
  EXPECT_TRUE(JsonScanner(Doc).valid()) << Doc;
}

TEST(SarifTest, MatchesSchemaShape) {
  // The structural requirements of the sarif-schema-2.1.0 contract for a
  // code-scanning upload, asserted as mandatory substrings of a document
  // we already know is well-formed JSON.
  const std::string Doc = renderSample(false);
  for (const char *Required :
       {"\"$schema\": "
        "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
        "Schemata/sarif-schema-2.1.0.json\"",
        "\"version\": \"2.1.0\"", "\"runs\": [", "\"tool\": {",
        "\"driver\": {", "\"name\": \"mclint\"", "\"rules\": [",
        "\"results\": [", "\"ruleId\": \"R3\"", "\"ruleId\": \"R6\"",
        "\"level\": \"warning\"", "\"message\": {",
        "\"locations\": [", "\"physicalLocation\": {",
        "\"artifactLocation\": {", "\"uri\": \"src/core/Runner.cpp\"",
        "\"region\": { \"startLine\": 42 }",
        "\"partialFingerprints\": {", "\"mclintLine/v1\": \"R3:"})
    EXPECT_NE(Doc.find(Required), std::string::npos)
        << "missing: " << Required;
}

TEST(SarifTest, RuleMetadataCarriesHelpUris) {
  const std::string Doc = renderSample(false);
  // Every rule in the driver metadata links into docs/LINT_RULES.md at
  // its own anchor.
  for (const char *Anchor :
       {"docs/LINT_RULES.md#r1-discarded-status",
        "docs/LINT_RULES.md#r6-stream-discipline",
        "docs/LINT_RULES.md#r10-stale-waiver",
        "docs/LINT_RULES.md#r11-must-check",
        "docs/LINT_RULES.md#r12-stream-lifecycle",
        "docs/LINT_RULES.md#r13-wire-protocol",
        "docs/LINT_RULES.md#r14-determinism-taint",
        "docs/LINT_RULES.md#r15-lock-discipline",
        "docs/LINT_RULES.md#r16-deep-must-check"})
    EXPECT_NE(Doc.find(Anchor), std::string::npos) << Anchor;
}

TEST(SarifTest, WerrorMapsToErrorLevel) {
  const std::string Doc = renderSample(true);
  EXPECT_NE(Doc.find("\"level\": \"error\""), std::string::npos);
  EXPECT_EQ(Doc.find("\"level\": \"warning\""), std::string::npos);
}

TEST(SarifTest, CodeFlowRendersEveryStepInOrder) {
  // A synthetic flow-sensitive finding: the region gains a startColumn and
  // the witness path renders as one codeFlow/threadFlow with a location
  // and message per step.
  Diagnostic Diag;
  Diag.Path = "src/core/Runner.cpp";
  Diag.Line = 12;
  Diag.Column = 3;
  Diag.RuleId = "R11";
  Diag.RuleName = "must-check";
  Diag.Message = "fallible value 'Saved' is not checked on every path";
  Diag.Flow = {{10, 3, "'Saved' declared here"},
               {11, 7, "the else path skips the check"},
               {13, 1, "scope exits with 'Saved' unchecked"}};
  const std::vector<std::unique_ptr<Rule>> Rules = makeAllRules();
  std::vector<const Rule *> RulePtrs;
  for (const auto &R : Rules)
    RulePtrs.push_back(R.get());
  const std::string Doc =
      formatSarif({Diag}, RulePtrs, false,
                  [](const Diagnostic &) -> std::string_view {
                    return "  Status Saved = save();";
                  });
  EXPECT_TRUE(JsonScanner(Doc).valid()) << Doc;
  EXPECT_NE(Doc.find("\"region\": { \"startLine\": 12, \"startColumn\": 3 }"),
            std::string::npos);
  EXPECT_NE(Doc.find("\"codeFlows\": ["), std::string::npos);
  EXPECT_NE(Doc.find("\"threadFlows\": ["), std::string::npos);
  // Steps appear in witness order.
  const size_t Step1 = Doc.find("'Saved' declared here");
  const size_t Step2 = Doc.find("the else path skips the check");
  const size_t Step3 = Doc.find("scope exits with 'Saved' unchecked");
  ASSERT_NE(Step1, std::string::npos);
  ASSERT_NE(Step2, std::string::npos);
  ASSERT_NE(Step3, std::string::npos);
  EXPECT_LT(Step1, Step2);
  EXPECT_LT(Step2, Step3);
  EXPECT_NE(Doc.find("\"startLine\": 11, \"startColumn\": 7"),
            std::string::npos);
}

TEST(SarifTest, TokenLevelRegionIsUnchangedWithoutColumn) {
  // Token-level findings (Column 0) must keep the exact pre-flow region
  // spelling — downstream fingerprint consumers diff on it.
  const std::string Doc = renderSample(false);
  EXPECT_NE(Doc.find("\"region\": { \"startLine\": 42 }"),
            std::string::npos);
  EXPECT_EQ(Doc.find("codeFlows"), std::string::npos);
  EXPECT_EQ(Doc.find("startColumn"), std::string::npos);
}

TEST(SarifTest, AnalyzerDataflowFindingHasMultiStepCodeFlow) {
  // End to end: run the real analyzer over the R11 fixture and render its
  // findings — at least one must carry a multi-step witness path that
  // survives into the SARIF codeFlow.
  AnalyzerOptions Options;
  Options.Paths = {std::string(PARMONC_LINT_FIXTURE_DIR) + "/r11_flow.cpp"};
  Result<LintReport> Report = runAnalyzer(Options);
  ASSERT_TRUE(Report) << Report.status().message();
  const LintReport &R = Report.value();
  ASSERT_FALSE(R.Diagnostics.empty());
  size_t FlowSteps = 0;
  for (const Diagnostic &Diag : R.Diagnostics)
    if (Diag.RuleId == "R11")
      FlowSteps = std::max(FlowSteps, Diag.Flow.size());
  EXPECT_GE(FlowSteps, 2u);

  const std::vector<std::unique_ptr<Rule>> Rules = makeAllRules();
  std::vector<const Rule *> RulePtrs;
  for (const auto &R2 : Rules)
    RulePtrs.push_back(R2.get());
  const auto LineTextOf =
      [&](const Diagnostic &Diag) -> std::string_view {
    for (size_t I = 0; I < R.Diagnostics.size(); ++I)
      if (&R.Diagnostics[I] == &Diag)
        return R.DiagnosticLineText[I];
    return {};
  };
  const std::string Doc =
      formatSarif(R.Diagnostics, RulePtrs, true, LineTextOf);
  EXPECT_TRUE(JsonScanner(Doc).valid()) << Doc;
  EXPECT_NE(Doc.find("\"codeFlows\": ["), std::string::npos);
  EXPECT_NE(Doc.find("\"threadFlows\": ["), std::string::npos);
  EXPECT_NE(Doc.find("docs/LINT_RULES.md#r11-must-check"),
            std::string::npos);
}

TEST(SarifTest, InterproceduralCodeFlowSpansFiles) {
  // End to end over the R16 chain fixtures: the one finding's witness
  // path crosses three translation units, and each SARIF code-flow step
  // must carry its own artifact uri — the caller, the forwarding relay
  // and the declaring file all appear inside the codeFlows block.
  const std::string Base = std::string(PARMONC_LINT_FIXTURE_DIR) + "/inter";
  AnalyzerOptions Options;
  Options.Paths = {Base + "/r16_deep.cpp", Base + "/r16_relay.cpp",
                   Base + "/r16_caller.cpp"};
  Options.RuleIds = {"R16"};
  Result<LintReport> Report = runAnalyzer(Options);
  ASSERT_TRUE(Report) << Report.status().message();
  ASSERT_EQ(Report.value().Diagnostics.size(), 1u);

  const std::vector<std::unique_ptr<Rule>> Rules = makeAllRules();
  std::vector<const Rule *> RulePtrs;
  for (const auto &R : Rules)
    RulePtrs.push_back(R.get());
  const std::string Doc =
      formatSarif(Report.value().Diagnostics, RulePtrs, false,
                  [](const Diagnostic &) -> std::string_view {
                    return "  fixtureRelaySave(Path);";
                  });
  EXPECT_TRUE(JsonScanner(Doc).valid()) << Doc;
  const size_t Flows = Doc.find("\"codeFlows\": [");
  ASSERT_NE(Flows, std::string::npos);
  for (const char *Uri :
       {"inter/r16_caller.cpp", "inter/r16_relay.cpp",
        "inter/r16_deep.cpp"})
    EXPECT_NE(Doc.find(Uri, Flows), std::string::npos)
        << "step uri missing from code flow: " << Uri;
  // Step order mirrors the chain: discard, forward, declaration.
  const size_t Discard = Doc.find("is discarded here", Flows);
  const size_t Forward = Doc.find("forwards the result of", Flows);
  const size_t Declared = Doc.find("declared fallible", Flows);
  ASSERT_NE(Discard, std::string::npos);
  ASSERT_NE(Forward, std::string::npos);
  ASSERT_NE(Declared, std::string::npos);
  EXPECT_LT(Discard, Forward);
  EXPECT_LT(Forward, Declared);
}

TEST(SarifTest, EmptyReportIsStillAValidRun) {
  const std::vector<std::unique_ptr<Rule>> Rules = makeAllRules();
  std::vector<const Rule *> RulePtrs;
  for (const auto &R : Rules)
    RulePtrs.push_back(R.get());
  const std::string Doc =
      formatSarif({}, RulePtrs, false,
                  [](const Diagnostic &) -> std::string_view { return ""; });
  EXPECT_TRUE(JsonScanner(Doc).valid()) << Doc;
  EXPECT_NE(Doc.find("\"results\": [\n      ]"), std::string::npos);
}

} // namespace
} // namespace lint
} // namespace parmonc
