//===- tests/stats/EstimatorMatrixTest.cpp - Estimator algebra tests ------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/stats/EstimatorMatrix.h"

#include "parmonc/stats/RunningStat.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace parmonc {
namespace {

TEST(EstimatorMatrix, StartsEmpty) {
  EstimatorMatrix Matrix(3, 2);
  EXPECT_EQ(Matrix.rows(), 3u);
  EXPECT_EQ(Matrix.columns(), 2u);
  EXPECT_EQ(Matrix.entryCount(), 6u);
  EXPECT_EQ(Matrix.sampleVolume(), 0);
}

TEST(EstimatorMatrix, SingleRealizationStatistics) {
  EstimatorMatrix Matrix(1, 1);
  Matrix.accumulate(std::vector<double>{4.0});
  EntryStatistics Stats = Matrix.entryStatistics(0, 0);
  EXPECT_DOUBLE_EQ(Stats.Mean, 4.0);
  EXPECT_DOUBLE_EQ(Stats.Variance, 0.0);
  EXPECT_DOUBLE_EQ(Stats.AbsoluteError, 0.0);
  EXPECT_DOUBLE_EQ(Stats.RelativeError, 0.0);
}

TEST(EstimatorMatrix, TwoPointMeanAndVariance) {
  EstimatorMatrix Matrix(1, 1);
  Matrix.accumulate(std::vector<double>{1.0});
  Matrix.accumulate(std::vector<double>{3.0});
  EntryStatistics Stats = Matrix.entryStatistics(0, 0);
  EXPECT_DOUBLE_EQ(Stats.Mean, 2.0);
  // Biased variance of {1,3}: ((1-2)^2 + (3-2)^2)/2 = 1.
  EXPECT_DOUBLE_EQ(Stats.Variance, 1.0);
  // ε = 3 * sqrt(1/2).
  EXPECT_DOUBLE_EQ(Stats.AbsoluteError, 3.0 * std::sqrt(0.5));
  // ρ = ε/2 * 100%.
  EXPECT_DOUBLE_EQ(Stats.RelativeError, Stats.AbsoluteError / 2.0 * 100.0);
}

TEST(EstimatorMatrix, EntriesAreIndependent) {
  EstimatorMatrix Matrix(2, 2);
  Matrix.accumulate(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  Matrix.accumulate(std::vector<double>{1.0, 4.0, 9.0, 16.0});
  EXPECT_DOUBLE_EQ(Matrix.entryStatistics(0, 0).Mean, 1.0);
  EXPECT_DOUBLE_EQ(Matrix.entryStatistics(0, 1).Mean, 3.0);
  EXPECT_DOUBLE_EQ(Matrix.entryStatistics(1, 0).Mean, 6.0);
  EXPECT_DOUBLE_EQ(Matrix.entryStatistics(1, 1).Mean, 10.0);
}

TEST(EstimatorMatrix, ZeroMeanEntryHasInfiniteRelativeError) {
  EstimatorMatrix Matrix(1, 1);
  Matrix.accumulate(std::vector<double>{1.0});
  Matrix.accumulate(std::vector<double>{-1.0});
  EntryStatistics Stats = Matrix.entryStatistics(0, 0);
  EXPECT_DOUBLE_EQ(Stats.Mean, 0.0);
  EXPECT_TRUE(std::isinf(Stats.RelativeError));
}

TEST(EstimatorMatrix, MergeEqualsPooledAccumulation) {
  // The eq. (5) guarantee: merging per-processor subtotals gives the
  // statistics of the pooled sample (equal up to floating-point summation
  // order, hence the 1e-12-relative tolerances).
  std::mt19937_64 Rng(11);
  std::normal_distribution<double> Normal(2.0, 3.0);

  EstimatorMatrix Pooled(2, 3);
  std::vector<EstimatorMatrix> Parts;
  for (int Part = 0; Part < 4; ++Part)
    Parts.emplace_back(2, 3);

  for (int Realization = 0; Realization < 1000; ++Realization) {
    std::vector<double> Values(6);
    for (double &Value : Values)
      Value = Normal(Rng);
    Pooled.accumulate(Values);
    Parts[size_t(Realization) % 4].accumulate(Values);
  }

  EstimatorMatrix Merged(2, 3);
  for (const EstimatorMatrix &Part : Parts)
    ASSERT_TRUE(Merged.merge(Part).isOk());

  EXPECT_EQ(Merged.sampleVolume(), Pooled.sampleVolume());
  for (size_t Row = 0; Row < 2; ++Row) {
    for (size_t Column = 0; Column < 3; ++Column) {
      EntryStatistics A = Merged.entryStatistics(Row, Column);
      EntryStatistics B = Pooled.entryStatistics(Row, Column);
      EXPECT_NEAR(A.Mean, B.Mean, 1e-12 * std::fabs(B.Mean));
      EXPECT_NEAR(A.Variance, B.Variance, 1e-12 * B.Variance);
      EXPECT_NEAR(A.AbsoluteError, B.AbsoluteError,
                  1e-12 * B.AbsoluteError);
    }
  }
}

TEST(EstimatorMatrix, MergeRejectsShapeMismatch) {
  EstimatorMatrix A(2, 2), B(2, 3);
  EXPECT_FALSE(A.merge(B).isOk());
  EXPECT_EQ(A.sampleVolume(), 0);
}

TEST(EstimatorMatrix, MergeOfEmptyIsNoOp) {
  EstimatorMatrix A(1, 1), Empty(1, 1);
  A.accumulate(std::vector<double>{5.0});
  ASSERT_TRUE(A.merge(Empty).isOk());
  EXPECT_EQ(A.sampleVolume(), 1);
  EXPECT_DOUBLE_EQ(A.entryStatistics(0, 0).Mean, 5.0);
}

TEST(EstimatorMatrix, MergeIsCommutative) {
  EstimatorMatrix A(1, 2), B(1, 2);
  A.accumulate(std::vector<double>{1.0, 2.0});
  B.accumulate(std::vector<double>{3.0, 4.0});
  B.accumulate(std::vector<double>{5.0, 6.0});

  EstimatorMatrix AB(1, 2), BA(1, 2);
  ASSERT_TRUE(AB.merge(A).isOk());
  ASSERT_TRUE(AB.merge(B).isOk());
  ASSERT_TRUE(BA.merge(B).isOk());
  ASSERT_TRUE(BA.merge(A).isOk());
  for (size_t Column = 0; Column < 2; ++Column) {
    EXPECT_DOUBLE_EQ(AB.entryStatistics(0, Column).Mean,
                     BA.entryStatistics(0, Column).Mean);
    EXPECT_DOUBLE_EQ(AB.entryStatistics(0, Column).Variance,
                     BA.entryStatistics(0, Column).Variance);
  }
}

TEST(EstimatorMatrix, AgreesWithWelfordAccumulator) {
  // Cross-check the sum-based formulas against a numerically independent
  // implementation.
  std::mt19937_64 Rng(3);
  std::uniform_real_distribution<double> Uniform(-10.0, 10.0);
  EstimatorMatrix Matrix(1, 1);
  RunningStat Reference;
  for (int Step = 0; Step < 50000; ++Step) {
    double Value = Uniform(Rng);
    Matrix.accumulate(&Value);
    Reference.add(Value);
  }
  EntryStatistics Stats = Matrix.entryStatistics(0, 0);
  EXPECT_NEAR(Stats.Mean, Reference.mean(), 1e-10);
  EXPECT_NEAR(Stats.Variance, Reference.variance(), 1e-7);
}

TEST(EstimatorMatrix, RawSumRoundTrip) {
  EstimatorMatrix Matrix(2, 2);
  Matrix.accumulate(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  Matrix.accumulate(std::vector<double>{2.0, 3.0, 4.0, 5.0});

  Result<EstimatorMatrix> Rebuilt = EstimatorMatrix::fromRawSums(
      2, 2, Matrix.valueSums(), Matrix.squareSums(), Matrix.sampleVolume());
  ASSERT_TRUE(Rebuilt.isOk());
  for (size_t Row = 0; Row < 2; ++Row) {
    for (size_t Column = 0; Column < 2; ++Column) {
      EXPECT_DOUBLE_EQ(Rebuilt.value().entryStatistics(Row, Column).Mean,
                       Matrix.entryStatistics(Row, Column).Mean);
    }
  }
}

TEST(EstimatorMatrix, FromRawSumsValidatesInput) {
  EXPECT_FALSE(EstimatorMatrix::fromRawSums(2, 2, {1.0}, {1.0}, 1).isOk());
  EXPECT_FALSE(EstimatorMatrix::fromRawSums(1, 1, {1.0}, {1.0}, -1).isOk());
  EXPECT_FALSE(EstimatorMatrix::fromRawSums(1, 1, {1.0}, {-1.0}, 1).isOk());
  EXPECT_FALSE(EstimatorMatrix::fromRawSums(0, 1, {}, {}, 0).isOk());
  EXPECT_TRUE(EstimatorMatrix::fromRawSums(1, 1, {1.0}, {1.0}, 1).isOk());
}

TEST(EstimatorMatrix, ErrorBoundsTrackWorstEntry) {
  EstimatorMatrix Matrix(1, 2);
  // Entry 0: constant 10 (no error). Entry 1: alternating 0/2 (variance 1).
  Matrix.accumulate(std::vector<double>{10.0, 0.0});
  Matrix.accumulate(std::vector<double>{10.0, 2.0});
  ErrorBounds Bounds = Matrix.errorBounds();
  EntryStatistics Noisy = Matrix.entryStatistics(0, 1);
  EXPECT_DOUBLE_EQ(Bounds.MaxAbsoluteError, Noisy.AbsoluteError);
  EXPECT_DOUBLE_EQ(Bounds.MaxRelativeError, Noisy.RelativeError);
  EXPECT_DOUBLE_EQ(Bounds.MaxVariance, Noisy.Variance);
}

TEST(EstimatorMatrix, ErrorBoundsIgnoreInfiniteRelativeErrors) {
  EstimatorMatrix Matrix(1, 2);
  Matrix.accumulate(std::vector<double>{1.0, 1.0});
  Matrix.accumulate(std::vector<double>{-1.0, 3.0});
  // Entry 0 has zero mean -> infinite ρ; the bound must come from entry 1.
  ErrorBounds Bounds = Matrix.errorBounds();
  EXPECT_TRUE(std::isfinite(Bounds.MaxRelativeError));
  EXPECT_DOUBLE_EQ(Bounds.MaxRelativeError,
                   Matrix.entryStatistics(0, 1).RelativeError);
}

TEST(EstimatorMatrix, ResetForgetsEverything) {
  EstimatorMatrix Matrix(1, 1);
  Matrix.accumulate(std::vector<double>{1.0});
  Matrix.reset();
  EXPECT_EQ(Matrix.sampleVolume(), 0);
  Matrix.accumulate(std::vector<double>{7.0});
  EXPECT_DOUBLE_EQ(Matrix.entryStatistics(0, 0).Mean, 7.0);
}

TEST(EstimatorMatrix, CustomErrorMultiplier) {
  EstimatorMatrix Matrix(1, 1);
  Matrix.accumulate(std::vector<double>{0.0});
  Matrix.accumulate(std::vector<double>{2.0});
  // With γ = 2 the error is two thirds of the default γ = 3 value.
  EntryStatistics Wide = Matrix.entryStatistics(0, 0, 3.0);
  EntryStatistics Narrow = Matrix.entryStatistics(0, 0, 2.0);
  EXPECT_DOUBLE_EQ(Narrow.AbsoluteError, Wide.AbsoluteError * 2.0 / 3.0);
}

TEST(EstimatorMatrix, ComputeMatricesFillsRequestedOutputs) {
  EstimatorMatrix Matrix(2, 2);
  Matrix.accumulate(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  Matrix.accumulate(std::vector<double>{3.0, 2.0, 1.0, 4.0});
  std::vector<double> Means, Variances;
  Matrix.computeMatrices(&Means, nullptr, nullptr, &Variances);
  ASSERT_EQ(Means.size(), 4u);
  ASSERT_EQ(Variances.size(), 4u);
  EXPECT_DOUBLE_EQ(Means[0], 2.0);
  EXPECT_DOUBLE_EQ(Means[3], 4.0);
  EXPECT_DOUBLE_EQ(Variances[0], 1.0);
  EXPECT_DOUBLE_EQ(Variances[1], 0.0);
}

// Statistical property: for an i.i.d. sample from U(0,1), the λ=0.997
// confidence interval ζ̄ ± ε must contain the true mean 0.5 in roughly 99.7%
// of repetitions. With 400 repetitions, P(≥6 misses) is < 1%; we allow 8.
TEST(EstimatorMatrix, ConfidenceIntervalCoversTrueMean) {
  std::mt19937_64 Rng(12345);
  std::uniform_real_distribution<double> Uniform(0.0, 1.0);
  int Misses = 0;
  for (int Repetition = 0; Repetition < 400; ++Repetition) {
    EstimatorMatrix Matrix(1, 1);
    for (int Draw = 0; Draw < 2000; ++Draw) {
      double Value = Uniform(Rng);
      Matrix.accumulate(&Value);
    }
    EntryStatistics Stats = Matrix.entryStatistics(0, 0);
    if (std::fabs(Stats.Mean - 0.5) > Stats.AbsoluteError)
      ++Misses;
  }
  EXPECT_LE(Misses, 8);
}

// Parameterized sweep: the absolute error must shrink like L^-1/2 — §2.1.
class ErrorScalingSweep : public ::testing::TestWithParam<int> {};

TEST_P(ErrorScalingSweep, AbsoluteErrorScalesAsInverseSquareRoot) {
  const int Volume = GetParam();
  std::mt19937_64 Rng(99);
  std::uniform_real_distribution<double> Uniform(0.0, 1.0);
  EstimatorMatrix Matrix(1, 1);
  for (int Draw = 0; Draw < Volume; ++Draw) {
    double Value = Uniform(Rng);
    Matrix.accumulate(&Value);
  }
  EntryStatistics Stats = Matrix.entryStatistics(0, 0);
  // σ of U(0,1) is sqrt(1/12) ≈ 0.2887, so ε ≈ 3*0.2887/sqrt(L).
  double Expected = 3.0 * std::sqrt(1.0 / 12.0) / std::sqrt(double(Volume));
  EXPECT_NEAR(Stats.AbsoluteError, Expected, 0.15 * Expected);
}

INSTANTIATE_TEST_SUITE_P(Volumes, ErrorScalingSweep,
                         ::testing::Values(1000, 4000, 16000, 64000));

} // namespace
} // namespace parmonc
