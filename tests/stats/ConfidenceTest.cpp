//===- tests/stats/ConfidenceTest.cpp - Normal quantile tests -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/stats/Confidence.h"

#include <gtest/gtest.h>

#include <cmath>

namespace parmonc {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normalCdf(-1.0), 1.0 - 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normalCdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(normalCdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalCdf, IsSymmetric) {
  for (double X : {0.1, 0.7, 1.3, 2.9, 4.5})
    EXPECT_NEAR(normalCdf(X) + normalCdf(-X), 1.0, 1e-14);
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normalQuantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normalQuantile(0.9986501019683699), 3.0, 1e-9);
  EXPECT_NEAR(normalQuantile(0.8413447460685429), 1.0, 1e-9);
}

TEST(NormalQuantile, InvertsTheCdf) {
  for (double Probability = 0.001; Probability < 0.9995;
       Probability += 0.0013)
    EXPECT_NEAR(normalCdf(normalQuantile(Probability)), Probability, 1e-11)
        << "p = " << Probability;
}

TEST(NormalQuantile, TailsAreFiniteAndOrdered) {
  double FarLeft = normalQuantile(1e-12);
  double FarRight = normalQuantile(1.0 - 1e-12);
  EXPECT_TRUE(std::isfinite(FarLeft));
  EXPECT_TRUE(std::isfinite(FarRight));
  EXPECT_LT(FarLeft, -6.0);
  EXPECT_GT(FarRight, 6.0);
}

TEST(NormalQuantile, IsMonotone) {
  double Previous = normalQuantile(0.01);
  for (double Probability = 0.02; Probability < 1.0;
       Probability += 0.01) {
    double Current = normalQuantile(Probability);
    EXPECT_GT(Current, Previous);
    Previous = Current;
  }
}

TEST(ConfidenceMultiplier, PaperLevelGivesRoughlyThree) {
  // §2.1: γ(0.997) — the paper rounds to 3; the exact value is ≈ 2.9677.
  double Gamma = confidenceMultiplier(0.997);
  EXPECT_NEAR(Gamma, 2.9677379253417833, 1e-8);
  EXPECT_NEAR(Gamma, 3.0, 0.05);
}

TEST(ConfidenceMultiplier, CommonLevels) {
  EXPECT_NEAR(confidenceMultiplier(0.95), 1.959963984540054, 1e-9);
  EXPECT_NEAR(confidenceMultiplier(0.99), 2.5758293035489004, 1e-9);
  EXPECT_NEAR(confidenceMultiplier(0.9973002039367398), 3.0, 1e-9);
}

TEST(ConfidenceInterval, GeometryHelpers) {
  ConfidenceInterval Interval{10.0, 2.0};
  EXPECT_DOUBLE_EQ(Interval.lower(), 8.0);
  EXPECT_DOUBLE_EQ(Interval.upper(), 12.0);
  EXPECT_TRUE(Interval.contains(10.0));
  EXPECT_TRUE(Interval.contains(8.0));
  EXPECT_TRUE(Interval.contains(12.0));
  EXPECT_FALSE(Interval.contains(7.999));
  EXPECT_FALSE(Interval.contains(12.001));
}

TEST(MakeMeanInterval, MatchesFormula) {
  // Half-width = γ(λ) σ / sqrt(L).
  ConfidenceInterval Interval = makeMeanInterval(5.0, 2.0, 400.0, 0.95);
  EXPECT_DOUBLE_EQ(Interval.Center, 5.0);
  EXPECT_NEAR(Interval.HalfWidth, 1.959963984540054 * 2.0 / 20.0, 1e-12);
}

TEST(MakeMeanInterval, DefaultLevelIsPaperLevel) {
  ConfidenceInterval Interval = makeMeanInterval(0.0, 1.0, 1.0);
  EXPECT_NEAR(Interval.HalfWidth, 2.9677379253417833, 1e-8);
}

TEST(MakeMeanInterval, ZeroVarianceGivesPointInterval) {
  ConfidenceInterval Interval = makeMeanInterval(3.0, 0.0, 100.0);
  EXPECT_DOUBLE_EQ(Interval.HalfWidth, 0.0);
  EXPECT_TRUE(Interval.contains(3.0));
  EXPECT_FALSE(Interval.contains(3.0000001));
}

} // namespace
} // namespace parmonc
