//===- tests/stats/HistogramEstimatorTest.cpp - Histogram tests -----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/stats/HistogramEstimator.h"

#include "parmonc/rng/Lcg128.h"
#include "parmonc/sde/Distributions.h"
#include "parmonc/stats/Confidence.h"

#include <gtest/gtest.h>

// mclint: allow-file(R6): these tests exercise the raw generator
// deliberately, validating the stream algebra itself.

#include <cmath>

namespace parmonc {
namespace {

TEST(HistogramEstimator, StartsEmpty) {
  HistogramEstimator Histogram(0.0, 1.0, 10);
  EXPECT_EQ(Histogram.totalCount(), 0);
  EXPECT_EQ(Histogram.binCount(), 10u);
  EXPECT_DOUBLE_EQ(Histogram.binWidth(), 0.1);
}

TEST(HistogramEstimator, BinsByValue) {
  HistogramEstimator Histogram(0.0, 1.0, 4);
  Histogram.add(0.1);  // bin 0
  Histogram.add(0.3);  // bin 1
  Histogram.add(0.30); // bin 1
  Histogram.add(0.99); // bin 3
  EXPECT_EQ(Histogram.countOf(0), 1);
  EXPECT_EQ(Histogram.countOf(1), 2);
  EXPECT_EQ(Histogram.countOf(2), 0);
  EXPECT_EQ(Histogram.countOf(3), 1);
  EXPECT_EQ(Histogram.totalCount(), 4);
}

TEST(HistogramEstimator, EdgeValuesLandCorrectly) {
  HistogramEstimator Histogram(0.0, 1.0, 4);
  Histogram.add(0.0);   // left edge: bin 0
  Histogram.add(0.25);  // boundary: bin 1 (half-open bins)
  Histogram.add(1.0);   // right edge: overflow
  Histogram.add(-1e-12); // underflow
  EXPECT_EQ(Histogram.countOf(0), 1);
  EXPECT_EQ(Histogram.countOf(1), 1);
  EXPECT_EQ(Histogram.overflowCount(), 1);
  EXPECT_EQ(Histogram.underflowCount(), 1);
  EXPECT_EQ(Histogram.totalCount(), 4);
}

TEST(HistogramEstimator, MassAndDensityNormalize) {
  HistogramEstimator Histogram(0.0, 2.0, 8);
  Lcg128 Source;
  for (int Draw = 0; Draw < 100000; ++Draw)
    Histogram.add(2.0 * Source.nextUniform());
  double TotalMass = 0.0;
  for (size_t Index = 0; Index < Histogram.binCount(); ++Index) {
    TotalMass += Histogram.massOf(Index);
    // Uniform density on [0,2] is 0.5.
    EXPECT_NEAR(Histogram.densityOf(Index), 0.5, 0.02);
  }
  EXPECT_NEAR(TotalMass, 1.0, 1e-12);
}

TEST(HistogramEstimator, EstimatesNormalDensity) {
  HistogramEstimator Histogram(-4.0, 4.0, 64);
  Lcg128 Source;
  const int Draws = 400000;
  for (int Draw = 0; Draw < Draws; ++Draw)
    Histogram.add(sampleStandardNormal(Source));
  // Compare bin masses against the exact normal CDF differences.
  int Misses = 0;
  for (size_t Index = 0; Index < Histogram.binCount(); ++Index) {
    const double LeftEdge = Histogram.binLeftEdge(Index);
    const double Exact =
        normalCdf(LeftEdge + Histogram.binWidth()) - normalCdf(LeftEdge);
    const double Error = Histogram.massErrorOf(Index);
    if (std::fabs(Histogram.massOf(Index) - Exact) > Error + 1e-9)
      ++Misses;
  }
  // 64 bins at 3 sigma: expect ~0.3% misses; allow a couple.
  EXPECT_LE(Misses, 2);
  // Tail mass beyond +-4 is ~6e-5: side bins nearly empty.
  EXPECT_LT(Histogram.underflowCount() + Histogram.overflowCount(),
            Draws / 2000);
}

TEST(HistogramEstimator, MergeIsExact) {
  HistogramEstimator A(0.0, 1.0, 16), B(0.0, 1.0, 16), Pooled(0.0, 1.0, 16);
  Lcg128 Source;
  for (int Draw = 0; Draw < 10000; ++Draw) {
    const double Value = Source.nextUniform();
    (Draw % 2 ? A : B).add(Value);
    Pooled.add(Value);
  }
  ASSERT_TRUE(A.merge(B).isOk());
  EXPECT_EQ(A.totalCount(), Pooled.totalCount());
  for (size_t Index = 0; Index < 16; ++Index)
    EXPECT_EQ(A.countOf(Index), Pooled.countOf(Index));
}

TEST(HistogramEstimator, MergeRejectsGeometryMismatch) {
  HistogramEstimator A(0.0, 1.0, 16);
  HistogramEstimator DifferentBins(0.0, 1.0, 8);
  HistogramEstimator DifferentRange(0.0, 2.0, 16);
  EXPECT_FALSE(A.merge(DifferentBins).isOk());
  EXPECT_FALSE(A.merge(DifferentRange).isOk());
}

TEST(HistogramEstimator, FileRoundTrip) {
  HistogramEstimator Histogram(-1.5, 2.5, 12);
  Lcg128 Source;
  for (int Draw = 0; Draw < 5000; ++Draw)
    Histogram.add(sampleNormal(Source, 0.5, 1.0));
  Result<HistogramEstimator> Parsed =
      HistogramEstimator::fromFileContents(Histogram.toFileContents());
  ASSERT_TRUE(Parsed.isOk()) << Parsed.status().toString();
  EXPECT_EQ(Parsed.value().totalCount(), Histogram.totalCount());
  EXPECT_EQ(Parsed.value().underflowCount(), Histogram.underflowCount());
  EXPECT_EQ(Parsed.value().overflowCount(), Histogram.overflowCount());
  for (size_t Index = 0; Index < 12; ++Index)
    EXPECT_EQ(Parsed.value().countOf(Index), Histogram.countOf(Index));
}

TEST(HistogramEstimator, FileParseRejectsCorruption) {
  EXPECT_FALSE(HistogramEstimator::fromFileContents("").isOk());
  EXPECT_FALSE(
      HistogramEstimator::fromFileContents("range 0 1\nbins 2\n").isOk());
  EXPECT_FALSE(HistogramEstimator::fromFileContents(
                   "range 1 0\nbins 1\ncounts 1\n")
                   .isOk());
  EXPECT_FALSE(HistogramEstimator::fromFileContents(
                   "range 0 1\nbins 3\ncounts 1 2\n")
                   .isOk());
  EXPECT_FALSE(HistogramEstimator::fromFileContents(
                   "range 0 1\nbins 1\ncounts -4\n")
                   .isOk());
}

TEST(HistogramEstimator, CdfIsMonotoneAndMatchesUniform) {
  HistogramEstimator Histogram(0.0, 1.0, 100);
  Lcg128 Source;
  for (int Draw = 0; Draw < 200000; ++Draw)
    Histogram.add(Source.nextUniform());
  double Previous = 0.0;
  for (double Value = 0.05; Value <= 1.0; Value += 0.05) {
    const double Cdf = Histogram.cdfAt(Value);
    EXPECT_GE(Cdf, Previous);
    // Tolerance: one bin of granularity (0.01) + sampling noise.
    EXPECT_NEAR(Cdf, Value, 0.015);
    Previous = Cdf;
  }
  EXPECT_DOUBLE_EQ(Histogram.cdfAt(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(Histogram.cdfAt(2.0), 1.0);
}

TEST(HistogramEstimator, ResetForgets) {
  HistogramEstimator Histogram(0.0, 1.0, 4);
  Histogram.add(0.5);
  Histogram.add(5.0);
  Histogram.reset();
  EXPECT_EQ(Histogram.totalCount(), 0);
  EXPECT_EQ(Histogram.overflowCount(), 0);
}

} // namespace
} // namespace parmonc
