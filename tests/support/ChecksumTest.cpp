//===- tests/support/ChecksumTest.cpp - File seal integrity layer ---------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/support/Checksum.h"

#include <gtest/gtest.h>

namespace parmonc {
namespace {

TEST(Crc32, KnownVectors) {
  // The standard CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) check
  // values.
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
            0x414fa339u);
}

TEST(FileSeal, RoundTripRecoversBodyExactly) {
  const std::string Body = "volume 42\nsums 1.25e+00 -3.00e-02\n";
  const std::string Sealed = sealFileContents(Body);
  ASSERT_TRUE(hasFileSeal(Sealed));
  // The seal line starts with '#', so comment-skipping parsers of the
  // legacy formats read sealed files unchanged.
  EXPECT_EQ(Sealed[0], '#');
  Result<std::string> Unsealed = unsealFileContents("file.dat", Sealed);
  ASSERT_TRUE(Unsealed.isOk()) << Unsealed.status().toString();
  EXPECT_EQ(Unsealed.value(), Body);
}

TEST(FileSeal, EmptyBodySealsAndUnseals) {
  const std::string Sealed = sealFileContents("");
  Result<std::string> Unsealed = unsealFileContents("empty.dat", Sealed);
  ASSERT_TRUE(Unsealed.isOk());
  EXPECT_EQ(Unsealed.value(), "");
}

TEST(FileSeal, UnsealedFileIsReported) {
  Result<std::string> Unsealed =
      unsealFileContents("plain.dat", "no header here\n");
  ASSERT_FALSE(Unsealed.isOk());
  EXPECT_EQ(Unsealed.status().code(), StatusCode::ParseError);
  EXPECT_NE(Unsealed.status().message().find("plain.dat"),
            std::string::npos);
}

TEST(FileSeal, TruncationIsDetectedAsShortRead) {
  const std::string Sealed = sealFileContents("0123456789abcdef\n");
  const std::string Truncated = Sealed.substr(0, Sealed.size() - 5);
  Result<std::string> Unsealed =
      unsealFileContents("/data/checkpoint.dat", Truncated);
  ASSERT_FALSE(Unsealed.isOk());
  EXPECT_EQ(Unsealed.status().code(), StatusCode::IoError);
  // The message must carry enough to debug a torn write: the path and
  // both byte counts.
  EXPECT_NE(Unsealed.status().message().find("/data/checkpoint.dat"),
            std::string::npos);
  EXPECT_NE(Unsealed.status().message().find("short read"),
            std::string::npos);
}

TEST(FileSeal, SingleBitFlipIsDetected) {
  std::string Sealed = sealFileContents("a perfectly good snapshot body\n");
  Sealed[Sealed.size() - 3] ^= 0x01;
  Result<std::string> Unsealed = unsealFileContents("bitrot.dat", Sealed);
  ASSERT_FALSE(Unsealed.isOk());
  EXPECT_EQ(Unsealed.status().code(), StatusCode::IoError);
  EXPECT_NE(Unsealed.status().message().find("CRC32"), std::string::npos);
}

TEST(FileSeal, ExtraAppendedBytesAreDetected) {
  const std::string Sealed = sealFileContents("body\n") + "stray tail\n";
  EXPECT_FALSE(unsealFileContents("tail.dat", Sealed).isOk());
}

} // namespace
} // namespace parmonc
