//===- tests/support/TextTest.cpp - Support helper tests ------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/support/Text.h"

#include "parmonc/support/Clock.h"
#include "parmonc/support/Status.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace parmonc {
namespace {

TEST(Status, DefaultIsOk) {
  Status Ok;
  EXPECT_TRUE(Ok.isOk());
  EXPECT_TRUE(bool(Ok));
  EXPECT_EQ(Ok.toString(), "ok");
}

TEST(Status, FailureCarriesCodeAndMessage) {
  Status Failure = ioError("disk on fire");
  EXPECT_FALSE(Failure.isOk());
  EXPECT_EQ(Failure.code(), StatusCode::IoError);
  EXPECT_EQ(Failure.message(), "disk on fire");
  EXPECT_EQ(Failure.toString(), "io-error: disk on fire");
}

TEST(Status, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(invalidArgument("x").code(), StatusCode::InvalidArgument);
  EXPECT_EQ(notFound("x").code(), StatusCode::NotFound);
  EXPECT_EQ(parseError("x").code(), StatusCode::ParseError);
  EXPECT_EQ(failedPrecondition("x").code(), StatusCode::FailedPrecondition);
  EXPECT_EQ(outOfRange("x").code(), StatusCode::OutOfRange);
  EXPECT_EQ(internalError("x").code(), StatusCode::Internal);
}

TEST(Result, HoldsValueOnSuccess) {
  Result<int> Five(5);
  ASSERT_TRUE(Five.isOk());
  EXPECT_EQ(Five.value(), 5);
  EXPECT_EQ(Five.valueOr(9), 5);
}

TEST(Result, HoldsStatusOnFailure) {
  Result<int> Failed(notFound("missing"));
  EXPECT_FALSE(Failed.isOk());
  EXPECT_EQ(Failed.status().code(), StatusCode::NotFound);
  EXPECT_EQ(Failed.valueOr(9), 9);
}

TEST(FormatScientific, RoundTripsDoubles) {
  for (double Value : {0.0, 1.0, -1.0, 3.14159e-20, 7.7, 1e300, -2.5e-300}) {
    Result<double> Parsed = parseDouble(formatScientific(Value));
    ASSERT_TRUE(Parsed.isOk());
    EXPECT_DOUBLE_EQ(Parsed.value(), Value);
  }
}

TEST(FormatScientific, HonorsPrecision) {
  EXPECT_EQ(formatScientific(1.0 / 3.0, 3), "3.333e-01");
}

TEST(FormatFixed, Basic) {
  EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(formatFixed(-1.005, 0), "-1");
}

TEST(ParseDouble, AcceptsUsualForms) {
  EXPECT_DOUBLE_EQ(parseDouble("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(parseDouble("  -2e3 ").value(), -2000.0);
  EXPECT_DOUBLE_EQ(parseDouble("0").value(), 0.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(parseDouble("").isOk());
  EXPECT_FALSE(parseDouble("abc").isOk());
  EXPECT_FALSE(parseDouble("1.5x").isOk());
  EXPECT_FALSE(parseDouble("1e999").isOk());
}

TEST(ParseInt64, AcceptsSignedIntegers) {
  EXPECT_EQ(parseInt64("42").value(), 42);
  EXPECT_EQ(parseInt64("-7").value(), -7);
  EXPECT_EQ(parseInt64(" 0 ").value(), 0);
}

TEST(ParseInt64, RejectsBadInput) {
  EXPECT_FALSE(parseInt64("").isOk());
  EXPECT_FALSE(parseInt64("12.5").isOk());
  EXPECT_FALSE(parseInt64("99999999999999999999").isOk());
}

TEST(ParseUInt64, RejectsNegative) {
  EXPECT_FALSE(parseUInt64("-1").isOk());
  EXPECT_EQ(parseUInt64("18446744073709551615").value(), ~0ull);
  EXPECT_FALSE(parseUInt64("18446744073709551616").isOk());
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\n x \r"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("nospace"), "nospace");
}

TEST(SplitWhitespace, SplitsOnRuns) {
  auto Fields = splitWhitespace("  a  bb\tccc \n d ");
  ASSERT_EQ(Fields.size(), 4u);
  EXPECT_EQ(Fields[0], "a");
  EXPECT_EQ(Fields[1], "bb");
  EXPECT_EQ(Fields[2], "ccc");
  EXPECT_EQ(Fields[3], "d");
}

TEST(SplitWhitespace, EmptyInputGivesNoFields) {
  EXPECT_TRUE(splitWhitespace("").empty());
  EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(SplitChar, KeepsEmptyFields) {
  auto Fields = splitChar("a,,b,", ',');
  ASSERT_EQ(Fields.size(), 4u);
  EXPECT_EQ(Fields[0], "a");
  EXPECT_EQ(Fields[1], "");
  EXPECT_EQ(Fields[2], "b");
  EXPECT_EQ(Fields[3], "");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(startsWith("abcdef", "abc"));
  EXPECT_TRUE(startsWith("abc", ""));
  EXPECT_FALSE(startsWith("ab", "abc"));
  EXPECT_FALSE(startsWith("xbc", "abc"));
}

TEST(FileHelpers, WriteReadRoundTrip) {
  std::string Path =
      (std::filesystem::temp_directory_path() / "parmonc_text_test.txt")
          .string();
  ASSERT_TRUE(writeFileAtomic(Path, "line1\nline2\n").isOk());
  EXPECT_TRUE(fileExists(Path));
  Result<std::string> Contents = readFileToString(Path);
  ASSERT_TRUE(Contents.isOk());
  EXPECT_EQ(Contents.value(), "line1\nline2\n");
  std::filesystem::remove(Path);
}

TEST(FileHelpers, AtomicWriteLeavesNoTempFile) {
  std::string Path =
      (std::filesystem::temp_directory_path() / "parmonc_atomic_test.txt")
          .string();
  ASSERT_TRUE(writeFileAtomic(Path, "data").isOk());
  EXPECT_FALSE(fileExists(Path + ".tmp"));
  std::filesystem::remove(Path);
}

TEST(FileHelpers, AtomicWriteReplacesExistingContents) {
  std::string Path =
      (std::filesystem::temp_directory_path() / "parmonc_replace_test.txt")
          .string();
  ASSERT_TRUE(writeFileAtomic(Path, "old").isOk());
  ASSERT_TRUE(writeFileAtomic(Path, "new").isOk());
  EXPECT_EQ(readFileToString(Path).value(), "new");
  std::filesystem::remove(Path);
}

TEST(FileHelpers, ReadMissingFileFails) {
  Result<std::string> Missing = readFileToString("/nonexistent/file.txt");
  EXPECT_FALSE(Missing.isOk());
  EXPECT_EQ(Missing.status().code(), StatusCode::IoError);
}

TEST(FileHelpers, CreateDirectoriesIsIdempotent) {
  std::string Path = (std::filesystem::temp_directory_path() /
                      "parmonc_dirs_test/a/b/c")
                         .string();
  EXPECT_TRUE(createDirectories(Path).isOk());
  EXPECT_TRUE(createDirectories(Path).isOk());
  std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                              "parmonc_dirs_test");
}

TEST(ManualClock, AdvancesExplicitly) {
  ManualClock Clock;
  EXPECT_EQ(Clock.nowNanos(), 0);
  Clock.advanceNanos(1500);
  EXPECT_EQ(Clock.nowNanos(), 1500);
  Clock.advanceSeconds(2.0);
  EXPECT_EQ(Clock.nowNanos(), 2000001500);
  EXPECT_NEAR(Clock.nowSeconds(), 2.0000015, 1e-12);
  Clock.setNanos(5);
  EXPECT_EQ(Clock.nowNanos(), 5);
}

TEST(WallClock, IsMonotoneNonDecreasing) {
  WallClock Clock;
  int64_t First = Clock.nowNanos();
  int64_t Second = Clock.nowNanos();
  EXPECT_GE(Second, First);
}

} // namespace
} // namespace parmonc
