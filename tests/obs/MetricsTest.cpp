//===- tests/obs/MetricsTest.cpp - Metrics registry unit tests ------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/obs/Metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace parmonc {
namespace obs {
namespace {

TEST(Counter, AddsAndReads) {
  Counter Events;
  EXPECT_EQ(Events.value(), 0);
  Events.add();
  Events.add(41);
  EXPECT_EQ(Events.value(), 42);
}

TEST(Counter, ConcurrentAddsAllLand) {
  Counter Events;
  constexpr int ThreadCount = 8;
  constexpr int AddsPerThread = 10'000;
  std::vector<std::thread> Threads;
  for (int Index = 0; Index < ThreadCount; ++Index)
    Threads.emplace_back([&Events] {
      for (int Add = 0; Add < AddsPerThread; ++Add)
        Events.add();
    });
  for (std::thread &Thread : Threads)
    Thread.join();
  EXPECT_EQ(Events.value(), int64_t(ThreadCount) * AddsPerThread);
}

TEST(Gauge, LastValueWins) {
  Gauge Level;
  EXPECT_EQ(Level.value(), 0.0);
  Level.set(3.5);
  Level.set(-1.25);
  EXPECT_EQ(Level.value(), -1.25);
}

TEST(LatencyHistogram, BucketIndexBoundaries) {
  // Bucket 0: <= 0 ns (frozen test clocks). Bucket b >= 1 covers
  // [2^(b-1), 2^b - 1].
  EXPECT_EQ(LatencyHistogram::bucketIndexFor(-5), 0u);
  EXPECT_EQ(LatencyHistogram::bucketIndexFor(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucketIndexFor(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucketIndexFor(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucketIndexFor(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucketIndexFor(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucketIndexFor(1023), 10u);
  EXPECT_EQ(LatencyHistogram::bucketIndexFor(1024), 11u);
  EXPECT_EQ(LatencyHistogram::bucketIndexFor(INT64_MAX), 63u);
}

TEST(LatencyHistogram, BucketUpperBoundsAreInclusive) {
  EXPECT_EQ(LatencyHistogram::bucketUpperNanos(0), 0);
  EXPECT_EQ(LatencyHistogram::bucketUpperNanos(1), 1);
  EXPECT_EQ(LatencyHistogram::bucketUpperNanos(2), 3);
  EXPECT_EQ(LatencyHistogram::bucketUpperNanos(10), 1023);
  EXPECT_EQ(LatencyHistogram::bucketUpperNanos(63), INT64_MAX);
  for (size_t Index = 1; Index < 63; ++Index) {
    const int64_t Upper = LatencyHistogram::bucketUpperNanos(Index);
    EXPECT_EQ(LatencyHistogram::bucketIndexFor(Upper), Index);
    EXPECT_EQ(LatencyHistogram::bucketIndexFor(Upper + 1), Index + 1);
  }
}

TEST(LatencyHistogram, RecordsTotalsAndMax) {
  LatencyHistogram Latency;
  Latency.recordNanos(10);
  Latency.recordNanos(1000);
  Latency.recordNanos(7);
  EXPECT_EQ(Latency.count(), 3);
  EXPECT_EQ(Latency.sumNanos(), 1017);
  EXPECT_EQ(Latency.maxNanos(), 1000);
  EXPECT_EQ(Latency.bucketValue(LatencyHistogram::bucketIndexFor(10)), 1);
  EXPECT_EQ(Latency.bucketValue(LatencyHistogram::bucketIndexFor(7)), 1);
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry Registry;
  Counter &First = Registry.counter("events");
  Counter &Second = Registry.counter("events");
  EXPECT_EQ(&First, &Second);
  First.add(5);
  EXPECT_EQ(Second.value(), 5);
  // Distinct kinds with the same name coexist (namespaced per kind).
  Registry.gauge("events").set(1.0);
  EXPECT_EQ(Registry.counter("events").value(), 5);
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
  MetricsRegistry Registry;
  Registry.counter("zebra").add(1);
  Registry.counter("alpha").add(2);
  Registry.counter("mid").add(3);
  Registry.gauge("z.gauge").set(9.0);
  Registry.gauge("a.gauge").set(8.0);
  Registry.latency("z.latency").recordNanos(5);
  Registry.latency("a.latency").recordNanos(5);

  const MetricsSnapshot Snapshot = Registry.snapshot();
  ASSERT_EQ(Snapshot.Counters.size(), 3u);
  EXPECT_EQ(Snapshot.Counters[0].first, "alpha");
  EXPECT_EQ(Snapshot.Counters[1].first, "mid");
  EXPECT_EQ(Snapshot.Counters[2].first, "zebra");
  ASSERT_EQ(Snapshot.Gauges.size(), 2u);
  EXPECT_EQ(Snapshot.Gauges[0].first, "a.gauge");
  ASSERT_EQ(Snapshot.Latencies.size(), 2u);
  EXPECT_EQ(Snapshot.Latencies[0].Name, "a.latency");
}

TEST(MetricsSnapshot, LookupHelpers) {
  MetricsRegistry Registry;
  Registry.counter("hits").add(7);
  Registry.gauge("load").set(0.5);
  Registry.latency("wait").recordNanos(100);

  const MetricsSnapshot Snapshot = Registry.snapshot();
  ASSERT_NE(Snapshot.counterValue("hits"), nullptr);
  EXPECT_EQ(*Snapshot.counterValue("hits"), 7);
  ASSERT_NE(Snapshot.gaugeValue("load"), nullptr);
  EXPECT_EQ(*Snapshot.gaugeValue("load"), 0.5);
  ASSERT_NE(Snapshot.latencySummary("wait"), nullptr);
  EXPECT_EQ(Snapshot.latencySummary("wait")->Count, 1);
  EXPECT_EQ(Snapshot.counterValue("absent"), nullptr);
  EXPECT_EQ(Snapshot.gaugeValue("absent"), nullptr);
  EXPECT_EQ(Snapshot.latencySummary("absent"), nullptr);
}

TEST(LatencySummary, MeanAndQuantiles) {
  MetricsRegistry Registry;
  LatencyHistogram &Latency = Registry.latency("wait");
  for (int Index = 0; Index < 90; ++Index)
    Latency.recordNanos(100); // bucket 7 (64..127)
  for (int Index = 0; Index < 10; ++Index)
    Latency.recordNanos(100'000); // bucket 17

  const MetricsSnapshot Snapshot = Registry.snapshot();
  const LatencySummary *Summary = Snapshot.latencySummary("wait");
  ASSERT_NE(Summary, nullptr);
  EXPECT_EQ(Summary->Count, 100);
  EXPECT_DOUBLE_EQ(Summary->meanNanos(), (90 * 100 + 10 * 100'000) / 100.0);
  EXPECT_EQ(Summary->quantileUpperNanos(0.5),
            LatencyHistogram::bucketUpperNanos(7));
  EXPECT_EQ(Summary->quantileUpperNanos(0.99),
            LatencyHistogram::bucketUpperNanos(17));
  EXPECT_EQ(Summary->MaxNanos, 100'000);
}

TEST(MetricsSnapshot, FileRoundTripIsExact) {
  MetricsRegistry Registry;
  Registry.counter("runner.realizations").add(123456789);
  Registry.gauge("comm.collector_queue_depth").set(2.0);
  Registry.gauge("vcluster.busy").set(0.12345678901234567);
  Registry.latency("runner.realization").recordNanos(1500);
  Registry.latency("runner.realization").recordNanos(0);
  Registry.latency("runner.realization").recordNanos(999'999'999);

  const MetricsSnapshot Original = Registry.snapshot();
  const std::string Text = Original.toFileContents();
  Result<MetricsSnapshot> Restored = MetricsSnapshot::fromFileContents(Text);
  ASSERT_TRUE(Restored.isOk()) << Restored.status().toString();

  EXPECT_EQ(Restored.value().Counters, Original.Counters);
  EXPECT_EQ(Restored.value().Gauges, Original.Gauges);
  ASSERT_EQ(Restored.value().Latencies.size(), Original.Latencies.size());
  const LatencySummary &Before = Original.Latencies[0];
  const LatencySummary &After = Restored.value().Latencies[0];
  EXPECT_EQ(After.Name, Before.Name);
  EXPECT_EQ(After.Count, Before.Count);
  EXPECT_EQ(After.SumNanos, Before.SumNanos);
  EXPECT_EQ(After.MaxNanos, Before.MaxNanos);
  EXPECT_EQ(After.Buckets, Before.Buckets);

  // Byte-stable: re-serializing the parsed snapshot reproduces the text.
  EXPECT_EQ(Restored.value().toFileContents(), Text);
}

TEST(MetricsSnapshot, RejectsCorruptFiles) {
  EXPECT_FALSE(MetricsSnapshot::fromFileContents("counter only_two").isOk());
  EXPECT_FALSE(MetricsSnapshot::fromFileContents("gauge x notanumber").isOk());
  EXPECT_FALSE(MetricsSnapshot::fromFileContents("bogus line here").isOk());
  EXPECT_TRUE(MetricsSnapshot::fromFileContents("").isOk());
  EXPECT_TRUE(MetricsSnapshot::fromFileContents("# comment\n").isOk());
}

TEST(MetricsSnapshot, RenderersMentionEveryInstrument) {
  MetricsRegistry Registry;
  Registry.counter("runner.realizations").add(10);
  Registry.gauge("runner.elapsed_seconds").set(1.5);
  Registry.latency("runner.realization").recordNanos(2000);

  const MetricsSnapshot Snapshot = Registry.snapshot();
  const std::string Json = Snapshot.toJson();
  EXPECT_NE(Json.find("\"counters\""), std::string::npos);
  EXPECT_NE(Json.find("\"runner.realizations\""), std::string::npos);
  EXPECT_NE(Json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(Json.find("\"latencies\""), std::string::npos);

  const std::string Pretty = Snapshot.toPrettyText();
  EXPECT_NE(Pretty.find("runner.realizations"), std::string::npos);
  EXPECT_NE(Pretty.find("runner.elapsed_seconds"), std::string::npos);
  EXPECT_NE(Pretty.find("runner.realization"), std::string::npos);
}

} // namespace
} // namespace obs
} // namespace parmonc
