//===- tests/obs/VirtualClusterDeterminismTest.cpp - Replay guarantees ----===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The virtual cluster advertises deterministic replay for a fixed Seed
// (its jitter streams are worker-indexed SplitMix64 generators), and its
// observability hooks stamp spans in *virtual* time. Both guarantees are
// load-bearing: the Fig. 2 bench relies on replay, and the obs contract
// says attaching sinks never changes what is simulated.
//
//===----------------------------------------------------------------------===//

#include "parmonc/mpsim/VirtualCluster.h"

#include <gtest/gtest.h>

#include <cstring>

namespace parmonc {
namespace {

VirtualClusterConfig testConfig() {
  VirtualClusterConfig Config;
  Config.ProcessorCount = 8;
  Config.MeanRealizationSeconds = 0.5;
  Config.RealizationJitter = 0.2;
  Config.Seed = 2026;
  return Config;
}

/// Bit-exact equality for double sequences (replay means *identical*, not
/// merely close).
void expectSameBits(const std::vector<double> &A,
                    const std::vector<double> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t Index = 0; Index < A.size(); ++Index) {
    uint64_t BitsA, BitsB;
    std::memcpy(&BitsA, &A[Index], sizeof BitsA);
    std::memcpy(&BitsB, &B[Index], sizeof BitsB);
    EXPECT_EQ(BitsA, BitsB) << "entry " << Index;
  }
}

TEST(VirtualClusterDeterminism, SameSeedReplaysBitExactly) {
  const std::vector<int64_t> Targets{100, 500, 1000};
  Result<VirtualClusterResult> First =
      runVirtualCluster(testConfig(), Targets);
  Result<VirtualClusterResult> Second =
      runVirtualCluster(testConfig(), Targets);
  ASSERT_TRUE(First.isOk());
  ASSERT_TRUE(Second.isOk());

  expectSameBits(First.value().CompletionSeconds,
                 Second.value().CompletionSeconds);
  EXPECT_EQ(First.value().MessagesProcessed,
            Second.value().MessagesProcessed);
  EXPECT_EQ(First.value().PerWorkerVolumes,
            Second.value().PerWorkerVolumes);
}

TEST(VirtualClusterDeterminism, DifferentSeedDiverges) {
  const std::vector<int64_t> Targets{1000};
  VirtualClusterConfig Other = testConfig();
  Other.Seed = 2027;
  Result<VirtualClusterResult> First =
      runVirtualCluster(testConfig(), Targets);
  Result<VirtualClusterResult> Second = runVirtualCluster(Other, Targets);
  ASSERT_TRUE(First.isOk());
  ASSERT_TRUE(Second.isOk());
  EXPECT_NE(First.value().CompletionSeconds[0],
            Second.value().CompletionSeconds[0]);
}

TEST(VirtualClusterDeterminism, ObservabilityDoesNotPerturbTheModel) {
  const std::vector<int64_t> Targets{100, 2000};
  Result<VirtualClusterResult> Bare =
      runVirtualCluster(testConfig(), Targets);
  ASSERT_TRUE(Bare.isOk());

  obs::MetricsRegistry Registry;
  obs::TraceWriter Trace; // virtual-time spans need no clock
  VirtualClusterConfig Probed = testConfig();
  Probed.Metrics = &Registry;
  Probed.Trace = &Trace;
  Result<VirtualClusterResult> Instrumented =
      runVirtualCluster(Probed, Targets);
  ASSERT_TRUE(Instrumented.isOk());

  expectSameBits(Bare.value().CompletionSeconds,
                 Instrumented.value().CompletionSeconds);
  EXPECT_EQ(Bare.value().MessagesProcessed,
            Instrumented.value().MessagesProcessed);
  EXPECT_EQ(Bare.value().PerWorkerVolumes,
            Instrumented.value().PerWorkerVolumes);

  // The metrics mirror the model's own outputs exactly.
  const obs::MetricsSnapshot Snapshot = Registry.snapshot();
  const int64_t *Messages =
      Snapshot.counterValue("vcluster.messages_processed");
  ASSERT_NE(Messages, nullptr);
  EXPECT_EQ(*Messages, Instrumented.value().MessagesProcessed);
  const double *Busy =
      Snapshot.gaugeValue("vcluster.collector_busy_fraction");
  ASSERT_NE(Busy, nullptr);
  EXPECT_EQ(*Busy, Instrumented.value().CollectorBusyFraction);
  EXPECT_GT(Trace.eventCount(), 0u);
}

TEST(VirtualClusterDeterminism, VirtualTimeTracesReplayByteIdentically) {
  // The trace is stamped in virtual nanoseconds — no wall clock anywhere —
  // so two instrumented replays render byte-identical JSON documents.
  const std::vector<int64_t> Targets{500};
  auto traceOneRun = [&Targets] {
    obs::TraceWriter Trace;
    VirtualClusterConfig Config = testConfig();
    Config.Trace = &Trace;
    Result<VirtualClusterResult> Outcome =
        runVirtualCluster(Config, Targets);
    EXPECT_TRUE(Outcome.isOk());
    return Trace.toJson();
  };
  const std::string First = traceOneRun();
  const std::string Second = traceOneRun();
  ASSERT_FALSE(First.empty());
  EXPECT_EQ(First, Second);
  EXPECT_NE(First.find("vcluster.collector.process"), std::string::npos);
  EXPECT_NE(First.find("vcluster.collector.save"), std::string::npos);
}

} // namespace
} // namespace parmonc
