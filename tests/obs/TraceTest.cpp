//===- tests/obs/TraceTest.cpp - TraceWriter unit tests -------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/obs/Stopwatch.h"
#include "parmonc/obs/Trace.h"
#include "parmonc/support/Clock.h"

#include <gtest/gtest.h>

namespace parmonc {
namespace obs {
namespace {

/// A clock that counts how often it is read: proves disabled probes are
/// inert.
class CountingClock final : public Clock {
public:
  int64_t nowNanos() const override {
    ++Reads;
    return 0;
  }
  void sleepNanos(int64_t) const override {}
  mutable int Reads = 0;
};

TEST(TraceWriter, GoldenJsonDocument) {
  // The exact bytes the Chrome trace renderer must produce for a small,
  // fully specified event sequence. Any formatting change (field order,
  // timestamp precision, separators) must be a conscious one.
  TraceWriter Trace;
  Trace.completeSpan("alpha", 0, 0, 1500);
  Trace.instantAt("mark", 1, 500);
  Trace.completeSpan("beta", 0, 2000, 2000);

  const std::string Expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"alpha\",\"cat\":\"parmonc\",\"ph\":\"X\",\"ts\":0.000,"
      "\"dur\":1.500,\"pid\":0,\"tid\":0},\n"
      "{\"name\":\"mark\",\"cat\":\"parmonc\",\"ph\":\"i\",\"ts\":0.500,"
      "\"s\":\"t\",\"pid\":0,\"tid\":1},\n"
      "{\"name\":\"beta\",\"cat\":\"parmonc\",\"ph\":\"X\",\"ts\":2.000,"
      "\"dur\":0.000,\"pid\":0,\"tid\":0}\n"
      "]}\n";
  EXPECT_EQ(Trace.toJson(), Expected);
}

TEST(TraceWriter, EventsAreSortedByTimeThenLaneThenOrder) {
  TraceWriter Trace;
  Trace.completeSpan("late", 0, 900, 1000);
  Trace.completeSpan("early", 1, 100, 200);
  Trace.completeSpan("tie.lane1", 1, 500, 500);
  Trace.completeSpan("tie.lane0", 0, 500, 500);
  Trace.completeSpan("tie.lane0.second", 0, 500, 500);

  const std::string Json = Trace.toJson();
  const size_t Early = Json.find("early");
  const size_t TieLane0 = Json.find("tie.lane0");
  const size_t TieLane0Second = Json.find("tie.lane0.second");
  const size_t TieLane1 = Json.find("tie.lane1");
  const size_t Late = Json.find("late");
  ASSERT_NE(Early, std::string::npos);
  EXPECT_LT(Early, TieLane0);       // time order first
  EXPECT_LT(TieLane0, TieLane0Second); // record order within a lane
  EXPECT_LT(TieLane0Second, TieLane1); // lane order breaks timestamp ties
  EXPECT_LT(TieLane1, Late);
}

TEST(TraceWriter, IdenticalSequencesRenderIdenticalBytes) {
  auto record = [](TraceWriter &Trace) {
    for (int Index = 0; Index < 100; ++Index)
      Trace.completeSpan("span", Index % 3, Index * 10, Index * 10 + 5);
    Trace.instantAt("stop", 0, 12345);
  };
  TraceWriter First, Second;
  record(First);
  record(Second);
  EXPECT_EQ(First.toJson(), Second.toJson());
  EXPECT_EQ(First.eventCount(), 101u);
}

TEST(TraceWriter, EscapesHostileNames) {
  TraceWriter Trace;
  Trace.instantAt("quote\" slash\\ newline\n tab\t", 0, 0);
  const std::string Json = Trace.toJson();
  EXPECT_NE(Json.find("quote\\\" slash\\\\ newline\\n tab\\t"),
            std::string::npos);
}

TEST(TraceWriter, InstantUsesAttachedClock) {
  ManualClock Time(42'000);
  TraceWriter Trace(&Time);
  ASSERT_TRUE(Trace.hasClock());
  Trace.instant("now", 2);
  EXPECT_NE(Trace.toJson().find("\"ts\":42.000"), std::string::npos);
}

TEST(TraceWriter, EmptyWriterRendersEmptyDocument) {
  TraceWriter Trace;
  EXPECT_EQ(Trace.eventCount(), 0u);
  EXPECT_EQ(Trace.toJson(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n");
}

TEST(ScopedSpan, EmitsSpanAndLatency) {
  ManualClock Time(1'000);
  TraceWriter Trace(&Time);
  MetricsRegistry Registry;
  LatencyHistogram &Latency = Registry.latency("probe");
  {
    ScopedSpan Span(Time, "probe", 3, &Trace, &Latency);
    Time.advanceNanos(500);
  }
  EXPECT_EQ(Trace.eventCount(), 1u);
  EXPECT_NE(Trace.toJson().find(
                "\"name\":\"probe\",\"cat\":\"parmonc\",\"ph\":\"X\","
                "\"ts\":1.000,\"dur\":0.500,\"pid\":0,\"tid\":3"),
            std::string::npos);
  EXPECT_EQ(Latency.count(), 1);
  EXPECT_EQ(Latency.sumNanos(), 500);
}

TEST(ScopedSpan, DisabledProbeNeverReadsTheClock) {
  CountingClock Time;
  {
    ScopedSpan Span(Time, "inert", 0, /*Trace=*/nullptr,
                    /*Latency=*/nullptr);
  }
  EXPECT_EQ(Time.Reads, 0);
}

TEST(Stopwatch, MeasuresOnInjectedClock) {
  ManualClock Time(5'000);
  Stopwatch Watch(Time);
  EXPECT_EQ(Watch.startNanos(), 5'000);
  Time.advanceNanos(2'500);
  EXPECT_EQ(Watch.elapsedNanos(), 2'500);
  EXPECT_DOUBLE_EQ(Watch.elapsedSeconds(), 2.5e-6);
  Watch.restart();
  EXPECT_EQ(Watch.elapsedNanos(), 0);
}

} // namespace
} // namespace obs
} // namespace parmonc
