//===- tests/obs/DeterministicRunTraceTest.cpp - Fake-clock trace harness --===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The tentpole acceptance test of the observability layer: a full engine
// run under an injected ManualClock produces a *byte-identical* Chrome
// trace and metrics file on every execution. Every probe takes its time
// from the injected clock and toJson() orders events deterministically, so
// a frozen clock plus a deterministic workload leaves nothing for the
// bytes to vary on. The same harness verifies that attaching observability
// does not perturb the simulation results themselves.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"
#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace parmonc {
namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("parmonc_obs_" + Name + "_" + std::to_string(Counter++)))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
  const std::string &path() const { return Path; }

private:
  static inline int Counter = 0;
  std::string Path;
};

void uniformRealization(RandomSource &Source, double *Out) {
  Out[0] = Source.nextUniform();
}

/// One instrumented single-rank run under a frozen ManualClock. Returns
/// (trace JSON, metrics file bytes, func.dat bytes).
struct InstrumentedRun {
  std::string TraceJson;
  std::string MetricsFile;
  std::string MeansFile;
  RunReport Report;
};

InstrumentedRun runInstrumented(const std::string &WorkDir) {
  ManualClock Frozen(1'000'000); // arbitrary fixed epoch, never advanced
  obs::MetricsRegistry Registry;
  obs::TraceWriter Trace(&Frozen);

  RunConfig Config;
  Config.Rows = 1;
  Config.Columns = 1;
  Config.MaxSampleVolume = 64;
  Config.ProcessorCount = 1;
  Config.WorkDir = WorkDir;
  Config.Metrics = &Registry;
  Config.Trace = &Trace;

  Result<RunReport> Outcome =
      runSimulation(uniformRealization, Config, &Frozen);
  EXPECT_TRUE(Outcome.isOk()) << Outcome.status().toString();

  InstrumentedRun Run;
  Run.TraceJson = Trace.toJson();
  ResultsStore Store(WorkDir);
  Run.MetricsFile = readFileToString(Store.metricsPath()).valueOr("");
  Run.MeansFile = readFileToString(Store.meansPath()).valueOr("");
  Run.Report = Outcome.valueOr(RunReport{});
  return Run;
}

TEST(DeterministicRunTrace, TraceBytesAreIdenticalAcrossRuns) {
  ScratchDir First("trace_a"), Second("trace_b");
  const InstrumentedRun RunA = runInstrumented(First.path());
  const InstrumentedRun RunB = runInstrumented(Second.path());

  ASSERT_FALSE(RunA.TraceJson.empty());
  EXPECT_EQ(RunA.TraceJson, RunB.TraceJson);
  EXPECT_EQ(RunA.MetricsFile, RunB.MetricsFile);
  EXPECT_EQ(RunA.MeansFile, RunB.MeansFile);
}

TEST(DeterministicRunTrace, TraceFileOnDiskMatchesTheWriter) {
  ScratchDir Dir("trace_file");
  const InstrumentedRun Run = runInstrumented(Dir.path());
  ResultsStore Store(Dir.path());
  Result<std::string> OnDisk = readFileToString(Store.tracePath());
  ASSERT_TRUE(OnDisk.isOk()) << OnDisk.status().toString();
  EXPECT_EQ(OnDisk.value(), Run.TraceJson);
}

TEST(DeterministicRunTrace, TraceCoversTheEnginePhases) {
  ScratchDir Dir("trace_phases");
  const InstrumentedRun Run = runInstrumented(Dir.path());
  for (const char *Name :
       {"rng.leap_setup", "runner.realization", "runner.subtotal_send",
        "runner.subtotal_merge", "runner.save_point",
        "store.snapshot_write"})
    EXPECT_NE(Run.TraceJson.find(std::string("\"name\":\"") + Name + "\""),
              std::string::npos)
        << "trace is missing " << Name << " spans";
}

TEST(DeterministicRunTrace, MetricsAccountForEveryRealization) {
  ScratchDir Dir("metrics");
  const InstrumentedRun Run = runInstrumented(Dir.path());
  Result<obs::MetricsSnapshot> Snapshot =
      obs::MetricsSnapshot::fromFileContents(Run.MetricsFile);
  ASSERT_TRUE(Snapshot.isOk()) << Snapshot.status().toString();

  const int64_t *Realizations =
      Snapshot.value().counterValue("runner.realizations");
  ASSERT_NE(Realizations, nullptr);
  EXPECT_EQ(*Realizations, Run.Report.TotalSampleVolume);
  const int64_t *Rank0 =
      Snapshot.value().counterValue("runner.rank0.realizations");
  ASSERT_NE(Rank0, nullptr);
  EXPECT_EQ(*Rank0, Run.Report.TotalSampleVolume);
  const int64_t *Streams =
      Snapshot.value().counterValue("rng.streams_issued");
  ASSERT_NE(Streams, nullptr);
  EXPECT_EQ(*Streams, Run.Report.TotalSampleVolume);

  // Every realization's duration went into the latency histogram, and the
  // in-memory report snapshot matches the file.
  const obs::LatencySummary *Latency =
      Snapshot.value().latencySummary("runner.realization");
  ASSERT_NE(Latency, nullptr);
  EXPECT_EQ(Latency->Count, Run.Report.TotalSampleVolume);
  EXPECT_EQ(Run.Report.Metrics.toFileContents(), Run.MetricsFile);
}

TEST(DeterministicRunTrace, ObservabilityDoesNotPerturbResults) {
  // A plain run and an instrumented run over the same deterministic
  // workload must produce byte-identical result files: probes read clocks
  // and bump atomics, never anything that feeds the estimators.
  ScratchDir Plain("plain"), Probed("probed");

  RunConfig Config;
  Config.Rows = 1;
  Config.Columns = 1;
  Config.MaxSampleVolume = 64;
  Config.ProcessorCount = 1;

  ManualClock FrozenA(1'000'000);
  Config.WorkDir = Plain.path();
  Result<RunReport> Bare =
      runSimulation(uniformRealization, Config, &FrozenA);
  ASSERT_TRUE(Bare.isOk()) << Bare.status().toString();

  ManualClock FrozenB(1'000'000);
  obs::MetricsRegistry Registry;
  obs::TraceWriter Trace(&FrozenB);
  Config.WorkDir = Probed.path();
  Config.Metrics = &Registry;
  Config.Trace = &Trace;
  Result<RunReport> Instrumented =
      runSimulation(uniformRealization, Config, &FrozenB);
  ASSERT_TRUE(Instrumented.isOk()) << Instrumented.status().toString();

  ResultsStore PlainStore(Plain.path()), ProbedStore(Probed.path());
  EXPECT_EQ(readFileToString(PlainStore.meansPath()).valueOr("A"),
            readFileToString(ProbedStore.meansPath()).valueOr("B"));
  EXPECT_EQ(readFileToString(PlainStore.confidencePath()).valueOr("A"),
            readFileToString(ProbedStore.confidencePath()).valueOr("B"));
  EXPECT_EQ(Bare.value().TotalSampleVolume,
            Instrumented.value().TotalSampleVolume);
}

} // namespace
} // namespace parmonc
