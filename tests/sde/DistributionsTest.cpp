//===- tests/sde/DistributionsTest.cpp - Sampler tests --------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/sde/Distributions.h"

#include "parmonc/rng/Baselines.h"
#include "parmonc/rng/Lcg128.h"
#include "parmonc/stats/RunningStat.h"

#include <gtest/gtest.h>

// mclint: allow-file(R6): these tests exercise the raw generator
// deliberately, validating the stream algebra itself.

#include <cmath>

namespace parmonc {
namespace {

TEST(SampleUniform, StaysInRange) {
  Lcg128 Source;
  for (int Draw = 0; Draw < 10000; ++Draw) {
    double Value = sampleUniform(Source, -3.0, 7.0);
    EXPECT_GE(Value, -3.0);
    EXPECT_LT(Value, 7.0);
  }
}

TEST(SampleUniform, MatchesMomentsOfRange) {
  Lcg128 Source;
  RunningStat Stats;
  for (int Draw = 0; Draw < 200000; ++Draw)
    Stats.add(sampleUniform(Source, 2.0, 6.0));
  EXPECT_NEAR(Stats.mean(), 4.0, 0.02);
  // Var of U(2,6) = 16/12.
  EXPECT_NEAR(Stats.variance(), 16.0 / 12.0, 0.03);
}

TEST(SampleStandardNormal, MomentsMatch) {
  Lcg128 Source;
  RunningStat Stats;
  for (int Draw = 0; Draw < 400000; ++Draw)
    Stats.add(sampleStandardNormal(Source));
  EXPECT_NEAR(Stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(Stats.variance(), 1.0, 0.02);
}

TEST(SampleStandardNormal, TailProbabilitiesMatch) {
  Lcg128 Source;
  const int Count = 400000;
  int Beyond1 = 0, Beyond2 = 0, Beyond3 = 0;
  for (int Draw = 0; Draw < Count; ++Draw) {
    double Value = std::fabs(sampleStandardNormal(Source));
    Beyond1 += Value > 1.0;
    Beyond2 += Value > 2.0;
    Beyond3 += Value > 3.0;
  }
  EXPECT_NEAR(double(Beyond1) / Count, 0.3173, 0.01);
  EXPECT_NEAR(double(Beyond2) / Count, 0.0455, 0.004);
  EXPECT_NEAR(double(Beyond3) / Count, 0.0027, 0.001);
}

TEST(SampleStandardNormalPair, ComponentsAreUncorrelated) {
  Lcg128 Source;
  RunningStat Product;
  for (int Draw = 0; Draw < 200000; ++Draw) {
    NormalPair Pair = sampleStandardNormalPair(Source);
    Product.add(Pair.First * Pair.Second);
  }
  // E[XY] = 0 for independent standard normals.
  EXPECT_NEAR(Product.mean(), 0.0, 0.02);
}

TEST(SampleNormal, ScalesAndShifts) {
  Lcg128 Source;
  RunningStat Stats;
  for (int Draw = 0; Draw < 200000; ++Draw)
    Stats.add(sampleNormal(Source, 10.0, 0.5));
  EXPECT_NEAR(Stats.mean(), 10.0, 0.01);
  EXPECT_NEAR(Stats.stdDev(), 0.5, 0.01);
}

TEST(SampleExponential, MomentsMatch) {
  Lcg128 Source;
  RunningStat Stats;
  const double Rate = 2.5;
  for (int Draw = 0; Draw < 300000; ++Draw)
    Stats.add(sampleExponential(Source, Rate));
  EXPECT_NEAR(Stats.mean(), 1.0 / Rate, 0.005);
  EXPECT_NEAR(Stats.variance(), 1.0 / (Rate * Rate), 0.01);
  EXPECT_GT(Stats.min(), 0.0);
}

TEST(SampleExponential, MemorylessTail) {
  // P(X > 1/rate) = e^-1.
  Lcg128 Source;
  const double Rate = 1.7;
  const int Count = 300000;
  int Beyond = 0;
  for (int Draw = 0; Draw < Count; ++Draw)
    Beyond += sampleExponential(Source, Rate) > 1.0 / Rate;
  EXPECT_NEAR(double(Beyond) / Count, std::exp(-1.0), 0.01);
}

TEST(SampleBernoulli, FrequencyMatches) {
  Lcg128 Source;
  const int Count = 300000;
  int Successes = 0;
  for (int Draw = 0; Draw < Count; ++Draw)
    Successes += sampleBernoulli(Source, 0.3);
  EXPECT_NEAR(double(Successes) / Count, 0.3, 0.01);
}

TEST(SampleBernoulli, DegenerateProbabilities) {
  Lcg128 Source;
  for (int Draw = 0; Draw < 1000; ++Draw) {
    EXPECT_FALSE(sampleBernoulli(Source, 0.0));
    EXPECT_TRUE(sampleBernoulli(Source, 1.0));
  }
}

// Poisson must hold for both the Knuth branch (mean < 30) and the
// rejection branch (mean >= 30).
class PoissonSweep : public ::testing::TestWithParam<double> {};

TEST_P(PoissonSweep, MeanAndVarianceMatch) {
  const double Mean = GetParam();
  Lcg128 Source;
  RunningStat Stats;
  const int Count = Mean < 30 ? 200000 : 60000;
  for (int Draw = 0; Draw < Count; ++Draw)
    Stats.add(double(samplePoisson(Source, Mean)));
  EXPECT_NEAR(Stats.mean(), Mean, 5.0 * std::sqrt(Mean / Count));
  EXPECT_NEAR(Stats.variance(), Mean, 0.08 * Mean + 0.05);
  EXPECT_GE(Stats.min(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonSweep,
                         ::testing::Values(0.3, 1.0, 4.0, 12.0, 29.0, 30.0,
                                           45.0, 150.0, 1000.0));

TEST(SampleGeometric, MatchesDistribution) {
  Lcg128 Source;
  const double Probability = 0.25;
  RunningStat Stats;
  int64_t Zeros = 0;
  const int Count = 300000;
  for (int Draw = 0; Draw < Count; ++Draw) {
    int64_t Value = sampleGeometric(Source, Probability);
    Stats.add(double(Value));
    Zeros += Value == 0;
  }
  // E = (1-p)/p = 3; P(X=0) = p.
  EXPECT_NEAR(Stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(double(Zeros) / Count, Probability, 0.005);
}

TEST(SampleGeometric, CertainSuccessIsZero) {
  Lcg128 Source;
  for (int Draw = 0; Draw < 100; ++Draw)
    EXPECT_EQ(sampleGeometric(Source, 1.0), 0);
}

TEST(AliasTable, SingleOutcomeAlwaysWins) {
  AliasTable Table(std::vector<double>{5.0});
  Lcg128 Source;
  for (int Draw = 0; Draw < 100; ++Draw)
    EXPECT_EQ(Table.sample(Source), 0u);
}

TEST(AliasTable, NormalizesWeights) {
  AliasTable Table(std::vector<double>{1.0, 3.0});
  EXPECT_DOUBLE_EQ(Table.probabilityOf(0), 0.25);
  EXPECT_DOUBLE_EQ(Table.probabilityOf(1), 0.75);
}

TEST(AliasTable, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double> Weights = {0.5, 0.1, 0.25, 0.05, 0.1};
  AliasTable Table(Weights);
  Lcg128 Source;
  std::vector<int64_t> Counts(Weights.size(), 0);
  const int Draws = 500000;
  for (int Draw = 0; Draw < Draws; ++Draw)
    ++Counts[Table.sample(Source)];
  for (size_t Outcome = 0; Outcome < Weights.size(); ++Outcome)
    EXPECT_NEAR(double(Counts[Outcome]) / Draws,
                Table.probabilityOf(Outcome), 0.005)
        << "outcome " << Outcome;
}

TEST(AliasTable, HandlesZeroWeightOutcomes) {
  AliasTable Table(std::vector<double>{1.0, 0.0, 1.0});
  Lcg128 Source;
  for (int Draw = 0; Draw < 20000; ++Draw)
    EXPECT_NE(Table.sample(Source), 1u);
}

TEST(AliasTable, UniformWeightsAreUniform) {
  AliasTable Table(std::vector<double>(8, 1.0));
  SplitMix64 Source(5);
  std::vector<int64_t> Counts(8, 0);
  const int Draws = 400000;
  for (int Draw = 0; Draw < Draws; ++Draw)
    ++Counts[Table.sample(Source)];
  for (int64_t Count : Counts)
    EXPECT_NEAR(double(Count) / Draws, 0.125, 0.005);
}

TEST(Samplers, AreDeterministicGivenSameStream) {
  Lcg128 A, B;
  for (int Draw = 0; Draw < 100; ++Draw)
    EXPECT_DOUBLE_EQ(sampleStandardNormal(A), sampleStandardNormal(B));
}

} // namespace
} // namespace parmonc
