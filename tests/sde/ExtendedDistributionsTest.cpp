//===- tests/sde/ExtendedDistributionsTest.cpp - Extended samplers --------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/sde/Distributions.h"

#include "parmonc/rng/Baselines.h"
#include "parmonc/rng/Lcg128.h"
#include "parmonc/stats/RunningStat.h"

#include <gtest/gtest.h>

// mclint: allow-file(R6): these tests exercise the raw generator
// deliberately, validating the stream algebra itself.

#include <cmath>

namespace parmonc {
namespace {

// Gamma must hold in both branches: shape < 1 (boosting) and >= 1
// (Marsaglia-Tsang).
class GammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaSweep, MomentsMatch) {
  const double Shape = GetParam();
  const double Scale = 2.0;
  Lcg128 Source;
  RunningStat Stats;
  for (int Draw = 0; Draw < 300000; ++Draw)
    Stats.add(sampleGamma(Source, Shape, Scale));
  // E = k*theta, Var = k*theta^2.
  EXPECT_NEAR(Stats.mean(), Shape * Scale, 0.03 * Shape * Scale + 0.01);
  EXPECT_NEAR(Stats.variance(), Shape * Scale * Scale,
              0.08 * Shape * Scale * Scale + 0.02);
  EXPECT_GT(Stats.min(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaSweep,
                         ::testing::Values(0.3, 0.9, 1.0, 2.5, 10.0,
                                           100.0));

TEST(SampleGamma, ShapeOneIsExponential) {
  // Gamma(1, theta) is Exponential(1/theta): P(X > theta) = e^-1.
  Lcg128 Source;
  const double Scale = 3.0;
  const int Count = 200000;
  int Beyond = 0;
  for (int Draw = 0; Draw < Count; ++Draw)
    Beyond += sampleGamma(Source, 1.0, Scale) > Scale;
  EXPECT_NEAR(double(Beyond) / Count, std::exp(-1.0), 0.01);
}

class BetaSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(BetaSweep, MomentsMatch) {
  const auto [Alpha, Beta] = GetParam();
  Lcg128 Source;
  RunningStat Stats;
  for (int Draw = 0; Draw < 200000; ++Draw) {
    const double Value = sampleBeta(Source, Alpha, Beta);
    EXPECT_GT(Value, 0.0);
    EXPECT_LT(Value, 1.0);
    Stats.add(Value);
  }
  const double ExactMean = Alpha / (Alpha + Beta);
  const double ExactVariance = Alpha * Beta /
                               ((Alpha + Beta) * (Alpha + Beta) *
                                (Alpha + Beta + 1.0));
  EXPECT_NEAR(Stats.mean(), ExactMean, 0.01);
  EXPECT_NEAR(Stats.variance(), ExactVariance, 0.05 * ExactVariance + 0.001);
}

INSTANTIATE_TEST_SUITE_P(
    Parameters, BetaSweep,
    ::testing::Values(std::make_pair(1.0, 1.0), std::make_pair(2.0, 5.0),
                      std::make_pair(0.5, 0.5), std::make_pair(10.0, 2.0)));

TEST(SampleBeta, UniformSpecialCase) {
  // Beta(1,1) is U(0,1): check the CDF at a few points.
  Lcg128 Source;
  const int Count = 200000;
  int BelowQuarter = 0;
  for (int Draw = 0; Draw < Count; ++Draw)
    BelowQuarter += sampleBeta(Source, 1.0, 1.0) < 0.25;
  EXPECT_NEAR(double(BelowQuarter) / Count, 0.25, 0.01);
}

// Binomial must hold in both branches: direct summation (n <= 64) and the
// beta-splitting recursion (n > 64), and across the p > 1/2 reflection.
struct BinomialCase {
  int64_t Trials;
  double Probability;
};

class BinomialSweep : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialSweep, MomentsMatch) {
  const auto [Trials, Probability] = GetParam();
  Lcg128 Source;
  RunningStat Stats;
  const int Count = 100000;
  for (int Draw = 0; Draw < Count; ++Draw) {
    const int64_t Value = sampleBinomial(Source, Trials, Probability);
    ASSERT_GE(Value, 0);
    ASSERT_LE(Value, Trials);
    Stats.add(double(Value));
  }
  const double ExactMean = double(Trials) * Probability;
  const double ExactVariance = ExactMean * (1.0 - Probability);
  EXPECT_NEAR(Stats.mean(), ExactMean,
              5.0 * std::sqrt(ExactVariance / Count) + 1e-9);
  if (ExactVariance > 0.0) {
    EXPECT_NEAR(Stats.variance(), ExactVariance, 0.05 * ExactVariance);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BinomialSweep,
    ::testing::Values(BinomialCase{10, 0.3}, BinomialCase{64, 0.5},
                      BinomialCase{65, 0.2}, BinomialCase{1000, 0.01},
                      BinomialCase{1000, 0.99}, BinomialCase{100000, 0.37}));

TEST(SampleBinomial, DegenerateCases) {
  Lcg128 Source;
  EXPECT_EQ(sampleBinomial(Source, 0, 0.5), 0);
  EXPECT_EQ(sampleBinomial(Source, 100, 0.0), 0);
  EXPECT_EQ(sampleBinomial(Source, 100, 1.0), 100);
}

TEST(SampleChiSquare, MomentsMatch) {
  Lcg128 Source;
  RunningStat Stats;
  const double Df = 7.0;
  for (int Draw = 0; Draw < 200000; ++Draw)
    Stats.add(sampleChiSquare(Source, Df));
  EXPECT_NEAR(Stats.mean(), Df, 0.05);
  EXPECT_NEAR(Stats.variance(), 2.0 * Df, 0.4);
}

TEST(SampleStudentT, IsSymmetricWithHeavyTails) {
  Lcg128 Source;
  RunningStat Stats;
  const double Df = 5.0;
  const int Count = 300000;
  int Beyond3 = 0;
  for (int Draw = 0; Draw < Count; ++Draw) {
    const double Value = sampleStudentT(Source, Df);
    Stats.add(Value);
    Beyond3 += std::fabs(Value) > 3.0;
  }
  EXPECT_NEAR(Stats.mean(), 0.0, 0.02);
  // Var of t_5 is 5/3.
  EXPECT_NEAR(Stats.variance(), 5.0 / 3.0, 0.1);
  // t_5 has ~3.0% mass beyond |3|; the normal has 0.27% — heavy tails.
  EXPECT_GT(double(Beyond3) / Count, 0.02);
}

TEST(SampleLognormal, MedianAndMeanMatch) {
  Lcg128 Source;
  RunningStat Stats;
  const double MeanLog = 0.5, SdLog = 0.75;
  const int Count = 300000;
  int BelowMedian = 0;
  for (int Draw = 0; Draw < Count; ++Draw) {
    const double Value = sampleLognormal(Source, MeanLog, SdLog);
    Stats.add(Value);
    BelowMedian += Value < std::exp(MeanLog);
  }
  EXPECT_NEAR(double(BelowMedian) / Count, 0.5, 0.01);
  EXPECT_NEAR(Stats.mean(), std::exp(MeanLog + 0.5 * SdLog * SdLog), 0.03);
}

TEST(CholeskyFactor, ReproducesKnownFactor) {
  // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
  std::vector<double> Matrix = {4.0, 2.0, 2.0, 3.0};
  ASSERT_TRUE(choleskyFactor(Matrix, 2).isOk());
  EXPECT_DOUBLE_EQ(Matrix[0], 2.0);
  EXPECT_DOUBLE_EQ(Matrix[1], 0.0);
  EXPECT_DOUBLE_EQ(Matrix[2], 1.0);
  EXPECT_NEAR(Matrix[3], std::sqrt(2.0), 1e-15);
}

TEST(CholeskyFactor, LLTransposedReconstructsInput) {
  const std::vector<double> Original = {9.0, 3.0, 1.0, //
                                        3.0, 5.0, 2.0, //
                                        1.0, 2.0, 6.0};
  std::vector<double> Factor = Original;
  ASSERT_TRUE(choleskyFactor(Factor, 3).isOk());
  for (size_t Row = 0; Row < 3; ++Row) {
    for (size_t Column = 0; Column < 3; ++Column) {
      double Sum = 0.0;
      for (size_t Inner = 0; Inner < 3; ++Inner)
        Sum += Factor[Row * 3 + Inner] * Factor[Column * 3 + Inner];
      EXPECT_NEAR(Sum, Original[Row * 3 + Column], 1e-12);
    }
  }
}

TEST(CholeskyFactor, RejectsNonPositiveDefinite) {
  std::vector<double> Indefinite = {1.0, 2.0, 2.0, 1.0}; // eigenvalue -1
  EXPECT_FALSE(choleskyFactor(Indefinite, 2).isOk());
  std::vector<double> WrongSize = {1.0, 2.0};
  EXPECT_FALSE(choleskyFactor(WrongSize, 2).isOk());
}

TEST(MultivariateNormal, MatchesMeanAndCovariance) {
  const std::vector<double> Mean = {1.0, -2.0, 0.5};
  const std::vector<double> Covariance = {2.0, 0.8, 0.2, //
                                          0.8, 1.5, -0.3, //
                                          0.2, -0.3, 1.0};
  MultivariateNormal Sampler(Mean, Covariance);
  ASSERT_TRUE(Sampler.isValid());
  ASSERT_EQ(Sampler.dimension(), 3u);

  Lcg128 Source;
  const int Count = 200000;
  std::vector<double> Sample(3);
  std::vector<double> SumVector(3, 0.0);
  std::vector<double> SumOuter(9, 0.0);
  for (int Draw = 0; Draw < Count; ++Draw) {
    Sampler.sample(Source, Sample.data());
    for (size_t Row = 0; Row < 3; ++Row) {
      SumVector[Row] += Sample[Row];
      for (size_t Column = 0; Column < 3; ++Column)
        SumOuter[Row * 3 + Column] += Sample[Row] * Sample[Column];
    }
  }
  for (size_t Row = 0; Row < 3; ++Row) {
    const double MeanRow = SumVector[Row] / Count;
    EXPECT_NEAR(MeanRow, Mean[Row], 0.02) << "component " << Row;
    for (size_t Column = 0; Column < 3; ++Column) {
      const double MeanColumn = SumVector[Column] / Count;
      const double Cov =
          SumOuter[Row * 3 + Column] / Count - MeanRow * MeanColumn;
      EXPECT_NEAR(Cov, Covariance[Row * 3 + Column], 0.04)
          << "entry (" << Row << "," << Column << ")";
    }
  }
}

TEST(MultivariateNormal, OneDimensionalReducesToNormal) {
  MultivariateNormal Sampler({5.0}, {4.0});
  Lcg128 Source;
  RunningStat Stats;
  double Sample = 0.0;
  for (int Draw = 0; Draw < 200000; ++Draw) {
    Sampler.sample(Source, &Sample);
    Stats.add(Sample);
  }
  EXPECT_NEAR(Stats.mean(), 5.0, 0.02);
  EXPECT_NEAR(Stats.stdDev(), 2.0, 0.02);
}

} // namespace
} // namespace parmonc
