//===- tests/sde/EulerMaruyamaTest.cpp - SDE integrator tests -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/sde/EulerMaruyama.h"

#include "parmonc/rng/Lcg128.h"
#include "parmonc/stats/EstimatorMatrix.h"

#include <gtest/gtest.h>

// mclint: allow-file(R6): these tests exercise the raw generator
// deliberately, validating the stream algebra itself.

#include <cmath>

namespace parmonc {
namespace {

LinearSdeSystem makeSimple1D() {
  LinearSdeSystem System;
  System.InitialState = {2.0};
  System.DriftVector = {0.5};
  System.DiffusionMatrix = {1.5};
  System.NoiseDimension = 1;
  return System;
}

TEST(LinearSdeSystem, ExactMomentsFormula) {
  LinearSdeSystem System = PaperDiffusionProblem::makeSystem();
  EXPECT_DOUBLE_EQ(System.exactMean(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(System.exactMean(0, 10.0), 11.0);
  EXPECT_DOUBLE_EQ(System.exactMean(1, 10.0), -6.0);
  // Row norms of D: 1^2 + 0.2^2 = 1.04 per unit time.
  EXPECT_DOUBLE_EQ(System.exactVariance(0, 1.0), 1.04);
  EXPECT_DOUBLE_EQ(System.exactVariance(1, 5.0), 5.2);
}

TEST(LinearSdeSystem, ToSystemCopiesCoefficients) {
  SdeSystem System;
  {
    LinearSdeSystem Linear = makeSimple1D();
    System = Linear.toSystem();
    // Linear dies here; the closures must have copied its vectors.
  }
  double Drift = 0.0, Diffusion = 0.0;
  double State = 0.0;
  System.Drift(0.0, &State, &Drift);
  System.Diffusion(0.0, &State, &Diffusion);
  EXPECT_DOUBLE_EQ(Drift, 0.5);
  EXPECT_DOUBLE_EQ(Diffusion, 1.5);
}

TEST(EulerMaruyama, DeterministicDriftIsIntegratedExactly) {
  // With zero diffusion the scheme is the exact Euler solution of the
  // linear ODE: y(t) = y0 + C t (no mesh error for constant drift).
  LinearSdeSystem Linear = makeSimple1D();
  Linear.DiffusionMatrix = {0.0};
  EulerMaruyama Integrator(Linear.toSystem(), 0.01);
  Lcg128 Source;
  std::vector<double> Final =
      Integrator.simulateToEnd(Source, Linear.InitialState, 1.0);
  EXPECT_NEAR(Final[0], 2.5, 1e-9);
}

TEST(EulerMaruyama, SampleAtIntermediateTimes) {
  LinearSdeSystem Linear = makeSimple1D();
  Linear.DiffusionMatrix = {0.0};
  EulerMaruyama Integrator(Linear.toSystem(), 0.01);
  Lcg128 Source;
  std::vector<double> Times{0.25, 0.5, 1.0};
  std::vector<double> Samples(3);
  Integrator.simulateTrajectory(Source, Linear.InitialState.data(), 1.0,
                                Times, Samples.data());
  EXPECT_NEAR(Samples[0], 2.125, 1e-9);
  EXPECT_NEAR(Samples[1], 2.25, 1e-9);
  EXPECT_NEAR(Samples[2], 2.5, 1e-9);
}

TEST(EulerMaruyama, WeakExactnessOfMeanForAdditiveNoise) {
  // For dy = C dt + D dw, E y(t) is reproduced without bias by Euler (the
  // noise increments have zero mean), so the sample mean must converge to
  // y0 + C t at the Monte Carlo rate.
  LinearSdeSystem Linear = makeSimple1D();
  EulerMaruyama Integrator(Linear.toSystem(), 0.05);
  Lcg128 Source;
  EstimatorMatrix Estimate(1, 1);
  const int Trajectories = 20000;
  for (int Trajectory = 0; Trajectory < Trajectories; ++Trajectory) {
    std::vector<double> Final =
        Integrator.simulateToEnd(Source, Linear.InitialState, 2.0);
    Estimate.accumulate(Final.data());
  }
  EntryStatistics Stats = Estimate.entryStatistics(0, 0);
  const double Exact = Linear.exactMean(0, 2.0); // 3.0
  EXPECT_NEAR(Stats.Mean, Exact, Stats.AbsoluteError)
      << "3-sigma interval missed the exact mean";
}

TEST(EulerMaruyama, VarianceGrowsLinearlyInTime) {
  LinearSdeSystem Linear = makeSimple1D();
  EulerMaruyama Integrator(Linear.toSystem(), 0.02);
  Lcg128 Source;
  EstimatorMatrix Estimate(1, 1);
  const int Trajectories = 20000;
  const double EndTime = 1.0;
  for (int Trajectory = 0; Trajectory < Trajectories; ++Trajectory) {
    std::vector<double> Final =
        Integrator.simulateToEnd(Source, Linear.InitialState, EndTime);
    Estimate.accumulate(Final.data());
  }
  const double Exact = Linear.exactVariance(0, EndTime); // 2.25
  EXPECT_NEAR(Estimate.entryStatistics(0, 0).Variance, Exact, 0.08);
}

TEST(EulerMaruyama, CorrelatedNoiseProducesCrossCovariance) {
  // 2-D system with D = [[1, 0.5], [0, 1]]: Cov(y1,y2)(t) = (D Dᵀ)_{01} t
  // = 0.5 t.
  LinearSdeSystem Linear;
  Linear.InitialState = {0.0, 0.0};
  Linear.DriftVector = {0.0, 0.0};
  Linear.DiffusionMatrix = {1.0, 0.5, 0.0, 1.0};
  Linear.NoiseDimension = 2;
  EulerMaruyama Integrator(Linear.toSystem(), 0.05);
  Lcg128 Source;
  double CrossSum = 0.0;
  const int Trajectories = 30000;
  for (int Trajectory = 0; Trajectory < Trajectories; ++Trajectory) {
    std::vector<double> Final =
        Integrator.simulateToEnd(Source, Linear.InitialState, 1.0);
    CrossSum += Final[0] * Final[1];
  }
  EXPECT_NEAR(CrossSum / Trajectories, 0.5, 0.05);
}

TEST(EulerMaruyama, StateDependentDriftConvergesToOuMean) {
  // Ornstein–Uhlenbeck dy = -θ y dt + σ dw: E y(t) = y0 e^{-θ t}. Euler has
  // O(h) weak bias here, so use a fine mesh and a loose tolerance.
  SdeSystem System;
  System.Dimension = 1;
  System.NoiseDimension = 1;
  const double Theta = 1.0, Sigma = 0.5;
  System.Drift = [Theta](double, const double *State, double *Out) {
    Out[0] = -Theta * State[0];
  };
  System.Diffusion = [Sigma](double, const double *, double *Out) {
    Out[0] = Sigma;
  };
  EulerMaruyama Integrator(System, 0.002);
  Lcg128 Source;
  EstimatorMatrix Estimate(1, 1);
  const std::vector<double> Initial{2.0};
  for (int Trajectory = 0; Trajectory < 4000; ++Trajectory) {
    std::vector<double> Final =
        Integrator.simulateToEnd(Source, Initial, 1.0);
    Estimate.accumulate(Final.data());
  }
  EXPECT_NEAR(Estimate.entryStatistics(0, 0).Mean, 2.0 * std::exp(-1.0),
              0.03);
}

TEST(PaperDiffusionProblem, OutputTimesMatchPaper) {
  std::vector<double> Times = PaperDiffusionProblem::outputTimes();
  ASSERT_EQ(Times.size(), 1000u);
  EXPECT_DOUBLE_EQ(Times.front(), 0.1);
  EXPECT_DOUBLE_EQ(Times.back(), 100.0);
  EXPECT_DOUBLE_EQ(Times[499], 50.0);
}

TEST(PaperDiffusionProblem, RealizationHasPaperShape) {
  Lcg128 Source;
  std::vector<double> Realization(PaperDiffusionProblem::OutputCount *
                                  PaperDiffusionProblem::Dimension);
  PaperDiffusionProblem::simulateRealization(Source, 0.01,
                                             Realization.data());
  // Values must be finite and not absurdly far from the drift line.
  for (size_t Row = 0; Row < 1000; Row += 111) {
    const double Time = double(Row + 1) * 0.1;
    EXPECT_TRUE(std::isfinite(Realization[Row * 2 + 0]));
    EXPECT_TRUE(std::isfinite(Realization[Row * 2 + 1]));
    // Component 1 drifts like 1 - 0.5 t with noise sd ~ sqrt(1.04 t).
    EXPECT_NEAR(Realization[Row * 2 + 1], -1.0 - 0.5 * Time,
                8.0 * std::sqrt(1.04 * Time) + 1.0);
  }
}

TEST(PaperDiffusionProblem, AveragedRealizationsMatchExactMeans) {
  // The §4 experiment end-to-end, small scale: after averaging, entry
  // (i, j) must estimate E y_j(t_i) within the reported error.
  LinearSdeSystem Linear = PaperDiffusionProblem::makeSystem();
  Lcg128 Source;
  EstimatorMatrix Estimate(PaperDiffusionProblem::OutputCount,
                           PaperDiffusionProblem::Dimension);
  std::vector<double> Realization(Estimate.entryCount());
  for (int Trajectory = 0; Trajectory < 400; ++Trajectory) {
    PaperDiffusionProblem::simulateRealization(Source, 0.02,
                                               Realization.data());
    Estimate.accumulate(Realization);
  }
  for (size_t Row : {0u, 99u, 499u, 999u}) {
    const double Time = double(Row + 1) * 0.1;
    for (size_t Column = 0; Column < 2; ++Column) {
      EntryStatistics Stats = Estimate.entryStatistics(Row, Column);
      const double Exact = Linear.exactMean(Column, Time);
      EXPECT_NEAR(Stats.Mean, Exact, Stats.AbsoluteError + 1e-6)
          << "entry (" << Row << "," << Column << ")";
    }
  }
}

} // namespace
} // namespace parmonc
