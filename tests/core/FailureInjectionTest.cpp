//===- tests/core/FailureInjectionTest.cpp - Crash & corruption paths -----===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The resumption/manaver machinery exists for jobs that die (§3.4); these
// tests inject the failure modes that design must survive: corrupted or
// truncated checkpoints, stale results after a simulated kill, partial
// subtotal sets, and hostile bytes in every file format.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"

#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <limits>

namespace parmonc {
namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("parmonc_fail_" + Name + "_" + std::to_string(Counter++)))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
  const std::string &path() const { return Path; }

private:
  static inline int Counter = 0;
  std::string Path;
};

void uniformRealization(RandomSource &Source, double *Out) {
  Out[0] = Source.nextUniform();
}

RunConfig smallConfig(const std::string &WorkDir) {
  RunConfig Config;
  Config.MaxSampleVolume = 500;
  Config.WorkDir = WorkDir;
  return Config;
}

TEST(FailureInjection, ResumeFallsBackToPreviousGenerationOnCorruption) {
  // The run rotates every checkpoint generation to checkpoint.dat.prev, so
  // overwriting the primary with garbage must NOT kill the resume — the
  // fallback loads the previous generation and reports it.
  ScratchDir Dir("corrupt");
  ASSERT_TRUE(runSimulation(uniformRealization, smallConfig(Dir.path()))
                  .isOk());
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(fileExists(ResultsStore::backupPath(Store.checkpointPath())));
  ASSERT_TRUE(
      writeFileAtomic(Store.checkpointPath(), "not a snapshot\n").isOk());

  RunConfig Resume = smallConfig(Dir.path());
  Resume.Resume = true;
  Resume.SequenceNumber = 1;
  Result<RunReport> Report = runSimulation(uniformRealization, Resume);
  ASSERT_TRUE(Report.isOk()) << Report.status().toString();
  EXPECT_TRUE(Report.value().ResumedFromBackup);
}

TEST(FailureInjection, ResumeRejectsCorruptedCheckpointWithoutBackup) {
  // With the previous generation gone too, a checkpoint that fails its
  // integrity check must never be loaded: the resume is refused with the
  // primary's error.
  ScratchDir Dir("corruptnoprev");
  ASSERT_TRUE(runSimulation(uniformRealization, smallConfig(Dir.path()))
                  .isOk());
  ResultsStore Store(Dir.path());
  std::filesystem::remove(ResultsStore::backupPath(Store.checkpointPath()));
  ASSERT_TRUE(
      writeFileAtomic(Store.checkpointPath(), "not a snapshot\n").isOk());

  RunConfig Resume = smallConfig(Dir.path());
  Resume.Resume = true;
  Resume.SequenceNumber = 1;
  Result<RunReport> Report = runSimulation(uniformRealization, Resume);
  ASSERT_FALSE(Report.isOk());
  EXPECT_EQ(Report.status().code(), StatusCode::ParseError);
}

TEST(FailureInjection, ResumeRejectsTruncatedCheckpointWithoutBackup) {
  // A short read of a sealed checkpoint is detected by the byte count in
  // the seal line and reported as an IoError naming both sizes.
  ScratchDir Dir("truncated");
  ASSERT_TRUE(runSimulation(uniformRealization, smallConfig(Dir.path()))
                  .isOk());
  ResultsStore Store(Dir.path());
  std::filesystem::remove(ResultsStore::backupPath(Store.checkpointPath()));
  std::string Contents =
      readFileToString(Store.checkpointPath()).value();
  ASSERT_TRUE(writeFileAtomic(Store.checkpointPath(),
                              Contents.substr(0, Contents.size() / 3))
                  .isOk());

  Result<RunReport> Report = [&] {
    RunConfig Resume = smallConfig(Dir.path());
    Resume.Resume = true;
    Resume.SequenceNumber = 1;
    return runSimulation(uniformRealization, Resume);
  }();
  ASSERT_FALSE(Report.isOk());
  EXPECT_EQ(Report.status().code(), StatusCode::IoError);
  EXPECT_NE(Report.status().message().find("short read"),
            std::string::npos)
      << Report.status().toString();
}

TEST(FailureInjection, CheckpointWithNegativeVolumeIsRejected) {
  ScratchDir Dir("negvolume");
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  ASSERT_TRUE(writeFileAtomic(Store.checkpointPath(),
                              "seqnum 0\nshape 1 1\nvolume -5\n"
                              "compute_seconds 0.0\nsums 1.0\nsquares 1.0\n")
                  .isOk());
  RunConfig Resume = smallConfig(Dir.path());
  Resume.Resume = true;
  Resume.SequenceNumber = 1;
  EXPECT_FALSE(runSimulation(uniformRealization, Resume).isOk());
}

TEST(FailureInjection, ManaverRecoversAKilledJob) {
  // Simulate a kill: run normally (which leaves base + subtotals +
  // checkpoint), then delete the results files and the checkpoint — as if
  // the collector died before its final save. manaver must rebuild
  // everything from base.dat + rank subtotals.
  ScratchDir Dir("killed");
  RunConfig Config = smallConfig(Dir.path());
  Config.ProcessorCount = 3;
  Config.MaxSampleVolume = 900;
  ASSERT_TRUE(runSimulation(uniformRealization, Config).isOk());

  ResultsStore Store(Dir.path());
  const std::string MeansBefore =
      readFileToString(Store.meansPath()).value();
  std::filesystem::remove(Store.meansPath());
  std::filesystem::remove(Store.confidencePath());
  std::filesystem::remove(Store.logPath());
  std::filesystem::remove(Store.checkpointPath());

  Result<MomentSnapshot> Recovered = runManualAverage(Store);
  ASSERT_TRUE(Recovered.isOk()) << Recovered.status().toString();
  EXPECT_EQ(Recovered.value().Moments.sampleVolume(), 900);
  // The rebuilt means must equal the pre-kill means: the subtotal files
  // contain the full final state of each rank.
  EXPECT_EQ(readFileToString(Store.meansPath()).value(), MeansBefore);
  EXPECT_TRUE(fileExists(Store.checkpointPath()));
}

TEST(FailureInjection, ManaverRefusesCorruptedSubtotalWithoutBackup) {
  ScratchDir Dir("badsubtotal");
  RunConfig Config = smallConfig(Dir.path());
  Config.ProcessorCount = 2;
  ASSERT_TRUE(runSimulation(uniformRealization, Config).isOk());
  ResultsStore Store(Dir.path());
  std::filesystem::remove(ResultsStore::backupPath(Store.subtotalPath(1)));
  ASSERT_TRUE(
      writeFileAtomic(Store.subtotalPath(1), "garbage bytes\n").isOk());
  // A corrupted subtotal with no previous generation is a hard error
  // (silently dropping volume would corrupt the statistics); manaver must
  // refuse.
  EXPECT_FALSE(runManualAverage(Store).isOk());
}

TEST(FailureInjection, ManaverRecoversCorruptedSubtotalFromBackup) {
  // When the subtotal's previous generation survives, manaver uses it and
  // reports which primaries needed the fallback.
  ScratchDir Dir("badsubtotalprev");
  RunConfig Config = smallConfig(Dir.path());
  Config.ProcessorCount = 2;
  // A 1 ns pass period persists the subtotal at every send, so each rank
  // writes (and rotates) its file many times.
  Config.PassPeriodNanos = 1;
  ASSERT_TRUE(runSimulation(uniformRealization, Config).isOk());
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(fileExists(ResultsStore::backupPath(Store.subtotalPath(1))));
  ASSERT_TRUE(
      writeFileAtomic(Store.subtotalPath(1), "garbage bytes\n").isOk());
  std::vector<std::string> RecoveredPaths;
  Result<MomentSnapshot> Recovered =
      runManualAverage(Store, 3.0, &RecoveredPaths);
  ASSERT_TRUE(Recovered.isOk()) << Recovered.status().toString();
  ASSERT_EQ(RecoveredPaths.size(), 1u);
  EXPECT_EQ(RecoveredPaths[0], Store.subtotalPath(1));
  EXPECT_GT(Recovered.value().Moments.sampleVolume(), 0);
}

TEST(FailureInjection, ManaverRejectsMixedShapes) {
  ScratchDir Dir("mixedshape");
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  MomentSnapshot Narrow;
  Narrow.Moments = EstimatorMatrix(1, 1);
  Narrow.Moments.accumulate(std::vector<double>{1.0});
  MomentSnapshot Wide;
  Wide.Moments = EstimatorMatrix(1, 2);
  Wide.Moments.accumulate(std::vector<double>{1.0, 2.0});
  ASSERT_TRUE(Store.writeSnapshot(Store.subtotalPath(0), Narrow).isOk());
  ASSERT_TRUE(Store.writeSnapshot(Store.subtotalPath(1), Wide).isOk());
  EXPECT_FALSE(runManualAverage(Store).isOk());
}

TEST(FailureInjection, FreshRunAfterCorruptionStartsClean) {
  // Even with a corrupted checkpoint lying around, res = 0 must succeed:
  // the engine clears previous state rather than reading it.
  ScratchDir Dir("freshclean");
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  ASSERT_TRUE(
      writeFileAtomic(Store.checkpointPath(), "corrupted\n").isOk());
  Result<RunReport> Report =
      runSimulation(uniformRealization, smallConfig(Dir.path()));
  ASSERT_TRUE(Report.isOk());
  EXPECT_EQ(Report.value().TotalSampleVolume, 500);
}

TEST(FailureInjection, RealizationWritingNanStillCompletes) {
  // A user routine emitting NaN must not wedge the engine; the NaN
  // propagates into the statistics (visible to the user) but the run
  // machinery completes and files are written.
  ScratchDir Dir("nan");
  auto NanRealization = [](RandomSource &Source, double *Out) {
    Out[0] = Source.nextUniform() < 0.5
                 ? std::numeric_limits<double>::quiet_NaN()
                 : 1.0;
  };
  Result<RunReport> Report =
      runSimulation(NanRealization, smallConfig(Dir.path()));
  ASSERT_TRUE(Report.isOk());
  EXPECT_EQ(Report.value().TotalSampleVolume, 500);
  ResultsStore Store(Dir.path());
  EXPECT_TRUE(fileExists(Store.meansPath()));
}

TEST(FailureInjection, UnwritableWorkDirFailsCleanly) {
  Result<RunReport> Report = runSimulation(
      uniformRealization, smallConfig("/proc/definitely/not/writable"));
  ASSERT_FALSE(Report.isOk());
  EXPECT_EQ(Report.status().code(), StatusCode::IoError);
}

} // namespace
} // namespace parmonc
