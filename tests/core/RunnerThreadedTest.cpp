//===- tests/core/RunnerThreadedTest.cpp - Threaded engine equality -------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The threaded realization engine's contract: with a fixed stream
// assignment (DeterministicSchedule), running N worker threads per rank
// consumes exactly the substreams the serial engine would, and — because
// the workloads here produce integer-valued observables whose sums are
// exact in double precision — the merged moment sums are bit-identical to
// the serial run, thread count and scheduling notwithstanding.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"

#include "parmonc/fault/FaultPlan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

namespace parmonc {
namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("parmonc_threaded_" + Name + "_" + std::to_string(Counter++)))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
  const std::string &path() const { return Path; }

private:
  static inline int Counter = 0;
  std::string Path;
};

/// Integer-valued 1x2 realization: [indicator(u < 1/2), floor(16 u)].
/// Every accumulated sum (values and squares) is an integer well inside
/// 2^53, so floating-point addition over them is exact and associative —
/// merge order cannot change the sums.
void integerRealization(RandomSource &Source, double *Out) {
  const double Draw = Source.nextUniform();
  Out[0] = Draw < 0.5 ? 1.0 : 0.0;
  Out[1] = std::floor(Draw * 16.0);
}

RunConfig threadedConfig(const std::string &WorkDir, int Threads) {
  RunConfig Config;
  Config.Rows = 1;
  Config.Columns = 2;
  Config.MaxSampleVolume = 203; // odd on purpose: uneven quota remainders
  Config.ProcessorCount = 2;
  Config.WorkerThreadsPerRank = Threads;
  Config.DeterministicSchedule = true;
  Config.PassPeriodNanos = 1'000'000;
  Config.AveragePeriodNanos = 2'000'000;
  Config.WorkDir = WorkDir;
  return Config;
}

/// Runs to completion and returns the final checkpoint snapshot.
MomentSnapshot runAndLoad(const RunConfig &Config, RunReport *ReportOut) {
  Result<RunReport> Outcome = runSimulation(integerRealization, Config);
  EXPECT_TRUE(Outcome.isOk()) << Outcome.status().toString();
  if (ReportOut)
    *ReportOut = Outcome.value();
  ResultsStore Store(Config.WorkDir);
  Result<MomentSnapshot> Snapshot =
      Store.readSnapshot(Store.checkpointPath()); // mclint: allow(R7): asserting on the sealed generation directly
  EXPECT_TRUE(Snapshot.isOk()) << Snapshot.status().toString();
  return std::move(Snapshot).value();
}

void expectIdenticalSums(const MomentSnapshot &A, const MomentSnapshot &B) {
  ASSERT_EQ(A.Moments.sampleVolume(), B.Moments.sampleVolume());
  ASSERT_EQ(A.Moments.valueSums().size(), B.Moments.valueSums().size());
  for (size_t Index = 0; Index < A.Moments.valueSums().size(); ++Index) {
    EXPECT_EQ(A.Moments.valueSums()[Index], B.Moments.valueSums()[Index])
        << "value sum " << Index;
    EXPECT_EQ(A.Moments.squareSums()[Index], B.Moments.squareSums()[Index])
        << "square sum " << Index;
  }
}

TEST(RunnerThreaded, FourThreadsMatchSerialMomentSumsBitExactly) {
  ScratchDir SerialDir("serial"), ThreadedDir("threads4");
  RunReport SerialReport, ThreadedReport;
  const MomentSnapshot Serial =
      runAndLoad(threadedConfig(SerialDir.path(), 1), &SerialReport);
  const MomentSnapshot Threaded =
      runAndLoad(threadedConfig(ThreadedDir.path(), 4), &ThreadedReport);

  expectIdenticalSums(Serial, Threaded);
  EXPECT_EQ(SerialReport.TotalSampleVolume, ThreadedReport.TotalSampleVolume);
  EXPECT_EQ(SerialReport.PerProcessorVolumes,
            ThreadedReport.PerProcessorVolumes);
  // Identical sums over identical volumes: the published errors match too.
  EXPECT_EQ(SerialReport.MaxAbsoluteError, ThreadedReport.MaxAbsoluteError);
}

TEST(RunnerThreaded, EveryThreadCountAgrees) {
  ScratchDir BaseDir("base");
  const MomentSnapshot Serial =
      runAndLoad(threadedConfig(BaseDir.path(), 1), nullptr);
  for (int Threads : {2, 3, 5, 8}) {
    ScratchDir Dir("t" + std::to_string(Threads));
    const MomentSnapshot Threaded =
        runAndLoad(threadedConfig(Dir.path(), Threads), nullptr);
    expectIdenticalSums(Serial, Threaded);
  }
}

TEST(RunnerThreaded, RepeatedThreadedRunsAreDeterministic) {
  ScratchDir FirstDir("rep1"), SecondDir("rep2");
  const MomentSnapshot First =
      runAndLoad(threadedConfig(FirstDir.path(), 4), nullptr);
  const MomentSnapshot Second =
      runAndLoad(threadedConfig(SecondDir.path(), 4), nullptr);
  expectIdenticalSums(First, Second);
}

TEST(RunnerThreaded, DynamicScheduleReachesFullVolume) {
  // Without the deterministic quota split, threads claim from the shared
  // counter; the total volume must still land exactly on maxsv.
  ScratchDir Dir("dynamic");
  RunConfig Config = threadedConfig(Dir.path(), 4);
  Config.DeterministicSchedule = false;
  RunReport Report;
  (void)runAndLoad(Config, &Report);
  EXPECT_EQ(Report.TotalSampleVolume, Config.MaxSampleVolume);
}

TEST(RunnerThreaded, ThreadedRunResumesLikeSerial) {
  // Checkpoint interop: a serial run can resume a threaded run's
  // checkpoint and vice versa — snapshots carry no thread-count imprint.
  ScratchDir Dir("resume");
  RunConfig First = threadedConfig(Dir.path(), 4);
  (void)runAndLoad(First, nullptr);

  RunConfig Second = threadedConfig(Dir.path(), 1);
  Second.Resume = true;
  Second.SequenceNumber = 1; // a resumed run must switch experiments
  RunReport Report;
  const MomentSnapshot Merged = runAndLoad(Second, &Report);
  EXPECT_EQ(Merged.Moments.sampleVolume(), 2 * First.MaxSampleVolume);
  EXPECT_EQ(Report.NewSampleVolume, Second.MaxSampleVolume);
}

TEST(RunnerThreaded, ValidateRejectsBadThreadCounts) {
  ScratchDir Dir("validate");
  RunConfig Config = threadedConfig(Dir.path(), 0);
  EXPECT_FALSE(Config.validate().isOk());
  Config.WorkerThreadsPerRank = -3;
  EXPECT_FALSE(Config.validate().isOk());
  Config.WorkerThreadsPerRank = 1;
  EXPECT_TRUE(Config.validate().isOk());
}

TEST(RunnerThreaded, ValidateRejectsWorkerCrashesWithThreads) {
  // Injected worker crashes model whole-rank death; combining them with
  // intra-rank threading is rejected up front rather than half-supported.
  ScratchDir Dir("faults");
  fault::FaultPlan Plan;
  fault::WorkerCrashSpec Crash;
  Crash.Rank = 1;
  Crash.AfterRealizations = 5;
  Plan.WorkerCrashes.push_back(Crash);

  RunConfig Config = threadedConfig(Dir.path(), 4);
  Config.Faults = &Plan;
  EXPECT_FALSE(Config.validate().isOk());
  Config.WorkerThreadsPerRank = 1;
  EXPECT_TRUE(Config.validate().isOk());
}

TEST(RunnerThreaded, MoreThreadsThanQuotaStillCompletes) {
  // 3 realizations over 8 threads on 1 rank: most threads have a zero
  // quota and must still hand in an (empty) final so the rank terminates.
  ScratchDir Dir("tiny");
  RunConfig Config = threadedConfig(Dir.path(), 8);
  Config.ProcessorCount = 1;
  Config.MaxSampleVolume = 3;
  RunReport Report;
  (void)runAndLoad(Config, &Report);
  EXPECT_EQ(Report.TotalSampleVolume, 3);
}

} // namespace
} // namespace parmonc
