//===- tests/core/CApiTest.cpp - Paper-signature C API tests --------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/CApi.h"

#include "parmonc/core/ResultsStore.h"
#include "parmonc/rng/Lcg128.h"

#include <gtest/gtest.h>

// mclint: allow-file(R6): these tests exercise the raw generator
// deliberately, validating the stream algebra itself.

#include <cstdlib>
#include <filesystem>

namespace parmonc {
namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("parmonc_capi_" + Name + "_" + std::to_string(Counter++)))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
  const std::string &path() const { return Path; }

private:
  static inline int Counter = 0;
  std::string Path;
};

/// A realization routine written exactly as the paper shows: it only calls
/// rnd128() and fills the output buffer.
extern "C" void scalarRealization(double *Out) { Out[0] = rnd128(); }

extern "C" void pairRealization(double *Out) {
  const double U = rnd128();
  Out[0] = U;
  Out[1] = U * U;
}

TEST(CApi, Rnd128StandaloneMatchesLcg128) {
  // Outside a parmoncc run, rnd128() is the plain general sequence.
  // (The fallback stream is thread-local and already consumed by other
  // tests in this binary, so compare increments, not absolutes: draw two
  // values and check both are in (0,1) and distinct.)
  const double First = rnd128();
  const double Second = rnd128();
  EXPECT_GT(First, 0.0);
  EXPECT_LT(First, 1.0);
  EXPECT_NE(First, Second);
}

TEST(CApi, SetThreadRandomSourceRedirectsRnd128) {
  Lcg128 Stream;
  Lcg128 Reference;
  setThreadRandomSource(&Stream);
  EXPECT_DOUBLE_EQ(rnd128(), Reference.nextUniform());
  EXPECT_DOUBLE_EQ(rnd128(), Reference.nextUniform());
  setThreadRandomSource(nullptr);
}

TEST(CApi, ParmonccRejectsNullAndBadArguments) {
  int NRow = 1, NCol = 1, Res = 0, SeqNum = 0, PerPass = 0, PerAver = 0;
  long long MaxSv = 10;
  EXPECT_NE(parmoncc(nullptr, &NRow, &NCol, &MaxSv, &Res, &SeqNum, &PerPass,
                     &PerAver),
            0);
  EXPECT_NE(parmoncc(scalarRealization, nullptr, &NCol, &MaxSv, &Res,
                     &SeqNum, &PerPass, &PerAver),
            0);
  int BadRow = 0;
  EXPECT_NE(parmoncc(scalarRealization, &BadRow, &NCol, &MaxSv, &Res,
                     &SeqNum, &PerPass, &PerAver),
            0);
  long long BadMax = 0;
  EXPECT_NE(parmoncc(scalarRealization, &NRow, &NCol, &BadMax, &Res,
                     &SeqNum, &PerPass, &PerAver),
            0);
}

TEST(CApi, ParmonccRunsTheScalarExample) {
  ScratchDir Dir("scalar");
  setenv("PARMONC_WORKDIR", Dir.path().c_str(), 1);
  setenv("PARMONC_NP", "2", 1);

  int NRow = 1, NCol = 1, Res = 0, SeqNum = 0, PerPass = 0, PerAver = 0;
  long long MaxSv = 4000;
  ASSERT_EQ(parmoncc(scalarRealization, &NRow, &NCol, &MaxSv, &Res, &SeqNum,
                     &PerPass, &PerAver),
            0);

  ResultsStore Store(Dir.path());
  Result<std::vector<double>> Means = Store.readMeans(1, 1);
  ASSERT_TRUE(Means.isOk());
  EXPECT_NEAR(Means.value()[0], 0.5, 0.02);

  unsetenv("PARMONC_WORKDIR");
  unsetenv("PARMONC_NP");
}

TEST(CApi, ParmonccMatrixAndResumeFlow) {
  // The paper's §4 calling pattern: first a fresh run with seqnum=0, then
  // a resumed run with res=1 and a different seqnum.
  ScratchDir Dir("resume");
  setenv("PARMONC_WORKDIR", Dir.path().c_str(), 1);
  setenv("PARMONC_NP", "2", 1);

  int NRow = 1, NCol = 2, Res = 0, SeqNum = 0, PerPass = 0, PerAver = 0;
  long long MaxSv = 2000;
  ASSERT_EQ(parmoncc(pairRealization, &NRow, &NCol, &MaxSv, &Res, &SeqNum,
                     &PerPass, &PerAver),
            0);

  Res = 1;
  SeqNum = 2; // as in the paper's example
  ASSERT_EQ(parmoncc(pairRealization, &NRow, &NCol, &MaxSv, &Res, &SeqNum,
                     &PerPass, &PerAver),
            0);

  ResultsStore Store(Dir.path());
  Result<MomentSnapshot> Checkpoint =
      Store.readSnapshot(Store.checkpointPath()); // mclint: allow(R7): asserting on the sealed generation directly
  ASSERT_TRUE(Checkpoint.isOk());
  EXPECT_EQ(Checkpoint.value().Moments.sampleVolume(), 4000);
  Result<std::vector<double>> Means = Store.readMeans(1, 2);
  ASSERT_TRUE(Means.isOk());
  EXPECT_NEAR(Means.value()[0], 0.5, 0.02);
  EXPECT_NEAR(Means.value()[1], 1.0 / 3.0, 0.02);

  // Resuming with the same seqnum must fail, per §3.2.
  EXPECT_NE(parmoncc(pairRealization, &NRow, &NCol, &MaxSv, &Res, &SeqNum,
                     &PerPass, &PerAver),
            0);

  unsetenv("PARMONC_WORKDIR");
  unsetenv("PARMONC_NP");
}

TEST(CApi, FortranBindingMatchesCBinding) {
  // parmoncf_ is the same engine behind the gfortran-mangled symbol.
  ScratchDir Dir("fortran");
  setenv("PARMONC_WORKDIR", Dir.path().c_str(), 1);
  setenv("PARMONC_NP", "1", 1);

  int NRow = 1, NCol = 1, Res = 0, SeqNum = 0, PerPass = 0, PerAver = 0;
  long long MaxSv = 1000;
  ASSERT_EQ(parmoncf_(scalarRealization, &NRow, &NCol, &MaxSv, &Res,
                      &SeqNum, &PerPass, &PerAver),
            0);
  ResultsStore Store(Dir.path());
  EXPECT_NEAR(Store.readMeans(1, 1).value()[0], 0.5, 0.05);

  unsetenv("PARMONC_WORKDIR");
  unsetenv("PARMONC_NP");
}

TEST(CApi, FortranRnd128AliasProducesUniforms) {
  const double Value = rnd128_();
  EXPECT_GT(Value, 0.0);
  EXPECT_LT(Value, 1.0);
}

} // namespace
} // namespace parmonc
