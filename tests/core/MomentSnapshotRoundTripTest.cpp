//===- tests/core/MomentSnapshotRoundTripTest.cpp - Serialization property -===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Property test: MomentSnapshot survives both serializations — the text
// checkpoint format and the binary mailbox format — *bit-exactly*, for
// randomized shapes and for the nastiest double values (±DBL_MAX,
// subnormals, negative zero). Bit-exactness is not pedantry here: the
// paper's resumption (§3.2) and manaver recovery (§3.4) re-merge saved raw
// sums with live ones, so any rounding in the save/load cycle would make a
// resumed run diverge from an uninterrupted one.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/ResultsStore.h"
#include "parmonc/rng/Baselines.h"

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstring>

using namespace parmonc;

namespace {

/// Bitwise equality: distinguishes -0.0 from 0.0 and compares NaN-free
/// payloads exactly.
bool sameBits(double A, double B) {
  uint64_t BitsA, BitsB;
  std::memcpy(&BitsA, &A, sizeof BitsA);
  std::memcpy(&BitsB, &B, sizeof BitsB);
  return BitsA == BitsB;
}

/// A hostile-but-valid double: mixes magnitudes from subnormal to DBL_MAX,
/// both signs, and exact zeros of both signs.
double hostileDouble(SplitMix64 &Rng) {
  switch (Rng.nextBits64() % 8) {
  case 0:
    return 0.0;
  case 1:
    return -0.0;
  case 2:
    return DBL_MAX;
  case 3:
    return -DBL_MAX;
  case 4:
    return DBL_MIN / 4.0; // subnormal
  case 5:
    return -DBL_TRUE_MIN; // smallest subnormal, negative
  default: {
    // Random finite double via random bits with a bounded exponent.
    const uint64_t Mantissa = Rng.nextBits64() & ((uint64_t(1) << 52) - 1);
    const uint64_t Exponent = 1 + Rng.nextBits64() % 2045; // avoid inf/nan
    const uint64_t Sign = (Rng.nextBits64() & 1) << 63;
    const uint64_t Bits = Sign | (Exponent << 52) | Mantissa;
    double Value;
    std::memcpy(&Value, &Bits, sizeof Value);
    return Value;
  }
  }
}

MomentSnapshot randomSnapshot(SplitMix64 &Rng, bool WithHistograms) {
  const size_t Rows = 1 + Rng.nextBits64() % 4;
  const size_t Columns = 1 + Rng.nextBits64() % 5;
  const int64_t Volume = int64_t(Rng.nextBits64() % 1'000'000);

  std::vector<double> Sums, Squares;
  for (size_t Index = 0; Index < Rows * Columns; ++Index) {
    Sums.push_back(hostileDouble(Rng));
    // Square sums must be non-negative (enforced by fromRawSums).
    Squares.push_back(std::fabs(hostileDouble(Rng)));
  }

  Result<EstimatorMatrix> Moments = EstimatorMatrix::fromRawSums(
      Rows, Columns, std::move(Sums), std::move(Squares), Volume);
  EXPECT_TRUE(Moments.isOk()) << Moments.status().toString();

  MomentSnapshot Snapshot;
  Snapshot.SequenceNumber = Rng.nextBits64();
  Snapshot.ComputeSeconds = std::fabs(hostileDouble(Rng));
  Snapshot.Moments = std::move(Moments).value();
  if (WithHistograms) {
    const size_t HistogramCount = 1 + Rng.nextBits64() % 3;
    for (size_t Index = 0; Index < HistogramCount; ++Index) {
      HistogramEstimator Histogram(-2.0, 3.0, 1 + Rng.nextBits64() % 32);
      const size_t SampleCount = Rng.nextBits64() % 200;
      for (size_t Sample = 0; Sample < SampleCount; ++Sample)
        Histogram.add(-4.0 + double(Rng.nextBits64() % 1000) / 125.0);
      Snapshot.Histograms.push_back(std::move(Histogram));
    }
  }
  return Snapshot;
}

void expectBitIdentical(const MomentSnapshot &Original,
                        const MomentSnapshot &Restored) {
  EXPECT_EQ(Original.SequenceNumber, Restored.SequenceNumber);
  EXPECT_TRUE(sameBits(Original.ComputeSeconds, Restored.ComputeSeconds))
      << Original.ComputeSeconds << " vs " << Restored.ComputeSeconds;
  ASSERT_EQ(Original.Moments.rows(), Restored.Moments.rows());
  ASSERT_EQ(Original.Moments.columns(), Restored.Moments.columns());
  EXPECT_EQ(Original.Moments.sampleVolume(), Restored.Moments.sampleVolume());
  for (size_t Index = 0; Index < Original.Moments.valueSums().size();
       ++Index) {
    EXPECT_TRUE(sameBits(Original.Moments.valueSums()[Index],
                         Restored.Moments.valueSums()[Index]))
        << "sum " << Index;
    EXPECT_TRUE(sameBits(Original.Moments.squareSums()[Index],
                         Restored.Moments.squareSums()[Index]))
        << "square " << Index;
  }
  ASSERT_EQ(Original.Histograms.size(), Restored.Histograms.size());
  for (size_t Index = 0; Index < Original.Histograms.size(); ++Index) {
    const HistogramEstimator &Before = Original.Histograms[Index];
    const HistogramEstimator &After = Restored.Histograms[Index];
    EXPECT_TRUE(sameBits(Before.low(), After.low()));
    EXPECT_TRUE(sameBits(Before.high(), After.high()));
    ASSERT_EQ(Before.binCount(), After.binCount());
    EXPECT_EQ(Before.underflowCount(), After.underflowCount());
    EXPECT_EQ(Before.overflowCount(), After.overflowCount());
    for (size_t Bin = 0; Bin < Before.binCount(); ++Bin)
      EXPECT_EQ(Before.countOf(Bin), After.countOf(Bin)) << "bin " << Bin;
  }
}

TEST(MomentSnapshotRoundTrip, TextFormatIsBitExact) {
  SplitMix64 Rng(0xC0FFEEull);
  for (int Trial = 0; Trial < 50; ++Trial) {
    const MomentSnapshot Original = randomSnapshot(Rng, Trial % 2 == 0);
    Result<MomentSnapshot> Restored =
        MomentSnapshot::fromFileContents(Original.toFileContents());
    ASSERT_TRUE(Restored.isOk())
        << "trial " << Trial << ": " << Restored.status().toString();
    expectBitIdentical(Original, Restored.value());
  }
}

TEST(MomentSnapshotRoundTrip, BinaryFormatIsBitExact) {
  SplitMix64 Rng(0xBADC0DEull);
  for (int Trial = 0; Trial < 50; ++Trial) {
    const MomentSnapshot Original = randomSnapshot(Rng, Trial % 2 == 1);
    Result<MomentSnapshot> Restored =
        MomentSnapshot::fromBytes(Original.toBytes());
    ASSERT_TRUE(Restored.isOk())
        << "trial " << Trial << ": " << Restored.status().toString();
    expectBitIdentical(Original, Restored.value());
  }
}

TEST(MomentSnapshotRoundTrip, TextSerializationIsStable) {
  // Serializing the restored snapshot reproduces the original text byte
  // for byte — the stronger form of round-trip stability that makes
  // checkpoint files diffable across save/load cycles.
  SplitMix64 Rng(0x5EEDull);
  for (int Trial = 0; Trial < 20; ++Trial) {
    const MomentSnapshot Original = randomSnapshot(Rng, true);
    const std::string FirstText = Original.toFileContents();
    Result<MomentSnapshot> Restored =
        MomentSnapshot::fromFileContents(FirstText);
    ASSERT_TRUE(Restored.isOk()) << Restored.status().toString();
    EXPECT_EQ(FirstText, Restored.value().toFileContents());
  }
}

} // namespace
