//===- tests/core/RunnerTest.cpp - Engine integration tests ---------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"

#include "parmonc/sde/Distributions.h"
#include "parmonc/support/Clock.h"
#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <thread> // mclint: allow(R8): sleep/yield helpers only

namespace parmonc {
namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("parmonc_runner_" + Name + "_" + std::to_string(Counter++)))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
  const std::string &path() const { return Path; }

private:
  static inline int Counter = 0;
  std::string Path;
};

/// Scalar U(0,1) realization: the simplest possible random object.
void uniformRealization(RandomSource &Source, double *Out) {
  Out[0] = Source.nextUniform();
}

/// 1x3 realization: [u, u², exp(u)] — known expectations 1/2, 1/3, e-1.
void momentsRealization(RandomSource &Source, double *Out) {
  const double U = Source.nextUniform();
  Out[0] = U;
  Out[1] = U * U;
  Out[2] = std::exp(U);
}

RunConfig baseConfig(const std::string &WorkDir) {
  RunConfig Config;
  Config.Rows = 1;
  Config.Columns = 1;
  Config.MaxSampleVolume = 5000;
  Config.ProcessorCount = 1;
  Config.WorkDir = WorkDir;
  return Config;
}

TEST(Runner, RejectsInvalidConfigurations) {
  ScratchDir Dir("invalid");
  RunConfig Config = baseConfig(Dir.path());
  Config.MaxSampleVolume = 0;
  EXPECT_FALSE(runSimulation(uniformRealization, Config).isOk());

  Config = baseConfig(Dir.path());
  Config.ProcessorCount = 0;
  EXPECT_FALSE(runSimulation(uniformRealization, Config).isOk());

  Config = baseConfig(Dir.path());
  Config.Rows = 0;
  EXPECT_FALSE(runSimulation(uniformRealization, Config).isOk());

  Config = baseConfig(Dir.path());
  EXPECT_FALSE(runSimulation(RealizationFn(), Config).isOk());

  Config = baseConfig(Dir.path());
  Config.SequenceNumber = uint64_t(1) << 20; // > 2^10 experiments
  EXPECT_FALSE(runSimulation(uniformRealization, Config).isOk());
}

TEST(Runner, SingleProcessorComputesExactVolume) {
  ScratchDir Dir("volume");
  RunConfig Config = baseConfig(Dir.path());
  Result<RunReport> Report = runSimulation(uniformRealization, Config);
  ASSERT_TRUE(Report.isOk()) << Report.status().toString();
  EXPECT_EQ(Report.value().TotalSampleVolume, 5000);
  EXPECT_EQ(Report.value().NewSampleVolume, 5000);
  EXPECT_FALSE(Report.value().StoppedOnErrorTarget);
  EXPECT_FALSE(Report.value().StoppedOnTimeLimit);
  EXPECT_GE(Report.value().SavePointCount, 1);
}

TEST(Runner, EstimatesUniformMeanWithinReportedError) {
  ScratchDir Dir("mean");
  RunConfig Config = baseConfig(Dir.path());
  Config.MaxSampleVolume = 20000;
  Result<RunReport> Report = runSimulation(uniformRealization, Config);
  ASSERT_TRUE(Report.isOk());

  ResultsStore Store(Dir.path());
  Result<std::vector<double>> Means = Store.readMeans(1, 1);
  ASSERT_TRUE(Means.isOk());
  EXPECT_NEAR(Means.value()[0], 0.5, Report.value().MaxAbsoluteError);
  // ε ≈ 3·0.2887/sqrt(20000) ≈ 6.1e-3.
  EXPECT_NEAR(Report.value().MaxAbsoluteError, 6.1e-3, 2e-3);
}

TEST(Runner, MatrixEstimatesAllEntries) {
  ScratchDir Dir("matrix");
  RunConfig Config = baseConfig(Dir.path());
  Config.Columns = 3;
  Config.MaxSampleVolume = 40000;
  Result<RunReport> Report = runSimulation(momentsRealization, Config);
  ASSERT_TRUE(Report.isOk());
  ResultsStore Store(Dir.path());
  Result<std::vector<double>> Means = Store.readMeans(1, 3);
  ASSERT_TRUE(Means.isOk());
  EXPECT_NEAR(Means.value()[0], 0.5, 0.01);
  EXPECT_NEAR(Means.value()[1], 1.0 / 3.0, 0.01);
  EXPECT_NEAR(Means.value()[2], std::exp(1.0) - 1.0, 0.02);
}

TEST(Runner, MultiProcessorVolumeIsExactAndDistributed) {
  ScratchDir Dir("multi");
  RunConfig Config = baseConfig(Dir.path());
  Config.ProcessorCount = 4;
  Config.MaxSampleVolume = 8000;
  Result<RunReport> Report = runSimulation(uniformRealization, Config);
  ASSERT_TRUE(Report.isOk());
  EXPECT_EQ(Report.value().TotalSampleVolume, 8000);
  ASSERT_EQ(Report.value().PerProcessorVolumes.size(), 4u);
  // How evenly work spreads depends on the scheduler (on a single-core
  // host one thread may claim everything); what is guaranteed is that the
  // per-rank volumes are sane and add up exactly.
  int64_t Sum = 0;
  int RanksWithWork = 0;
  for (int64_t PerRank : Report.value().PerProcessorVolumes) {
    EXPECT_GE(PerRank, 0);
    RanksWithWork += PerRank > 0;
    Sum += PerRank;
  }
  EXPECT_EQ(Sum, 8000);
  EXPECT_GE(RanksWithWork, 1);
}

TEST(Runner, MultiProcessorMeanIsCorrect) {
  ScratchDir Dir("multimean");
  RunConfig Config = baseConfig(Dir.path());
  Config.ProcessorCount = 8;
  Config.MaxSampleVolume = 40000;
  Result<RunReport> Report = runSimulation(uniformRealization, Config);
  ASSERT_TRUE(Report.isOk());
  ResultsStore Store(Dir.path());
  double Mean = Store.readMeans(1, 1).value()[0];
  EXPECT_NEAR(Mean, 0.5, Report.value().MaxAbsoluteError);
}

TEST(Runner, SingleProcessorRunsAreReproducible) {
  // With M=1 the realization-to-stream assignment is deterministic, so two
  // fresh runs must produce byte-identical means.
  ScratchDir DirA("reproA"), DirB("reproB");
  RunConfig ConfigA = baseConfig(DirA.path());
  RunConfig ConfigB = baseConfig(DirB.path());
  ASSERT_TRUE(runSimulation(uniformRealization, ConfigA).isOk());
  ASSERT_TRUE(runSimulation(uniformRealization, ConfigB).isOk());
  EXPECT_EQ(readFileToString(ResultsStore(DirA.path()).meansPath()).value(),
            readFileToString(ResultsStore(DirB.path()).meansPath()).value());
}

TEST(Runner, DifferentSequenceNumbersGiveIndependentResults) {
  ScratchDir DirA("seqA"), DirB("seqB");
  RunConfig ConfigA = baseConfig(DirA.path());
  ConfigA.SequenceNumber = 0;
  RunConfig ConfigB = baseConfig(DirB.path());
  ConfigB.SequenceNumber = 1;
  ASSERT_TRUE(runSimulation(uniformRealization, ConfigA).isOk());
  ASSERT_TRUE(runSimulation(uniformRealization, ConfigB).isOk());
  const double MeanA =
      ResultsStore(DirA.path()).readMeans(1, 1).value()[0];
  const double MeanB =
      ResultsStore(DirB.path()).readMeans(1, 1).value()[0];
  EXPECT_NE(MeanA, MeanB); // different subsequences, different samples
  EXPECT_NEAR(MeanA, MeanB, 0.05); // but both estimate 1/2
}

TEST(Runner, ResumeAccumulatesVolumeExactly) {
  ScratchDir Dir("resume");
  RunConfig First = baseConfig(Dir.path());
  First.MaxSampleVolume = 3000;
  First.SequenceNumber = 0;
  ASSERT_TRUE(runSimulation(uniformRealization, First).isOk());

  RunConfig Second = baseConfig(Dir.path());
  Second.MaxSampleVolume = 2000;
  Second.SequenceNumber = 1;
  Second.Resume = true;
  Result<RunReport> Report = runSimulation(uniformRealization, Second);
  ASSERT_TRUE(Report.isOk()) << Report.status().toString();
  EXPECT_EQ(Report.value().TotalSampleVolume, 5000);
  EXPECT_EQ(Report.value().NewSampleVolume, 2000);

  // The checkpoint reflects the accumulated state.
  ResultsStore Store(Dir.path());
  Result<MomentSnapshot> Checkpoint =
      Store.readSnapshot(Store.checkpointPath()); // mclint: allow(R7): asserting on the sealed generation directly
  ASSERT_TRUE(Checkpoint.isOk());
  EXPECT_EQ(Checkpoint.value().Moments.sampleVolume(), 5000);
}

TEST(Runner, ResumedMeanMatchesPooledSimulation) {
  // Resume(2000 after 3000) must equal one 5000-realization experiment in
  // distribution; with M=1 and disjoint subsequences the mean must land
  // within the pooled error bound.
  ScratchDir Dir("resumepool");
  RunConfig First = baseConfig(Dir.path());
  First.MaxSampleVolume = 3000;
  ASSERT_TRUE(runSimulation(uniformRealization, First).isOk());
  RunConfig Second = baseConfig(Dir.path());
  Second.MaxSampleVolume = 2000;
  Second.SequenceNumber = 1;
  Second.Resume = true;
  Result<RunReport> Report = runSimulation(uniformRealization, Second);
  ASSERT_TRUE(Report.isOk());
  const double Mean =
      ResultsStore(Dir.path()).readMeans(1, 1).value()[0];
  EXPECT_NEAR(Mean, 0.5, Report.value().MaxAbsoluteError);
}

TEST(Runner, ResumeRequiresExistingCheckpoint) {
  ScratchDir Dir("resume_missing");
  RunConfig Config = baseConfig(Dir.path());
  Config.Resume = true;
  Config.SequenceNumber = 1;
  Result<RunReport> Report = runSimulation(uniformRealization, Config);
  ASSERT_FALSE(Report.isOk());
  EXPECT_EQ(Report.status().code(), StatusCode::FailedPrecondition);
}

TEST(Runner, ResumeRejectsSameSequenceNumber) {
  // §3.2: "this argument must be different from the same argument of the
  // previous use".
  ScratchDir Dir("resume_seq");
  RunConfig First = baseConfig(Dir.path());
  First.MaxSampleVolume = 100;
  ASSERT_TRUE(runSimulation(uniformRealization, First).isOk());
  RunConfig Second = baseConfig(Dir.path());
  Second.Resume = true;
  Second.SequenceNumber = First.SequenceNumber; // same -> reject
  Result<RunReport> Report = runSimulation(uniformRealization, Second);
  ASSERT_FALSE(Report.isOk());
  EXPECT_EQ(Report.status().code(), StatusCode::FailedPrecondition);
}

TEST(Runner, ResumeRejectsShapeMismatch) {
  ScratchDir Dir("resume_shape");
  RunConfig First = baseConfig(Dir.path());
  First.MaxSampleVolume = 100;
  ASSERT_TRUE(runSimulation(uniformRealization, First).isOk());
  RunConfig Second = baseConfig(Dir.path());
  Second.Columns = 3;
  Second.Resume = true;
  Second.SequenceNumber = 1;
  EXPECT_FALSE(runSimulation(momentsRealization, Second).isOk());
}

TEST(Runner, FreshRunDiscardsPreviousResults) {
  ScratchDir Dir("fresh");
  RunConfig First = baseConfig(Dir.path());
  First.MaxSampleVolume = 3000;
  ASSERT_TRUE(runSimulation(uniformRealization, First).isOk());
  // res = 0 again: volume starts over, not 3000 + 1000.
  RunConfig Second = baseConfig(Dir.path());
  Second.MaxSampleVolume = 1000;
  Result<RunReport> Report = runSimulation(uniformRealization, Second);
  ASSERT_TRUE(Report.isOk());
  EXPECT_EQ(Report.value().TotalSampleVolume, 1000);
}

TEST(Runner, ErrorTargetStopsEarly) {
  ScratchDir Dir("errtarget");
  RunConfig Config = baseConfig(Dir.path());
  Config.MaxSampleVolume = 100000000; // "endless"
  Config.TargetMaxAbsoluteError = 0.05; // reached after ~300 realizations
  Result<RunReport> Report = runSimulation(uniformRealization, Config);
  ASSERT_TRUE(Report.isOk());
  EXPECT_TRUE(Report.value().StoppedOnErrorTarget);
  EXPECT_LT(Report.value().TotalSampleVolume, 100000);
  EXPECT_LE(Report.value().MaxAbsoluteError, 0.05);
}

TEST(Runner, TimeLimitStopsEndlessRun) {
  ScratchDir Dir("timelimit");
  RunConfig Config = baseConfig(Dir.path());
  Config.MaxSampleVolume = 100000000;
  Config.TimeLimitNanos = 50'000'000; // 50 ms
  Config.AveragePeriodNanos = 10'000'000;
  auto SlowRealization = [](RandomSource &Source, double *Out) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    Out[0] = Source.nextUniform();
  };
  Result<RunReport> Report = runSimulation(SlowRealization, Config);
  ASSERT_TRUE(Report.isOk());
  EXPECT_TRUE(Report.value().StoppedOnTimeLimit);
  EXPECT_LT(Report.value().TotalSampleVolume, 100000000);
  EXPECT_GT(Report.value().TotalSampleVolume, 0);
}

TEST(Runner, ReportsMeanRealizationTime) {
  ScratchDir Dir("tau");
  RunConfig Config = baseConfig(Dir.path());
  Config.MaxSampleVolume = 50;
  auto SlowRealization = [](RandomSource &Source, double *Out) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Out[0] = Source.nextUniform();
  };
  Result<RunReport> Report = runSimulation(SlowRealization, Config);
  ASSERT_TRUE(Report.isOk());
  EXPECT_GT(Report.value().MeanRealizationSeconds, 0.0009);
  EXPECT_LT(Report.value().MeanRealizationSeconds, 0.05);
}

TEST(Runner, WritesSubtotalFilesForEveryRank) {
  ScratchDir Dir("subtotals");
  RunConfig Config = baseConfig(Dir.path());
  Config.ProcessorCount = 3;
  Config.MaxSampleVolume = 600;
  ASSERT_TRUE(runSimulation(uniformRealization, Config).isOk());
  ResultsStore Store(Dir.path());
  auto Files = Store.listSubtotalFiles();
  ASSERT_EQ(Files.size(), 3u);
  // manaver over those files must reproduce the checkpoint exactly.
  Result<MomentSnapshot> Merged = runManualAverage(Store);
  ASSERT_TRUE(Merged.isOk());
  EXPECT_EQ(Merged.value().Moments.sampleVolume(), 600);
}

TEST(Runner, ManaverAfterRunMatchesRunnerMeans) {
  ScratchDir Dir("manaver_match");
  RunConfig Config = baseConfig(Dir.path());
  Config.ProcessorCount = 2;
  Config.MaxSampleVolume = 2000;
  ASSERT_TRUE(runSimulation(uniformRealization, Config).isOk());
  ResultsStore Store(Dir.path());
  const std::string EngineMeans =
      readFileToString(Store.meansPath()).value();
  ASSERT_TRUE(runManualAverage(Store).isOk());
  const std::string ManaverMeans =
      readFileToString(Store.meansPath()).value();
  EXPECT_EQ(EngineMeans, ManaverMeans);
}

TEST(Runner, GenparamFileOverridesLeapConfig) {
  ScratchDir Dir("genparam");
  // Write a custom genparam with small leaps.
  LeapConfig Custom;
  Custom.ExperimentLog2 = 60;
  Custom.ProcessorLog2 = 40;
  Custom.RealizationLog2 = 20;
  LeapTable Table(Lcg128::defaultMultiplier(), Custom);
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(
      writeFileAtomic(Store.genparamPath(), Table.toFileContents()).isOk());

  RunConfig Config = baseConfig(Dir.path());
  Config.MaxSampleVolume = 100;
  Result<RunReport> Report = runSimulation(uniformRealization, Config);
  EXPECT_TRUE(Report.isOk()) << Report.status().toString();

  // A corrupted genparam file must fail the run, not silently fall back.
  ASSERT_TRUE(writeFileAtomic(Store.genparamPath(), "garbage\n").isOk());
  EXPECT_FALSE(runSimulation(uniformRealization, Config).isOk());
}

TEST(Runner, PassPeriodZeroSendsEveryRealization) {
  // Strict mode: with 1 processor and pass period 0, every realization
  // produces a subtotal; the save count must be at least 1 and results
  // must exist.
  ScratchDir Dir("strict");
  RunConfig Config = baseConfig(Dir.path());
  Config.MaxSampleVolume = 200;
  Config.PassPeriodNanos = 0;
  Config.AveragePeriodNanos = 0;
  Result<RunReport> Report = runSimulation(uniformRealization, Config);
  ASSERT_TRUE(Report.isOk());
  EXPECT_GE(Report.value().SavePointCount, 1);
  EXPECT_TRUE(fileExists(ResultsStore(Dir.path()).meansPath()));
}

TEST(Runner, LargePassPeriodStillDeliversFinalResults) {
  // With a pass period far longer than the run, only the final snapshots
  // matter — the totals must still be exact.
  ScratchDir Dir("lazypass");
  RunConfig Config = baseConfig(Dir.path());
  Config.ProcessorCount = 4;
  Config.MaxSampleVolume = 1000;
  Config.PassPeriodNanos = 3'600'000'000'000; // 1 hour
  Config.AveragePeriodNanos = 3'600'000'000'000;
  Result<RunReport> Report = runSimulation(uniformRealization, Config);
  ASSERT_TRUE(Report.isOk());
  EXPECT_EQ(Report.value().TotalSampleVolume, 1000);
}

// Stream independence across processor counts: the *set* of realization
// subsequences is partitioned by rank, so for a fixed volume the merged
// mean depends on M only through which subsequences were used — every M
// must estimate the same quantity within errors.
class ProcessorCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProcessorCountSweep, MeanIsConsistentAcrossM) {
  ScratchDir Dir("sweep_m" + std::to_string(GetParam()));
  RunConfig Config = baseConfig(Dir.path());
  Config.ProcessorCount = GetParam();
  Config.MaxSampleVolume = 20000;
  Result<RunReport> Report = runSimulation(uniformRealization, Config);
  ASSERT_TRUE(Report.isOk());
  EXPECT_EQ(Report.value().TotalSampleVolume, 20000);
  const double Mean =
      ResultsStore(Dir.path()).readMeans(1, 1).value()[0];
  EXPECT_NEAR(Mean, 0.5, 2.0 * Report.value().MaxAbsoluteError + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(ProcessorCounts, ProcessorCountSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(Runner, PassPeriodIsHonoredInSimulatedTime) {
  // Deterministic periodicity check: a ManualClock advanced 1 simulated
  // second per realization, peraver = 10 s, M = 1. The collector must
  // save roughly once per 10 realizations — the paper's per-minute
  // perpass/peraver behaviour, compressed.
  ScratchDir Dir("period");
  ManualClock Clock;
  auto TickingRealization = [&Clock](RandomSource &Source, double *Out) {
    Clock.advanceSeconds(1.0);
    Out[0] = Source.nextUniform();
  };
  RunConfig Config = baseConfig(Dir.path());
  Config.MaxSampleVolume = 100;
  Config.PassPeriodNanos = 10'000'000'000;    // 10 simulated seconds
  Config.AveragePeriodNanos = 10'000'000'000; // 10 simulated seconds
  Result<RunReport> Report =
      runSimulation(TickingRealization, Config, &Clock);
  ASSERT_TRUE(Report.isOk());
  EXPECT_EQ(Report.value().TotalSampleVolume, 100);
  // 100 simulated seconds / 10 s period: ~10 saves (+ final, boundary
  // effects allowed).
  EXPECT_GE(Report.value().SavePointCount, 8);
  EXPECT_LE(Report.value().SavePointCount, 13);
  // Elapsed is measured on the injected clock.
  EXPECT_NEAR(Report.value().ElapsedSeconds, 100.0, 1.0);
  EXPECT_NEAR(Report.value().MeanRealizationSeconds, 1.0, 1e-9);
}

TEST(Runner, ProgressObserverSeesMonotoneSavePoints) {
  ScratchDir Dir("progress");
  RunConfig Config = baseConfig(Dir.path());
  Config.MaxSampleVolume = 3000;
  std::vector<RunProgress> Reports;
  Config.OnSavePoint = [&Reports](const RunProgress &Progress) {
    Reports.push_back(Progress);
  };
  Result<RunReport> Report = runSimulation(uniformRealization, Config);
  ASSERT_TRUE(Report.isOk());
  ASSERT_FALSE(Reports.empty());
  EXPECT_EQ(size_t(Report.value().SavePointCount), Reports.size());
  int64_t PreviousVolume = 0;
  int PreviousIndex = 0;
  for (const RunProgress &Progress : Reports) {
    EXPECT_GE(Progress.TotalSampleVolume, PreviousVolume);
    EXPECT_EQ(Progress.SavePointCount, PreviousIndex + 1);
    PreviousVolume = Progress.TotalSampleVolume;
    PreviousIndex = Progress.SavePointCount;
  }
  EXPECT_EQ(Reports.back().TotalSampleVolume, 3000);
}

} // namespace
} // namespace parmonc
