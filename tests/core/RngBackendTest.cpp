//===- tests/core/RngBackendTest.cpp - Backend selection tests ------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The RngBackend knob: a Philox run must flow the backend through the
// engine (draw sites, report, experiment registry) while keeping every
// hierarchy invariant — reproducibility, thread partitioning, genparam
// exponent overrides — and must reject the one genparam field that has no
// counter-based meaning, the custom LCG multiplier.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"

#include "parmonc/support/Text.h"

#include <cmath>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace parmonc {
namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("parmonc_rngbackend_" + Name + "_" + std::to_string(Counter++)))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
  const std::string &path() const { return Path; }

private:
  static inline int Counter = 0;
  std::string Path;
};

void uniformRealization(RandomSource &Source, double *Out) {
  Out[0] = Source.nextUniform();
}

RunConfig baseConfig(const std::string &WorkDir) {
  RunConfig Config;
  Config.MaxSampleVolume = 1200;
  Config.WorkDir = WorkDir;
  return Config;
}

TEST(RngBackend, PhiloxRunStampsReportAndRegistry) {
  ScratchDir Dir("stamp");
  RunConfig Config = baseConfig(Dir.path());
  Config.RngBackend = RngBackendKind::Philox;
  Result<RunReport> Report = runSimulation(uniformRealization, Config);
  ASSERT_TRUE(Report.isOk()) << Report.status().toString();
  EXPECT_EQ(Report.value().RngBackendName, "philox");
  EXPECT_EQ(Report.value().TotalSampleVolume, 1200);
  // The estimate is still a U(0,1) mean with honest error bars.
  ResultsStore Store(Dir.path());
  const double Mean = Store.readMeans(1, 1).value()[0];
  EXPECT_NEAR(Mean, 0.5, Report.value().MaxAbsoluteError);
  // parmonc_exp.dat records which generator produced the run.
  Result<ResultsStore::ExperimentLogContents> Registry =
      Store.readExperimentLog();
  ASSERT_TRUE(Registry.isOk());
  ASSERT_EQ(Registry.value().Entries.size(), 1u);
  EXPECT_EQ(Registry.value().Entries[0].RngBackend, "philox");
  EXPECT_TRUE(Registry.value().SkippedLines.empty());
}

TEST(RngBackend, DefaultBackendStampsLcg) {
  ScratchDir Dir("lcgstamp");
  RunConfig Config = baseConfig(Dir.path());
  Config.MaxSampleVolume = 200;
  Result<RunReport> Report = runSimulation(uniformRealization, Config);
  ASSERT_TRUE(Report.isOk());
  EXPECT_EQ(Report.value().RngBackendName, "lcg128");
  Result<ResultsStore::ExperimentLogContents> Registry =
      ResultsStore(Dir.path()).readExperimentLog();
  ASSERT_TRUE(Registry.isOk());
  ASSERT_EQ(Registry.value().Entries.size(), 1u);
  EXPECT_EQ(Registry.value().Entries[0].RngBackend, "lcg128");
}

TEST(RngBackend, PhiloxRunsAreReproducibleAndDifferFromLcg) {
  ScratchDir DirA("phlxA"), DirB("phlxB"), DirC("lcgC");
  RunConfig ConfigA = baseConfig(DirA.path());
  ConfigA.RngBackend = RngBackendKind::Philox;
  RunConfig ConfigB = baseConfig(DirB.path());
  ConfigB.RngBackend = RngBackendKind::Philox;
  RunConfig ConfigC = baseConfig(DirC.path());
  ASSERT_TRUE(runSimulation(uniformRealization, ConfigA).isOk());
  ASSERT_TRUE(runSimulation(uniformRealization, ConfigB).isOk());
  ASSERT_TRUE(runSimulation(uniformRealization, ConfigC).isOk());
  // Same backend, same coordinates: byte-identical result files.
  EXPECT_EQ(readFileToString(ResultsStore(DirA.path()).meansPath()).value(),
            readFileToString(ResultsStore(DirB.path()).meansPath()).value());
  // Different generator, same coordinates: different samples.
  EXPECT_NE(readFileToString(ResultsStore(DirA.path()).meansPath()).value(),
            readFileToString(ResultsStore(DirC.path()).meansPath()).value());
}

TEST(RngBackend, PhiloxThreadedRankAgreesWithSerial) {
  // The stride-N partition hands thread t realizations t, t + N, ...
  // regardless of backend; under Philox both engines must consume the
  // exact same counter intervals and land on the same volume and a
  // statistically identical mean.
  ScratchDir DirSerial("thserial"), DirThreaded("ththreads");
  RunConfig Serial = baseConfig(DirSerial.path());
  Serial.RngBackend = RngBackendKind::Philox;
  Serial.DeterministicSchedule = true;
  RunConfig Threaded = Serial;
  Threaded.WorkDir = DirThreaded.path();
  Threaded.WorkerThreadsPerRank = 4;
  Result<RunReport> SerialReport = runSimulation(uniformRealization, Serial);
  Result<RunReport> ThreadedReport =
      runSimulation(uniformRealization, Threaded);
  ASSERT_TRUE(SerialReport.isOk()) << SerialReport.status().toString();
  ASSERT_TRUE(ThreadedReport.isOk()) << ThreadedReport.status().toString();
  EXPECT_EQ(SerialReport.value().TotalSampleVolume,
            ThreadedReport.value().TotalSampleVolume);
  const double SerialMean =
      ResultsStore(DirSerial.path()).readMeans(1, 1).value()[0];
  const double ThreadedMean =
      ResultsStore(DirThreaded.path()).readMeans(1, 1).value()[0];
  // Same multiset of samples; only the floating-point summation order may
  // differ between the two engines.
  EXPECT_NEAR(SerialMean, ThreadedMean, 1e-12);
}

TEST(RngBackend, PhiloxAcceptsGenparamExponentsButRejectsMultiplier) {
  // Exponent overrides retune the counter partition exactly like they
  // retune the leap hierarchy — allowed.
  ScratchDir Dir("genparam");
  LeapConfig Custom;
  Custom.ExperimentLog2 = 60;
  Custom.ProcessorLog2 = 40;
  Custom.RealizationLog2 = 20;
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(writeFileAtomic(Store.genparamPath(),
                              LeapTable(Lcg128::defaultMultiplier(), Custom)
                                  .toFileContents())
                  .isOk());
  RunConfig Config = baseConfig(Dir.path());
  Config.MaxSampleVolume = 100;
  Config.RngBackend = RngBackendKind::Philox;
  EXPECT_TRUE(runSimulation(uniformRealization, Config).isOk());

  // A custom multiplier is LCG arithmetic with no counter equivalent:
  // running Philox under it must fail loudly, not silently ignore it.
  const UInt128 CustomMultiplier = Lcg128::defaultMultiplier() + UInt128(8);
  ASSERT_TRUE(writeFileAtomic(Store.genparamPath(),
                              LeapTable(CustomMultiplier, Custom)
                                  .toFileContents())
                  .isOk());
  Config.SequenceNumber = 1; // fresh run either way
  Result<RunReport> Rejected = runSimulation(uniformRealization, Config);
  EXPECT_FALSE(Rejected.isOk());
  // The LCG backend still honors the same override.
  Config.RngBackend = RngBackendKind::Lcg128;
  EXPECT_TRUE(runSimulation(uniformRealization, Config).isOk());
}

TEST(RngBackend, ExperimentLogKeepsLegacyLinesReadable) {
  // A registry mixing pre-backend-era lines (8 fields, with or without a
  // CRC) and new 10-field lines must parse fully: old entries read back
  // with an empty backend, new ones carry the token.
  ScratchDir Dir("legacy");
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  RunLogInfo Legacy;
  Legacy.SequenceNumber = 3;
  Legacy.ProcessorCount = 2;
  Legacy.TotalSampleVolume = 50;
  ASSERT_TRUE(Store.appendExperimentLog(Legacy).isOk()); // no backend field
  RunLogInfo Tagged = Legacy;
  Tagged.SequenceNumber = 4;
  Tagged.RngBackend = "philox";
  ASSERT_TRUE(Store.appendExperimentLog(Tagged).isOk());

  Result<ResultsStore::ExperimentLogContents> Registry =
      Store.readExperimentLog();
  ASSERT_TRUE(Registry.isOk());
  ASSERT_EQ(Registry.value().Entries.size(), 2u);
  EXPECT_TRUE(Registry.value().SkippedLines.empty());
  EXPECT_EQ(Registry.value().Entries[0].SequenceNumber, 3u);
  EXPECT_TRUE(Registry.value().Entries[0].RngBackend.empty());
  EXPECT_EQ(Registry.value().Entries[1].SequenceNumber, 4u);
  EXPECT_EQ(Registry.value().Entries[1].RngBackend, "philox");
}

} // namespace
} // namespace parmonc
