//===- tests/core/RunnerHistogramTest.cpp - Engine histogram observables --===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"

#include "parmonc/sde/Distributions.h"
#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

namespace parmonc {
namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("parmonc_hist_" + Name + "_" + std::to_string(Counter++)))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
  const std::string &path() const { return Path; }

private:
  static inline int Counter = 0;
  std::string Path;
};

/// 1x2 realization: [uniform, standard normal].
void mixedRealization(RandomSource &Source, double *Out) {
  Out[0] = Source.nextUniform();
  Out[1] = sampleStandardNormal(Source);
}

RunConfig histogramConfig(const std::string &WorkDir) {
  RunConfig Config;
  Config.Rows = 1;
  Config.Columns = 2;
  Config.MaxSampleVolume = 20000;
  Config.WorkDir = WorkDir;
  Config.Histograms.push_back({0, 0, 0.0, 1.0, 20});
  Config.Histograms.push_back({0, 1, -4.0, 4.0, 32});
  return Config;
}

TEST(RunnerHistogram, ValidatesSpecs) {
  ScratchDir Dir("validate");
  RunConfig Config = histogramConfig(Dir.path());
  Config.Histograms.push_back({5, 0, 0.0, 1.0, 8}); // row out of range
  EXPECT_FALSE(runSimulation(mixedRealization, Config).isOk());

  Config = histogramConfig(Dir.path());
  Config.Histograms[0].High = Config.Histograms[0].Low;
  EXPECT_FALSE(runSimulation(mixedRealization, Config).isOk());

  Config = histogramConfig(Dir.path());
  Config.Histograms[0].BinCount = 0;
  EXPECT_FALSE(runSimulation(mixedRealization, Config).isOk());
}

TEST(RunnerHistogram, WritesHistogramFilesWithFullVolume) {
  ScratchDir Dir("files");
  RunConfig Config = histogramConfig(Dir.path());
  Result<RunReport> Report = runSimulation(mixedRealization, Config);
  ASSERT_TRUE(Report.isOk()) << Report.status().toString();

  ResultsStore Store(Dir.path());
  for (const HistogramSpec &Spec : Config.Histograms) {
    const std::string Path = histogramPath(Store, Spec.Row, Spec.Column);
    ASSERT_TRUE(fileExists(Path)) << Path;
    Result<HistogramEstimator> Histogram =
        HistogramEstimator::fromFileContents(
            readFileToString(Path).value());
    ASSERT_TRUE(Histogram.isOk());
    EXPECT_EQ(Histogram.value().totalCount(), 20000);
  }
}

TEST(RunnerHistogram, UniformObservableIsFlat) {
  ScratchDir Dir("flat");
  RunConfig Config = histogramConfig(Dir.path());
  ASSERT_TRUE(runSimulation(mixedRealization, Config).isOk());
  ResultsStore Store(Dir.path());
  Result<HistogramEstimator> Histogram =
      HistogramEstimator::fromFileContents(
          readFileToString(histogramPath(Store, 0, 0)).value());
  ASSERT_TRUE(Histogram.isOk());
  for (size_t Bin = 0; Bin < Histogram.value().binCount(); ++Bin)
    EXPECT_NEAR(Histogram.value().massOf(Bin), 0.05,
                Histogram.value().massErrorOf(Bin) + 1e-9)
        << "bin " << Bin;
  EXPECT_EQ(Histogram.value().underflowCount(), 0);
  EXPECT_EQ(Histogram.value().overflowCount(), 0);
}

TEST(RunnerHistogram, NormalObservableIsBellShaped) {
  ScratchDir Dir("bell");
  RunConfig Config = histogramConfig(Dir.path());
  ASSERT_TRUE(runSimulation(mixedRealization, Config).isOk());
  ResultsStore Store(Dir.path());
  Result<HistogramEstimator> Histogram =
      HistogramEstimator::fromFileContents(
          readFileToString(histogramPath(Store, 0, 1)).value());
  ASSERT_TRUE(Histogram.isOk());
  // Central bin mass >> edge bin mass.
  const size_t Center = Histogram.value().binCount() / 2;
  EXPECT_GT(Histogram.value().massOf(Center),
            10.0 * (Histogram.value().massOf(0) + 1e-6));
  // Roughly 68% within one sigma.
  const double WithinOneSigma = Histogram.value().cdfAt(1.0) -
                                Histogram.value().cdfAt(-1.0);
  EXPECT_NEAR(WithinOneSigma, 0.6827, 0.03);
}

TEST(RunnerHistogram, MultiProcessorCountsAreExact) {
  ScratchDir Dir("multi");
  RunConfig Config = histogramConfig(Dir.path());
  Config.ProcessorCount = 4;
  Config.MaxSampleVolume = 12000;
  ASSERT_TRUE(runSimulation(mixedRealization, Config).isOk());
  ResultsStore Store(Dir.path());
  Result<HistogramEstimator> Histogram =
      HistogramEstimator::fromFileContents(
          readFileToString(histogramPath(Store, 0, 0)).value());
  ASSERT_TRUE(Histogram.isOk());
  // Exact merge: every one of the 12000 observations is in exactly one bin.
  EXPECT_EQ(Histogram.value().totalCount(), 12000);
}

TEST(RunnerHistogram, ResumeAccumulatesCounts) {
  ScratchDir Dir("resume");
  RunConfig First = histogramConfig(Dir.path());
  First.MaxSampleVolume = 5000;
  ASSERT_TRUE(runSimulation(mixedRealization, First).isOk());

  RunConfig Second = histogramConfig(Dir.path());
  Second.MaxSampleVolume = 3000;
  Second.Resume = true;
  Second.SequenceNumber = 1;
  ASSERT_TRUE(runSimulation(mixedRealization, Second).isOk());

  ResultsStore Store(Dir.path());
  Result<HistogramEstimator> Histogram =
      HistogramEstimator::fromFileContents(
          readFileToString(histogramPath(Store, 0, 0)).value());
  ASSERT_TRUE(Histogram.isOk());
  EXPECT_EQ(Histogram.value().totalCount(), 8000);
}

TEST(RunnerHistogram, ResumeRejectsGeometryChange) {
  ScratchDir Dir("resume_geom");
  RunConfig First = histogramConfig(Dir.path());
  First.MaxSampleVolume = 1000;
  ASSERT_TRUE(runSimulation(mixedRealization, First).isOk());

  RunConfig Second = histogramConfig(Dir.path());
  Second.Resume = true;
  Second.SequenceNumber = 1;
  Second.Histograms[0].BinCount = 10; // was 20
  Result<RunReport> Report = runSimulation(mixedRealization, Second);
  ASSERT_FALSE(Report.isOk());
  EXPECT_EQ(Report.status().code(), StatusCode::FailedPrecondition);

  // Dropping the histograms entirely is also a mismatch.
  RunConfig Third = histogramConfig(Dir.path());
  Third.Resume = true;
  Third.SequenceNumber = 1;
  Third.Histograms.clear();
  EXPECT_FALSE(runSimulation(mixedRealization, Third).isOk());
}

TEST(RunnerHistogram, SnapshotRoundTripKeepsHistograms) {
  // Snapshot formats carry histograms bit-exactly (text and bytes).
  MomentSnapshot Snapshot;
  Snapshot.Moments = EstimatorMatrix(1, 1);
  Snapshot.Moments.accumulate(std::vector<double>{0.25});
  Snapshot.Histograms.emplace_back(0.0, 1.0, 4);
  Snapshot.Histograms[0].add(0.25);
  Snapshot.Histograms[0].add(0.9);
  Snapshot.Histograms[0].add(7.0); // overflow

  Result<MomentSnapshot> FromText =
      MomentSnapshot::fromFileContents(Snapshot.toFileContents());
  ASSERT_TRUE(FromText.isOk()) << FromText.status().toString();
  ASSERT_EQ(FromText.value().Histograms.size(), 1u);
  EXPECT_EQ(FromText.value().Histograms[0].countOf(1), 1);
  EXPECT_EQ(FromText.value().Histograms[0].countOf(3), 1);
  EXPECT_EQ(FromText.value().Histograms[0].overflowCount(), 1);

  Result<MomentSnapshot> FromBytes =
      MomentSnapshot::fromBytes(Snapshot.toBytes());
  ASSERT_TRUE(FromBytes.isOk());
  ASSERT_EQ(FromBytes.value().Histograms.size(), 1u);
  EXPECT_EQ(FromBytes.value().Histograms[0].totalCount(), 3);
}

} // namespace
} // namespace parmonc
