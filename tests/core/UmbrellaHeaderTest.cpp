//===- tests/core/UmbrellaHeaderTest.cpp - Umbrella header sanity ---------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/parmonc.h"

#include <gtest/gtest.h>

// mclint: allow-file(R6): these tests exercise the raw generator
// deliberately, validating the stream algebra itself.

namespace parmonc {
namespace {

// Compiling this file is most of the test: the umbrella must be
// self-contained and conflict-free. Touch one symbol per module so the
// includes cannot be optimized away by a future refactor.
TEST(UmbrellaHeader, ExposesEveryModule) {
  EXPECT_TRUE(Status::ok().isOk());                        // support
  EXPECT_EQ(UInt128(2) * UInt128(3), UInt128(6));          // int128
  EXPECT_EQ(Lcg128::PeriodLog2, 126u);                     // rng
  EXPECT_EQ(EstimatorMatrix(1, 1).sampleVolume(), 0);      // stats
  EXPECT_GT(kolmogorovQ(0.5), 0.9);                        // statest
  EXPECT_TRUE(VirtualClusterConfig().validate().isOk());   // mpsim
  Lcg128 Source;
  EXPECT_GT(sampleExponential(Source, 1.0), 0.0);          // sde
  EXPECT_GT(TiltedUniform(1.0).theta(), 0.0);              // vr
  EXPECT_FALSE(BigInt(7).isZero());                        // spectral
  RunConfig Config;                                        // core
  EXPECT_FALSE(Config.Resume);
  EXPECT_GT(rnd128(), 0.0);                                // C API
}

} // namespace
} // namespace parmonc
