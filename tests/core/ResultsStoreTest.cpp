//===- tests/core/ResultsStoreTest.cpp - File format tests ----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/ResultsStore.h"

#include "parmonc/support/Checksum.h"
#include "parmonc/support/Text.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace parmonc {
namespace {

/// A fresh scratch working directory per test, removed on destruction.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("parmonc_test_" + Name + "_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + std::to_string(Counter++)))
               .string();
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
  const std::string &path() const { return Path; }

private:
  static inline int Counter = 0;
  std::string Path;
};

MomentSnapshot makeSnapshot() {
  MomentSnapshot Snapshot;
  Snapshot.SequenceNumber = 7;
  Snapshot.ComputeSeconds = 12.25;
  Snapshot.Moments = EstimatorMatrix(2, 3);
  Snapshot.Moments.accumulate(
      std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  Snapshot.Moments.accumulate(
      std::vector<double>{1.5, 2.5, 3.5, 4.5, 5.5, 6.5});
  return Snapshot;
}

TEST(MomentSnapshot, FileRoundTripIsExact) {
  MomentSnapshot Original = makeSnapshot();
  Result<MomentSnapshot> Parsed =
      MomentSnapshot::fromFileContents(Original.toFileContents());
  ASSERT_TRUE(Parsed.isOk()) << Parsed.status().toString();
  EXPECT_EQ(Parsed.value().SequenceNumber, 7u);
  EXPECT_DOUBLE_EQ(Parsed.value().ComputeSeconds, 12.25);
  EXPECT_EQ(Parsed.value().Moments.sampleVolume(), 2);
  // Raw sums must round-trip bit-exactly (17 significant digits).
  EXPECT_EQ(Parsed.value().Moments.valueSums(),
            Original.Moments.valueSums());
  EXPECT_EQ(Parsed.value().Moments.squareSums(),
            Original.Moments.squareSums());
}

TEST(MomentSnapshot, BytesRoundTripIsExact) {
  MomentSnapshot Original = makeSnapshot();
  Result<MomentSnapshot> Parsed =
      MomentSnapshot::fromBytes(Original.toBytes());
  ASSERT_TRUE(Parsed.isOk());
  EXPECT_EQ(Parsed.value().Moments.valueSums(),
            Original.Moments.valueSums());
  EXPECT_EQ(Parsed.value().Moments.sampleVolume(), 2);
}

TEST(MomentSnapshot, RejectsCorruptedFile) {
  EXPECT_FALSE(MomentSnapshot::fromFileContents("").isOk());
  EXPECT_FALSE(MomentSnapshot::fromFileContents("volume 3\n").isOk());
  EXPECT_FALSE(
      MomentSnapshot::fromFileContents("bogus directive\n").isOk());
  // Sum count not matching the shape.
  std::string Bad = "shape 1 2\nvolume 1\nsums 1.0\nsquares 1.0 2.0\n";
  EXPECT_FALSE(MomentSnapshot::fromFileContents(Bad).isOk());
}

TEST(MomentSnapshot, RejectsTruncatedBytes) {
  std::vector<uint8_t> Bytes = makeSnapshot().toBytes();
  Bytes.resize(Bytes.size() / 2);
  EXPECT_FALSE(MomentSnapshot::fromBytes(Bytes).isOk());
}

TEST(MomentSnapshot, RejectsTrailingBytes) {
  std::vector<uint8_t> Bytes = makeSnapshot().toBytes();
  Bytes.push_back(0);
  EXPECT_FALSE(MomentSnapshot::fromBytes(Bytes).isOk());
}

TEST(ResultsStore, PathsFollowPaperLayout) {
  ResultsStore Store("/work");
  EXPECT_EQ(Store.dataDir(), "/work/parmonc_data");
  EXPECT_EQ(Store.resultsDir(), "/work/parmonc_data/results");
  EXPECT_EQ(Store.meansPath(), "/work/parmonc_data/results/func.dat");
  EXPECT_EQ(Store.confidencePath(),
            "/work/parmonc_data/results/func_ci.dat");
  EXPECT_EQ(Store.logPath(), "/work/parmonc_data/results/func_log.dat");
  EXPECT_EQ(Store.experimentLogPath(),
            "/work/parmonc_data/parmonc_exp.dat");
  EXPECT_EQ(Store.genparamPath(), "/work/parmonc_genparam.dat");
  EXPECT_EQ(Store.subtotalPath(3),
            "/work/parmonc_data/subtotals/rank_3.dat");
}

TEST(ResultsStore, SnapshotFileRoundTripOnDisk) {
  ScratchDir Dir("snapshot");
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  MomentSnapshot Original = makeSnapshot();
  ASSERT_TRUE(Store.writeSnapshot(Store.checkpointPath(), Original).isOk());
  Result<MomentSnapshot> Read =
      Store.readSnapshot(Store.checkpointPath()); // mclint: allow(R7): asserting on the sealed generation directly
  ASSERT_TRUE(Read.isOk());
  EXPECT_EQ(Read.value().Moments.valueSums(), Original.Moments.valueSums());
}

TEST(ResultsStore, WriteResultsProducesAllThreeFiles) {
  ScratchDir Dir("results");
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  MomentSnapshot Snapshot = makeSnapshot();
  RunLogInfo Log;
  Log.TotalSampleVolume = 2;
  Log.ProcessorCount = 4;
  Log.SequenceNumber = 7;
  ASSERT_TRUE(Store.writeResults(Snapshot.Moments, Log, 3.0).isOk());
  EXPECT_TRUE(fileExists(Store.meansPath()));
  EXPECT_TRUE(fileExists(Store.confidencePath()));
  EXPECT_TRUE(fileExists(Store.logPath()));

  // Means file parses back to the correct values.
  Result<std::vector<double>> Means = Store.readMeans(2, 3);
  ASSERT_TRUE(Means.isOk()) << Means.status().toString();
  EXPECT_DOUBLE_EQ(Means.value()[0], 1.25);
  EXPECT_DOUBLE_EQ(Means.value()[5], 6.25);

  // func_log.dat carries the volume and processor count.
  std::string Log1 = readFileToString(Store.logPath()).value();
  EXPECT_NE(Log1.find("total_sample_volume 2"), std::string::npos);
  EXPECT_NE(Log1.find("processors 4"), std::string::npos);
  EXPECT_NE(Log1.find("experiment 7"), std::string::npos);
}

TEST(ResultsStore, WriteResultsRejectsEmptyMoments) {
  ScratchDir Dir("empty");
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  EstimatorMatrix Empty(1, 1);
  RunLogInfo Log;
  EXPECT_FALSE(Store.writeResults(Empty, Log, 3.0).isOk());
}

TEST(ResultsStore, ReadMeansValidatesShape) {
  ScratchDir Dir("shape");
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  ASSERT_TRUE(writeFileAtomic(Store.meansPath(), "1.0 2.0\n").isOk());
  EXPECT_TRUE(Store.readMeans(1, 2).isOk());
  EXPECT_FALSE(Store.readMeans(2, 2).isOk());
}

TEST(ResultsStore, ExperimentLogAccumulates) {
  ScratchDir Dir("explog");
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  RunLogInfo First;
  First.SequenceNumber = 1;
  RunLogInfo Second;
  Second.SequenceNumber = 2;
  Second.Resumed = true;
  ASSERT_TRUE(Store.appendExperimentLog(First).isOk());
  ASSERT_TRUE(Store.appendExperimentLog(Second).isOk());
  std::string Contents =
      readFileToString(Store.experimentLogPath()).value();
  EXPECT_NE(Contents.find("experiment 1 resumed 0"), std::string::npos);
  EXPECT_NE(Contents.find("experiment 2 resumed 1"), std::string::npos);
}

/// Eight lowercase hex digits, matching the registry's CRC rendering.
std::string hex8(uint32_t Value) {
  static const char Digits[] = "0123456789abcdef";
  std::string Text(8, '0');
  for (int Index = 7; Index >= 0; --Index) {
    Text[Index] = Digits[Value & 0xF];
    Value >>= 4;
  }
  return Text;
}

TEST(ResultsStore, ExperimentLogLinesCarrySelfVerifyingCrcSuffixes) {
  ScratchDir Dir("explogcrc");
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  RunLogInfo First;
  First.SequenceNumber = 1;
  First.ProcessorCount = 4;
  RunLogInfo Second;
  Second.SequenceNumber = 2;
  Second.Resumed = true;
  Second.ProcessorCount = 4;
  Second.TotalSampleVolume = 120;
  ASSERT_TRUE(Store.appendExperimentLog(First).isOk());
  ASSERT_TRUE(Store.appendExperimentLog(Second).isOk());

  // The whole-file seal cannot protect an append-only registry, so every
  // line carries its own " crc <hex8>" computed over the body before it.
  const std::string Contents =
      readFileToString(Store.experimentLogPath()).value();
  int Lines = 0;
  size_t Start = 0;
  while (Start < Contents.size()) {
    size_t End = Contents.find('\n', Start);
    if (End == std::string::npos)
      End = Contents.size();
    const std::string Line = Contents.substr(Start, End - Start);
    Start = End + 1;
    if (Line.empty())
      continue;
    ++Lines;
    const size_t CrcAt = Line.rfind(" crc ");
    ASSERT_NE(CrcAt, std::string::npos) << Line;
    EXPECT_EQ(Line.substr(CrcAt + 5), hex8(crc32(Line.substr(0, CrcAt))))
        << Line;
  }
  EXPECT_EQ(Lines, 2);

  // And the loader agrees: both entries parse, nothing is skipped.
  Result<ResultsStore::ExperimentLogContents> Registry =
      Store.readExperimentLog();
  ASSERT_TRUE(Registry.isOk()) << Registry.status().toString();
  ASSERT_EQ(Registry.value().Entries.size(), 2u);
  EXPECT_TRUE(Registry.value().SkippedLines.empty());
  EXPECT_EQ(Registry.value().Entries[1].SequenceNumber, 2u);
  EXPECT_TRUE(Registry.value().Entries[1].Resumed);
  EXPECT_EQ(Registry.value().Entries[1].StartVolume, 120);
}

TEST(ResultsStore, ExperimentLogSkipsDamagedLinesAndKeepsTheRest) {
  ScratchDir Dir("explogdmg");
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  RunLogInfo First;
  First.SequenceNumber = 1;
  First.ProcessorCount = 3;
  ASSERT_TRUE(Store.appendExperimentLog(First).isOk());
  {
    std::ofstream Out(Store.experimentLogPath(), std::ios::app);
    // Line 2: a pre-CRC-era line with no suffix — still loadable.
    Out << "experiment 7 resumed 0 processors 4 start_volume 99\n";
    // Line 3: bit rot — the body was edited after its CRC was written.
    Out << "experiment 8 resumed 0 processors 4 start_volume 99"
           " crc deadbeef\n";
    // Line 4: not an experiment record at all.
    Out << "lorem ipsum\n";
  }
  RunLogInfo Last;
  Last.SequenceNumber = 9;
  Last.Resumed = true;
  Last.ProcessorCount = 3;
  Last.TotalSampleVolume = 30;
  ASSERT_TRUE(Store.appendExperimentLog(Last).isOk());

  // Damage is reported line by line, never fatal: the registry around it
  // — including the legacy line and the append AFTER the damage — loads.
  Result<ResultsStore::ExperimentLogContents> Registry =
      Store.readExperimentLog();
  ASSERT_TRUE(Registry.isOk()) << Registry.status().toString();
  ASSERT_EQ(Registry.value().Entries.size(), 3u);
  EXPECT_EQ(Registry.value().Entries[0].SequenceNumber, 1u);
  EXPECT_EQ(Registry.value().Entries[1].SequenceNumber, 7u);
  EXPECT_EQ(Registry.value().Entries[2].SequenceNumber, 9u);
  EXPECT_EQ(Registry.value().SkippedLines, (std::vector<int>{3, 4}));
}

TEST(ResultsStore, ExperimentLogTornTrailingAppendIsSkippedNotFatal) {
  ScratchDir Dir("explogtorn");
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  RunLogInfo First;
  First.SequenceNumber = 1;
  RunLogInfo Second;
  Second.SequenceNumber = 2;
  ASSERT_TRUE(Store.appendExperimentLog(First).isOk());
  ASSERT_TRUE(Store.appendExperimentLog(Second).isOk());

  // A crash mid-append tears at most the line being written: chop the
  // file inside the final line's CRC suffix, exactly what a torn durable
  // append leaves behind.
  std::string Contents =
      readFileToString(Store.experimentLogPath()).value();
  ASSERT_GT(Contents.size(), 7u);
  Contents.resize(Contents.size() - 7);
  ASSERT_TRUE(
      writeFileAtomic(Store.experimentLogPath(), Contents).isOk());

  Result<ResultsStore::ExperimentLogContents> Registry =
      Store.readExperimentLog();
  ASSERT_TRUE(Registry.isOk()) << Registry.status().toString();
  ASSERT_EQ(Registry.value().Entries.size(), 1u);
  EXPECT_EQ(Registry.value().Entries[0].SequenceNumber, 1u);
  EXPECT_EQ(Registry.value().SkippedLines, (std::vector<int>{2}));
}

TEST(ResultsStore, ListSubtotalFilesFindsAndSortsRanks) {
  ScratchDir Dir("subtotals");
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  MomentSnapshot Snapshot = makeSnapshot();
  ASSERT_TRUE(Store.writeSnapshot(Store.subtotalPath(2), Snapshot).isOk());
  ASSERT_TRUE(Store.writeSnapshot(Store.subtotalPath(0), Snapshot).isOk());
  ASSERT_TRUE(Store.writeSnapshot(Store.subtotalPath(10), Snapshot).isOk());
  // A stray file must be ignored.
  ASSERT_TRUE(
      writeFileAtomic(Store.subtotalsDir() + "/README.txt", "x").isOk());
  auto Files = Store.listSubtotalFiles();
  ASSERT_EQ(Files.size(), 3u);
  EXPECT_EQ(Files[0].first, 0);
  EXPECT_EQ(Files[1].first, 2);
  EXPECT_EQ(Files[2].first, 10);
}

TEST(ResultsStore, ClearPreviousRunRemovesArtifacts) {
  ScratchDir Dir("clear");
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  MomentSnapshot Snapshot = makeSnapshot();
  ASSERT_TRUE(Store.writeSnapshot(Store.checkpointPath(), Snapshot).isOk());
  ASSERT_TRUE(Store.writeSnapshot(Store.subtotalPath(0), Snapshot).isOk());
  ASSERT_TRUE(writeFileAtomic(Store.meansPath(), "1.0\n").isOk());
  ASSERT_TRUE(Store.clearPreviousRun().isOk());
  EXPECT_FALSE(fileExists(Store.checkpointPath()));
  EXPECT_FALSE(fileExists(Store.subtotalPath(0)));
  EXPECT_FALSE(fileExists(Store.meansPath()));
}

TEST(ManualAverage, MergesBaseAndSubtotals) {
  ScratchDir Dir("manaver");
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(Store.prepareDirectories().isOk());

  // Base: 2 realizations. Two ranks: 1 realization each.
  MomentSnapshot Base;
  Base.SequenceNumber = 3;
  Base.ComputeSeconds = 1.0;
  Base.Moments = EstimatorMatrix(1, 1);
  Base.Moments.accumulate(std::vector<double>{1.0});
  Base.Moments.accumulate(std::vector<double>{3.0});
  ASSERT_TRUE(Store.writeSnapshot(Store.basePath(), Base).isOk());

  for (int Rank = 0; Rank < 2; ++Rank) {
    MomentSnapshot Part;
    Part.SequenceNumber = 3;
    Part.ComputeSeconds = 0.5;
    Part.Moments = EstimatorMatrix(1, 1);
    Part.Moments.accumulate(std::vector<double>{double(Rank + 4)}); // 4, 5
    ASSERT_TRUE(Store.writeSnapshot(Store.subtotalPath(Rank), Part).isOk());
  }

  Result<MomentSnapshot> Merged = runManualAverage(Store);
  ASSERT_TRUE(Merged.isOk()) << Merged.status().toString();
  EXPECT_EQ(Merged.value().Moments.sampleVolume(), 4);
  // Mean of {1, 3, 4, 5} = 3.25.
  EXPECT_DOUBLE_EQ(Merged.value().Moments.entryStatistics(0, 0).Mean, 3.25);
  EXPECT_DOUBLE_EQ(Merged.value().ComputeSeconds, 2.0);

  // Results and a fresh checkpoint are on disk.
  EXPECT_TRUE(fileExists(Store.meansPath()));
  Result<MomentSnapshot> Checkpoint =
      Store.readSnapshot(Store.checkpointPath()); // mclint: allow(R7): asserting on the sealed generation directly
  ASSERT_TRUE(Checkpoint.isOk());
  EXPECT_EQ(Checkpoint.value().Moments.sampleVolume(), 4);
}

TEST(ManualAverage, WorksWithoutBaseFile) {
  ScratchDir Dir("manaver_nobase");
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  MomentSnapshot Part = makeSnapshot();
  ASSERT_TRUE(Store.writeSnapshot(Store.subtotalPath(0), Part).isOk());
  Result<MomentSnapshot> Merged = runManualAverage(Store);
  ASSERT_TRUE(Merged.isOk());
  EXPECT_EQ(Merged.value().Moments.sampleVolume(), 2);
}

TEST(ManualAverage, FailsWithNothingToAverage) {
  ScratchDir Dir("manaver_empty");
  ResultsStore Store(Dir.path());
  ASSERT_TRUE(Store.prepareDirectories().isOk());
  EXPECT_FALSE(runManualAverage(Store).isOk());
}

} // namespace
} // namespace parmonc
