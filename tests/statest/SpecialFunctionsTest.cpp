//===- tests/statest/SpecialFunctionsTest.cpp - p-value machinery tests ---===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/statest/SpecialFunctions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace parmonc {
namespace {

TEST(RegularizedGamma, BoundaryValues) {
  EXPECT_DOUBLE_EQ(regularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularizedGammaQ(2.0, 0.0), 1.0);
}

TEST(RegularizedGamma, PAndQAreComplements) {
  for (double S : {0.5, 1.0, 2.5, 10.0, 50.0}) {
    for (double X : {0.1, 1.0, 5.0, 20.0, 100.0}) {
      EXPECT_NEAR(regularizedGammaP(S, X) + regularizedGammaQ(S, X), 1.0,
                  1e-12)
          << "s=" << S << " x=" << X;
    }
  }
}

TEST(RegularizedGamma, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^-x.
  for (double X : {0.1, 0.5, 1.0, 3.0, 10.0})
    EXPECT_NEAR(regularizedGammaP(1.0, X), 1.0 - std::exp(-X), 1e-12);
}

TEST(RegularizedGamma, HalfIntegerSpecialCase) {
  // P(1/2, x) = erf(sqrt(x)).
  for (double X : {0.2, 1.0, 2.0, 6.0})
    EXPECT_NEAR(regularizedGammaP(0.5, X), std::erf(std::sqrt(X)), 1e-12);
}

TEST(RegularizedGamma, MonotoneInX) {
  double Previous = 0.0;
  for (double X = 0.1; X < 30.0; X += 0.37) {
    double Current = regularizedGammaP(4.0, X);
    EXPECT_GE(Current, Previous);
    Previous = Current;
  }
}

TEST(ChiSquareSurvival, KnownQuantiles) {
  // Median of chi2(1) ≈ 0.4549; 95th percentile of chi2(10) ≈ 18.307.
  EXPECT_NEAR(chiSquareSurvival(0.4549364, 1.0), 0.5, 1e-5);
  EXPECT_NEAR(chiSquareSurvival(18.307, 10.0), 0.05, 1e-4);
  EXPECT_NEAR(chiSquareSurvival(31.410, 20.0), 0.05, 1e-4);
}

TEST(ChiSquareSurvival, DegenerateStatistic) {
  EXPECT_DOUBLE_EQ(chiSquareSurvival(0.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(chiSquareSurvival(-1.0, 5.0), 1.0);
  EXPECT_LT(chiSquareSurvival(1000.0, 5.0), 1e-100);
}

TEST(ChiSquareSurvival, MeanIsRoughlyMedianForLargeDf) {
  // For large df the chi-square is nearly symmetric around df.
  EXPECT_NEAR(chiSquareSurvival(1000.0, 1000.0), 0.5, 0.01);
}

TEST(KolmogorovQ, KnownValues) {
  // Q(0.83) ≈ 0.4993, Q(1.36) ≈ 0.0505 (classical critical values).
  EXPECT_NEAR(kolmogorovQ(1.3581), 0.05, 0.001);
  EXPECT_NEAR(kolmogorovQ(1.6276), 0.01, 0.0005);
  EXPECT_DOUBLE_EQ(kolmogorovQ(0.0), 1.0);
  EXPECT_DOUBLE_EQ(kolmogorovQ(-1.0), 1.0);
}

TEST(KolmogorovQ, MonotoneDecreasing) {
  double Previous = 1.0;
  for (double Lambda = 0.2; Lambda < 3.0; Lambda += 0.1) {
    double Current = kolmogorovQ(Lambda);
    EXPECT_LE(Current, Previous);
    Previous = Current;
  }
  EXPECT_LT(kolmogorovQ(3.0), 1e-7);
}

TEST(PoissonCdf, SmallMeanByHand) {
  // Poisson(1): P(X<=0) = e^-1, P(X<=1) = 2e^-1.
  EXPECT_NEAR(poissonCdf(0, 1.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(poissonCdf(1, 1.0), 2.0 * std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(poissonCdf(-1, 1.0), 0.0);
}

TEST(PoissonCdf, ApproachesOne) {
  EXPECT_NEAR(poissonCdf(100, 4.0), 1.0, 1e-12);
}

TEST(PoissonTwoSidedPValue, CenterIsLarge) {
  // At the mode the p-value must be large; in the far tail tiny.
  EXPECT_GT(poissonTwoSidedPValue(4, 4.0), 0.5);
  EXPECT_LT(poissonTwoSidedPValue(40, 4.0), 1e-20);
  EXPECT_LT(poissonTwoSidedPValue(0, 40.0), 1e-10);
}

TEST(PoissonTwoSidedPValue, IsCappedAtOne) {
  for (int64_t Count = 0; Count < 20; ++Count)
    EXPECT_LE(poissonTwoSidedPValue(Count, 5.0), 1.0);
}

} // namespace
} // namespace parmonc
