//===- tests/statest/BatteryTest.cpp - Test battery on real generators ----===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The battery's own validation: the paper's generator must pass every
// test, and the deliberately defective negative controls must fail on the
// tests that target their specific structure. These are deterministic
// checks — our generators are pure functions of their seeds.
//
//===----------------------------------------------------------------------===//

#include "parmonc/statest/Tests.h"

#include "parmonc/rng/Baselines.h"
#include "parmonc/rng/Lcg128.h"
#include "parmonc/rng/LcgPow2.h"
#include "parmonc/rng/Philox.h"
#include "parmonc/rng/StreamHierarchy.h"

#include <gtest/gtest.h>

// mclint: allow-file(R6): these tests exercise the raw generator
// deliberately, validating the stream algebra itself.

#include <algorithm>

namespace parmonc {
namespace {

constexpr int64_t Sample = 1 << 19;

TEST(Battery, Lcg128PassesEveryTest) {
  Lcg128 Generator;
  std::vector<TestResult> Results = runBattery(Generator, Sample);
  ASSERT_EQ(Results.size(), 12u);
  for (const TestResult &Result : Results)
    EXPECT_TRUE(Result.passesAt(1e-4))
        << Result.Name << " p=" << Result.PValue;
  EXPECT_TRUE(allPass(Results));
}

TEST(Battery, Lcg128PassesFromADeepStream) {
  // Statistical quality must hold inside the hierarchy, not only from u0.
  StreamHierarchy Hierarchy{LeapTable()};
  Lcg128 Generator = Hierarchy.makeStream({5, 1000, 12345});
  std::vector<TestResult> Results = runBattery(Generator, Sample);
  EXPECT_TRUE(allPass(Results));
}

TEST(Battery, ProductionPhiloxPassesEveryTest) {
  // The counter-based production backend (docs/RNG.md#philox-backend) must
  // clear the full battery like the LCG does. The lattice-sensitive tests
  // (serial pairs/triples, birthday spacings) stand in for the spectral
  // test, which measures LCG lattice structure and does not apply to a
  // counter-based bijection.
  Philox Generator;
  std::vector<TestResult> Results = runBattery(Generator, Sample);
  ASSERT_EQ(Results.size(), 12u);
  for (const TestResult &Result : Results)
    EXPECT_TRUE(Result.passesAt(1e-4))
        << Result.Name << " p=" << Result.PValue;
  EXPECT_TRUE(allPass(Results));
}

TEST(Battery, ProductionPhiloxPassesInsideTheHierarchyPartition) {
  // Quality must hold from a hierarchy stream's counter interval, not only
  // from position 0 — the analogue of the deep-stream LCG check above.
  Philox Generator = Philox::streamFor({5, 1000, 12345});
  std::vector<TestResult> Results = runBattery(Generator, Sample);
  EXPECT_TRUE(allPass(Results));
}

TEST(Battery, ProductionPhiloxPassesAtDeepCounterPositions) {
  // Past 2^64 the high counter limb drives the block input; the battery
  // must not notice the limb crossing.
  Philox Generator;
  Generator.seek(UInt128::powerOfTwo(64) - UInt128(Sample / 2));
  std::vector<TestResult> Results = runBattery(Generator, Sample);
  EXPECT_TRUE(allPass(Results));
}

TEST(Battery, ModernBaselinesPass) {
  {
    Xoshiro256StarStar Generator(42);
    EXPECT_TRUE(allPass(runBattery(Generator, Sample)));
  }
  {
    Philox4x32 Generator(42);
    EXPECT_TRUE(allPass(runBattery(Generator, Sample)));
  }
  {
    SplitMix64 Generator(42);
    EXPECT_TRUE(allPass(runBattery(Generator, Sample)));
  }
}

TEST(Battery, RanduFailsSerialTriples) {
  // RANDU's triples lie on 15 planes: the 3-D serial test must reject it
  // overwhelmingly.
  Randu Generator(1);
  TestResult Result = serialTriplesTest(Generator, Sample / 3);
  EXPECT_LT(Result.PValue, 1e-12) << "statistic " << Result.Statistic;
}

TEST(Battery, RanduStillPassesOneDimensionalUniformity) {
  // The classical trap: RANDU looks fine in 1-D. This is why a battery is
  // needed at all.
  Randu Generator(1);
  TestResult Result = chiSquareUniformityTest(Generator, Sample);
  EXPECT_GT(Result.PValue, 1e-4);
}

TEST(Battery, RanduFailsBirthdaySpacings) {
  Randu Generator(1);
  TestResult Result = birthdaySpacingsTest(Generator);
  EXPECT_LT(Result.PValue, 1e-6) << "duplicates " << Result.Statistic;
}

TEST(Battery, Lcg40PeriodIsExhaustible) {
  // The paper's actual argument against r=40 (§2.2): its period 2^38 is
  // comparable to a single realization's appetite. Demonstrate exhaustion
  // directly: leaping 2^38 steps returns the generator to its start, so a
  // consumer of more than 2^38 numbers replays the sequence.
  LcgPow2 Generator = LcgPow2::makeClassic40();
  const UInt128 Start = Generator.state();
  Generator.skip(UInt128::powerOfTwo(38));
  EXPECT_EQ(Generator.state(), Start);
  // The 128-bit generator does not wrap at any feasible leap.
  Lcg128 Wide;
  const UInt128 WideStart = Wide.state();
  Wide.skip(UInt128::powerOfTwo(64));
  EXPECT_NE(Wide.state(), WideStart);
  Wide.setState(WideStart);
  Wide.skip(UInt128::powerOfTwo(126)); // the full period does wrap
  EXPECT_EQ(Wide.state(), WideStart);
}

TEST(Battery, Lcg40LowBitsFailUniformity) {
  // The classical power-of-two-modulus trap: the *low* state bits have
  // tiny periods (bit b cycles with period <= 2^(b-2) beyond the fixed
  // ones). A consumer using `u % k` gets these bits; the battery must
  // reject them overwhelmingly.
  class LowBitsOfLcg40 final : public RandomSource {
  public:
    double nextUniform() override {
      // Low 16 bits of the state, scaled: a naive (and wrong) way to use
      // the generator that real code historically fell into.
      return (double(Generator.nextRaw().low() & 0xffffu) + 0.5) / 65536.0;
    }
    uint64_t nextBits64() override {
      return Generator.nextRaw().low() << 48;
    }
    const char *name() const override { return "lcg40-lowbits"; }

  private:
    LcgPow2 Generator = LcgPow2::makeClassic40();
  };
  LowBitsOfLcg40 Generator;
  EXPECT_LT(serialPairsTest(Generator, Sample / 4).PValue, 1e-12);
}

TEST(Battery, Lcg40PassesCoarseUniformity) {
  LcgPow2 Generator = LcgPow2::makeClassic40();
  TestResult Result = chiSquareUniformityTest(Generator, Sample);
  EXPECT_GT(Result.PValue, 1e-4);
}

TEST(Battery, ConstantSourceFailsEverythingChiSquare) {
  // A pathological "generator" returning a constant: sanity check that the
  // battery cannot be fooled by degenerate inputs.
  class ConstantSource final : public RandomSource {
  public:
    double nextUniform() override { return 0.123456; }
    uint64_t nextBits64() override { return 0x1f9add3739635f3bull; }
    const char *name() const override { return "constant"; }
  };
  ConstantSource Generator;
  EXPECT_LT(chiSquareUniformityTest(Generator, 10000).PValue, 1e-12);
  EXPECT_LT(kolmogorovSmirnovTest(Generator, 10000).PValue, 1e-12);
  EXPECT_LT(runsTest(Generator, 10000).PValue, 1e-12);
}

TEST(Battery, ResultsCarryNamesAndStatistics) {
  Lcg128 Generator;
  std::vector<TestResult> Results = runBattery(Generator, 1 << 16);
  for (const TestResult &Result : Results) {
    EXPECT_FALSE(Result.Name.empty());
    EXPECT_GE(Result.PValue, 0.0);
    EXPECT_LE(Result.PValue, 1.0);
  }
}

TEST(Battery, PassesAtHonorsAlpha) {
  TestResult Borderline{"x", 0.0, 0.01};
  EXPECT_TRUE(Borderline.passesAt(1e-4));
  EXPECT_TRUE(Borderline.passesAt(0.01));
  EXPECT_FALSE(Borderline.passesAt(0.05));
}

// p-value calibration: under the null, p-values must be roughly uniform.
// Run one test on many disjoint lcg128 streams and check that the
// fraction below 0.1 is near 10%.
TEST(Battery, PValuesAreCalibratedUnderTheNull) {
  StreamHierarchy Hierarchy{LeapTable()};
  int Below10Percent = 0;
  const int Repetitions = 100;
  for (int Repetition = 0; Repetition < Repetitions; ++Repetition) {
    Lcg128 Generator =
        Hierarchy.makeStream({1, uint64_t(Repetition), 0});
    TestResult Result = chiSquareUniformityTest(Generator, 1 << 14);
    Below10Percent += Result.PValue < 0.1;
  }
  // Binomial(100, 0.1): mean 10, sd 3; allow 5 sigma.
  EXPECT_GE(Below10Percent, 0);
  EXPECT_LE(Below10Percent, 25);
}

// Parameterized: every individual test must pass on lcg128 at several
// sample sizes (catches size-dependent bugs in the statistics).
class BatterySizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(BatterySizeSweep, Lcg128PassesAtThisSize) {
  const int64_t Size = int64_t(1) << GetParam();
  Lcg128 Generator;
  EXPECT_TRUE(chiSquareUniformityTest(Generator, Size).passesAt());
  EXPECT_TRUE(serialPairsTest(Generator, Size / 2).passesAt());
  EXPECT_TRUE(runsTest(Generator, Size).passesAt());
  EXPECT_TRUE(autocorrelationTest(Generator, Size).passesAt());
  EXPECT_TRUE(maximumOfTTest(Generator, Size / 5).passesAt());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatterySizeSweep,
                         ::testing::Values(16, 18, 20));

TEST(Battery, PokerPassesOnLcg128) {
  Lcg128 Generator;
  TestResult Result = pokerTest(Generator, 200000);
  EXPECT_TRUE(Result.passesAt()) << "p=" << Result.PValue;
}

TEST(Battery, PokerProbabilitiesAreClassical) {
  // Poker with base-10 five-digit hands: P(all distinct) = 0.3024,
  // P(4 distinct / one pair) = 0.504. Check empirically at scale.
  Lcg128 Generator;
  const int64_t Hands = 200000;
  int64_t Distinct5 = 0, Distinct4 = 0;
  for (int64_t Hand = 0; Hand < Hands; ++Hand) {
    bool Seen[10] = {};
    int Distinct = 0;
    for (int Draw = 0; Draw < 5; ++Draw) {
      int Digit = std::min(int(Generator.nextUniform() * 10), 9);
      if (!Seen[Digit]) {
        Seen[Digit] = true;
        ++Distinct;
      }
    }
    Distinct5 += Distinct == 5;
    Distinct4 += Distinct == 4;
  }
  EXPECT_NEAR(double(Distinct5) / double(Hands), 0.3024, 0.005);
  EXPECT_NEAR(double(Distinct4) / double(Hands), 0.5040, 0.005);
}

TEST(Battery, PokerFailsOnConstantDigits) {
  class StuckDigit final : public RandomSource {
  public:
    double nextUniform() override { return 0.35; }
    uint64_t nextBits64() override { return 0x5999999999999999ull; }
    const char *name() const override { return "stuck"; }
  };
  StuckDigit Generator;
  EXPECT_LT(pokerTest(Generator, 10000).PValue, 1e-12);
}

TEST(Battery, CouponCollectorPassesOnLcg128) {
  Lcg128 Generator;
  TestResult Result = couponCollectorTest(Generator, 50000);
  EXPECT_TRUE(Result.passesAt()) << "p=" << Result.PValue;
}

TEST(Battery, CouponCollectorMinimumSegmentLengthIsBase) {
  // A perfectly rotating "generator" collects all 5 digits in exactly 5
  // draws every time — wildly non-random, must fail.
  class Rotor final : public RandomSource {
  public:
    double nextUniform() override {
      Step = (Step + 1) % 5;
      return (double(Step) + 0.5) / 5.0;
    }
    uint64_t nextBits64() override {
      return uint64_t(nextUniform() * 9007199254740992.0) << 11;
    }
    const char *name() const override { return "rotor"; }

  private:
    int Step = 4;
  };
  Rotor Generator;
  EXPECT_LT(couponCollectorTest(Generator, 50000).PValue, 1e-12);
}

} // namespace
} // namespace parmonc
