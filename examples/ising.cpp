//===- examples/ising.cpp - Metropolis sampling of the 2-D Ising model ----===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Statistical physics is the first §2.1 application area the paper names
// ("the Metropolis method, the Ising model"). Each PARMONC realization is
// an *independent* Metropolis chain on an L x L periodic lattice: random
// spin start, a burn-in sweep phase, then measurement sweeps averaging
//
//   column 0: energy per spin          E/N
//   column 1: |magnetization| per spin |M|/N
//
// On a 4x4 lattice both observables have exact values by enumeration of
// all 2^16 states, which this example computes on the fly and prints next
// to the Monte Carlo estimates — the check is exact, not asymptotic.
//
// Run:  ./ising [processors] [chains] [beta]
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace parmonc;

namespace {

constexpr int LatticeSide = 4;
constexpr int SpinCount = LatticeSide * LatticeSide;
constexpr int BurnInSweeps = 200;
constexpr int MeasureSweeps = 400;

double Beta = 0.4; // inverse temperature

int wrap(int Coordinate) {
  return (Coordinate + LatticeSide) % LatticeSide;
}

int neighborSum(const int *Spins, int Row, int Column) {
  return Spins[wrap(Row - 1) * LatticeSide + Column] +
         Spins[wrap(Row + 1) * LatticeSide + Column] +
         Spins[Row * LatticeSide + wrap(Column - 1)] +
         Spins[Row * LatticeSide + wrap(Column + 1)];
}

/// One realization: an independent Metropolis chain.
void isingChain(RandomSource &Source, double *Out) {
  int Spins[SpinCount];
  for (int &Spin : Spins)
    Spin = Source.nextUniform() < 0.5 ? -1 : 1;

  auto sweep = [&](bool Measure, double *EnergySum, double *MagSum) {
    for (int Site = 0; Site < SpinCount; ++Site) {
      const int Row = int(Source.nextUniform() * LatticeSide) % LatticeSide;
      const int Column =
          int(Source.nextUniform() * LatticeSide) % LatticeSide;
      const int Index = Row * LatticeSide + Column;
      const int DeltaEnergy =
          2 * Spins[Index] * neighborSum(Spins, Row, Column);
      if (DeltaEnergy <= 0 ||
          Source.nextUniform() < std::exp(-Beta * DeltaEnergy))
        Spins[Index] = -Spins[Index];
    }
    if (!Measure)
      return;
    int Energy = 0, Magnetization = 0;
    for (int Row = 0; Row < LatticeSide; ++Row) {
      for (int Column = 0; Column < LatticeSide; ++Column) {
        const int Index = Row * LatticeSide + Column;
        // Count each bond once: right and down neighbors.
        Energy -= Spins[Index] *
                  (Spins[Row * LatticeSide + wrap(Column + 1)] +
                   Spins[wrap(Row + 1) * LatticeSide + Column]);
        Magnetization += Spins[Index];
      }
    }
    *EnergySum += double(Energy) / SpinCount;
    *MagSum += std::fabs(double(Magnetization)) / SpinCount;
  };

  for (int Sweep = 0; Sweep < BurnInSweeps; ++Sweep)
    sweep(false, nullptr, nullptr);
  double EnergySum = 0.0, MagSum = 0.0;
  for (int Sweep = 0; Sweep < MeasureSweeps; ++Sweep)
    sweep(true, &EnergySum, &MagSum);
  Out[0] = EnergySum / MeasureSweeps;
  Out[1] = MagSum / MeasureSweeps;
}

/// Exact 4x4 observables by enumerating all 2^16 configurations.
void exactEnumeration(double *EnergyOut, double *MagOut) {
  double PartitionSum = 0.0, EnergySum = 0.0, MagSum = 0.0;
  for (uint32_t State = 0; State < (1u << SpinCount); ++State) {
    int Spins[SpinCount];
    for (int Site = 0; Site < SpinCount; ++Site)
      Spins[Site] = (State >> Site) & 1u ? 1 : -1;
    int Energy = 0, Magnetization = 0;
    for (int Row = 0; Row < LatticeSide; ++Row) {
      for (int Column = 0; Column < LatticeSide; ++Column) {
        const int Index = Row * LatticeSide + Column;
        Energy -= Spins[Index] *
                  (Spins[Row * LatticeSide + wrap(Column + 1)] +
                   Spins[wrap(Row + 1) * LatticeSide + Column]);
        Magnetization += Spins[Index];
      }
    }
    const double Weight = std::exp(-Beta * Energy);
    PartitionSum += Weight;
    EnergySum += Weight * double(Energy) / SpinCount;
    MagSum += Weight * std::fabs(double(Magnetization)) / SpinCount;
  }
  *EnergyOut = EnergySum / PartitionSum;
  *MagOut = MagSum / PartitionSum;
}

} // namespace

int main(int Argc, char **Argv) {
  RunConfig Config;
  Config.Rows = 1;
  Config.Columns = 2;
  Config.ProcessorCount = Argc > 1 ? std::atoi(Argv[1]) : 4;
  Config.MaxSampleVolume = Argc > 2 ? std::atoll(Argv[2]) : 2000;
  if (Argc > 3)
    Beta = std::atof(Argv[3]);
  Config.AveragePeriodNanos = 100'000'000;

  std::printf("2-D Ising, %dx%d periodic lattice, beta = %.3f: %lld "
              "independent Metropolis chains (%d burn-in + %d measured "
              "sweeps) on %d processors...\n",
              LatticeSide, LatticeSide, Beta,
              (long long)Config.MaxSampleVolume, BurnInSweeps,
              MeasureSweeps, Config.ProcessorCount);

  Result<RunReport> Outcome = runSimulation(isingChain, Config);
  if (!Outcome) {
    std::fprintf(stderr, "ising: %s\n",
                 Outcome.status().toString().c_str());
    return 1;
  }

  double ExactEnergy = 0.0, ExactMag = 0.0;
  exactEnumeration(&ExactEnergy, &ExactMag);

  ResultsStore Store(Config.WorkDir);
  const std::vector<double> Means = Store.readMeans(1, 2).value();
  std::printf("\n  %-24s %-12s %-12s\n", "observable", "estimate",
              "exact (enum)");
  std::printf("  %-24s %-12.5f %-12.5f\n", "energy per spin", Means[0],
              ExactEnergy);
  std::printf("  %-24s %-12.5f %-12.5f\n", "|magnetization| per spin",
              Means[1], ExactMag);
  std::printf("\n  max abs error = %.5f, volume = %lld, elapsed = %.2f s\n",
              Outcome.value().MaxAbsoluteError,
              (long long)Outcome.value().TotalSampleVolume,
              Outcome.value().ElapsedSeconds);
  return 0;
}
