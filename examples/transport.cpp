//===- examples/transport.cpp - Radiation transfer via the C API ----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Monte Carlo's original domain (§2.1): particle transport. A mono-
// directional photon beam hits a 1-D slab of optical thickness T with
// scattering albedo c; free paths are exponential, scattering is
// isotropic. Each realization is one photon history yielding the
// indicator triple
//
//   [ transmitted | reflected | absorbed ]
//
// This example deliberately uses the *paper's C interface*: a realization
// routine with signature void(double*) that draws its randomness by
// calling rnd128(), run under parmoncc with pointer arguments — exactly
// the §4 calling pattern.
//
// Run:  PARMONC_NP=4 ./transport
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/CApi.h"
#include "parmonc/core/ResultsStore.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace {

const double SlabThickness = 2.0;    // optical depths
const double ScatteringAlbedo = 0.7; // scatter probability per collision

/// One photon history, written against the C API: only rnd128() inside.
extern "C" void photonHistory(double *Out) {
  Out[0] = Out[1] = Out[2] = 0.0;
  double Depth = 0.0;
  double Direction = 1.0; // cosine of the angle to the slab normal

  for (;;) {
    const double FreePath = -std::log(rnd128());
    Depth += Direction * FreePath;
    if (Depth >= SlabThickness) {
      Out[0] = 1.0; // transmitted
      return;
    }
    if (Depth < 0.0) {
      Out[1] = 1.0; // reflected
      return;
    }
    if (rnd128() >= ScatteringAlbedo) {
      Out[2] = 1.0; // absorbed
      return;
    }
    // Isotropic scattering: new direction cosine uniform on (-1, 1).
    Direction = 2.0 * rnd128() - 1.0;
    if (Direction == 0.0)
      Direction = 1e-12; // avoid a trapped photon
  }
}

} // namespace

int main(int Argc, char **Argv) {
  int NRow = 1, NCol = 3, Res = 0, SeqNum = 0, PerPass = 0, PerAver = 0;
  long long MaxSv = Argc > 1 ? std::atoll(Argv[1]) : 2000000;

  std::printf("1-D slab transport: thickness %.1f mfp, albedo %.1f, "
              "%lld photon histories (paper C API)...\n",
              SlabThickness, ScatteringAlbedo, MaxSv);

  if (parmoncc(photonHistory, &NRow, &NCol, &MaxSv, &Res, &SeqNum, &PerPass,
               &PerAver) != 0) {
    std::fprintf(stderr, "transport: parmoncc failed\n");
    return 1;
  }

  const char *WorkDirEnv = std::getenv("PARMONC_WORKDIR");
  parmonc::ResultsStore Store(WorkDirEnv && *WorkDirEnv ? WorkDirEnv : ".");
  const std::vector<double> Means = Store.readMeans(1, 3).value();

  std::printf("\n  transmission = %.4f\n", Means[0]);
  std::printf("  reflection   = %.4f\n", Means[1]);
  std::printf("  absorption   = %.4f\n", Means[2]);
  std::printf("  (sum = %.4f, must be 1)\n", Means[0] + Means[1] + Means[2]);
  std::printf("\n  sanity: unscattered direct beam alone would transmit "
              "e^-T = %.4f;\n  scattering adds to that, so transmission "
              "must exceed it.\n",
              std::exp(-SlabThickness));
  return 0;
}
