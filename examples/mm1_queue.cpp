//===- examples/mm1_queue.cpp - Queueing-theory workload ------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Queueing theory is one of the §2.1 application areas. Each realization
// simulates an M/M/1 queue (Poisson arrivals rate λ, exponential service
// rate μ) for a fixed number of customers starting empty, and reports
//
//   [ mean wait in queue | mean system size | server utilization ]
//
// After averaging, the estimates approach the steady-state formulas
// Wq = ρ/(μ-λ), L = ρ/(1-ρ), utilization = ρ — up to a documented warm-up
// bias that shrinks with the horizon. The example prints both.
//
// Run:  ./mm1_queue [processors] [realizations]
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"
#include "parmonc/sde/Distributions.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace parmonc;

namespace {

constexpr double ArrivalRate = 0.8; // λ
constexpr double ServiceRate = 1.0; // μ  -> ρ = 0.8
constexpr int CustomersPerRealization = 4000;

/// One realization: a Lindley-recursion walk over a fixed customer count,
/// starting from an empty system. No state survives the call.
void queueRealization(RandomSource &Source, double *Out) {
  double WaitSum = 0.0;
  double Wait = 0.0;        // W_0 = 0 (empty system)
  double LastService = 0.0; // S_{n-1}
  double BusyTime = 0.0;
  double ArrivalClock = 0.0;
  double AreaSystemSize = 0.0; // sum of sojourn times (Little's law)

  for (int Customer = 0; Customer < CustomersPerRealization; ++Customer) {
    const double InterArrival = sampleExponential(Source, ArrivalRate);
    const double Service = sampleExponential(Source, ServiceRate);
    // Lindley: W_n = max(0, W_{n-1} + S_{n-1} - A_n).
    if (Customer > 0)
      Wait = std::max(0.0, Wait + LastService - InterArrival);
    WaitSum += Wait;
    BusyTime += Service;
    AreaSystemSize += Wait + Service; // sojourn time of this customer
    ArrivalClock += InterArrival;
    LastService = Service;
  }

  const double Horizon = ArrivalClock + Wait + LastService;
  Out[0] = WaitSum / CustomersPerRealization; // Wq
  Out[1] = AreaSystemSize / Horizon;          // L (via Little)
  Out[2] = std::min(1.0, BusyTime / Horizon); // utilization
}

} // namespace

int main(int Argc, char **Argv) {
  RunConfig Config;
  Config.Rows = 1;
  Config.Columns = 3;
  Config.ProcessorCount = Argc > 1 ? std::atoi(Argv[1]) : 4;
  Config.MaxSampleVolume = Argc > 2 ? std::atoll(Argv[2]) : 4000;
  Config.AveragePeriodNanos = 50'000'000;

  const double Rho = ArrivalRate / ServiceRate;
  std::printf("M/M/1 queue, lambda=%.2f mu=%.2f (rho=%.2f), %lld "
              "realizations x %d customers on %d processors...\n",
              ArrivalRate, ServiceRate, Rho,
              (long long)Config.MaxSampleVolume, CustomersPerRealization,
              Config.ProcessorCount);

  Result<RunReport> Outcome = runSimulation(queueRealization, Config);
  if (!Outcome) {
    std::fprintf(stderr, "mm1_queue: %s\n",
                 Outcome.status().toString().c_str());
    return 1;
  }

  ResultsStore Store(Config.WorkDir);
  const std::vector<double> Means = Store.readMeans(1, 3).value();

  const double ExactWq = Rho / (ServiceRate - ArrivalRate);
  const double ExactL = Rho / (1.0 - Rho);
  std::printf("\n  %-22s %-10s %-10s\n", "quantity", "estimate",
              "steady-state");
  std::printf("  %-22s %-10.4f %-10.4f\n", "mean wait in queue Wq",
              Means[0], ExactWq);
  std::printf("  %-22s %-10.4f %-10.4f\n", "mean system size L", Means[1],
              ExactL);
  std::printf("  %-22s %-10.4f %-10.4f\n", "server utilization", Means[2],
              Rho);
  std::printf("\n  (finite-horizon estimates start from an empty system, "
              "so they sit slightly below steady state)\n");
  std::printf("  max abs error = %.4f, volume = %lld\n",
              Outcome.value().MaxAbsoluteError,
              (long long)Outcome.value().TotalSampleVolume);
  return 0;
}
