//===- examples/quickstart.cpp - Estimate pi with PARMONC -----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The smallest complete PARMONC program: estimate pi by dart throwing.
//
// The user supplies ONE thing — a routine computing a single realization
// of the random object (here: the 0/1 indicator that a random point of the
// unit square lands inside the quarter circle, scaled by 4). The library
// does everything else: stream management, parallel distribution over
// simulated processors, eq. (5) averaging, error reporting and result
// files. This mirrors the paper's §2.3 sequential-code-to-parallel story.
//
// Run:  ./quickstart [processors]
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"

#include <cstdio>
#include <cstdlib>

using namespace parmonc;

/// One realization: 4 * indicator(point in quarter disc). E = pi.
static void piRealization(RandomSource &Source, double *Out) {
  const double X = Source.nextUniform();
  const double Y = Source.nextUniform();
  Out[0] = X * X + Y * Y <= 1.0 ? 4.0 : 0.0;
}

int main(int Argc, char **Argv) {
  RunConfig Config;
  Config.Rows = 1;
  Config.Columns = 1;
  Config.MaxSampleVolume = 50'000'000;        // "endless" upper bound
  Config.TargetMaxRelativeErrorPercent = 0.1; // stop at 0.1 % (3-sigma)
  Config.ProcessorCount = Argc > 1 ? std::atoi(Argv[1]) : 4;
  Config.AveragePeriodNanos = 100'000'000; // save every 100 ms
  Config.PassPeriodNanos = 5'000'000;     // pass subtotals every 5 ms
  Config.WorkDir = ".";

  std::printf("estimating pi on %d simulated processors "
              "(target: 0.1%% relative error at 3 sigma)...\n",
              Config.ProcessorCount);

  Result<RunReport> Outcome = runSimulation(piRealization, Config);
  if (!Outcome) {
    std::fprintf(stderr, "quickstart: %s\n",
                 Outcome.status().toString().c_str());
    return 1;
  }
  const RunReport &Report = Outcome.value();

  ResultsStore Store(Config.WorkDir);
  const double Estimate = Store.readMeans(1, 1).value()[0];

  std::printf("  pi            ~ %.6f +- %.6f  (true 3.141593)\n", Estimate,
              Report.MaxAbsoluteError);
  std::printf("  sample volume = %lld realizations\n",
              (long long)Report.TotalSampleVolume);
  std::printf("  elapsed       = %.3f s  (%.1f ns per realization)\n",
              Report.ElapsedSeconds,
              Report.MeanRealizationSeconds * 1e9);
  std::printf("  stopped on error target: %s\n",
              Report.StoppedOnErrorTarget ? "yes" : "no");
  std::printf("  results saved under ./parmonc_data/results/\n");
  return 0;
}
