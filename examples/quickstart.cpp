//===- examples/quickstart.cpp - Estimate pi with PARMONC -----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The smallest complete PARMONC program: estimate pi by dart throwing.
//
// The user supplies ONE thing — a routine computing a single realization
// of the random object (here: the 0/1 indicator that a random point of the
// unit square lands inside the quarter circle, scaled by 4). The library
// does everything else: stream management, parallel distribution over
// simulated processors, eq. (5) averaging, error reporting and result
// files. This mirrors the paper's §2.3 sequential-code-to-parallel story.
//
// Run:  ./quickstart [processors] [--transport=threads|processes]
//
// With --transport=processes the simulated processors run as forked OS
// processes talking CRC-framed messages over Unix-domain sockets — the
// paper's cluster deployment in miniature — and produce the same results
// as the thread transport (the differential suite proves byte-identity).
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace parmonc;

/// One realization: 4 * indicator(point in quarter disc). E = pi.
static void piRealization(RandomSource &Source, double *Out) {
  const double X = Source.nextUniform();
  const double Y = Source.nextUniform();
  Out[0] = X * X + Y * Y <= 1.0 ? 4.0 : 0.0;
}

int main(int Argc, char **Argv) {
  RunConfig Config;
  Config.Rows = 1;
  Config.Columns = 1;
  Config.MaxSampleVolume = 50'000'000;        // "endless" upper bound
  Config.TargetMaxRelativeErrorPercent = 0.1; // stop at 0.1 % (3-sigma)
  Config.ProcessorCount = 4;
  Config.AveragePeriodNanos = 100'000'000; // save every 100 ms
  Config.PassPeriodNanos = 5'000'000;     // pass subtotals every 5 ms
  Config.WorkDir = ".";

  for (int Index = 1; Index < Argc; ++Index) {
    if (std::strncmp(Argv[Index], "--transport=", 12) == 0) {
      std::optional<TransportKind> Parsed = parseTransport(Argv[Index] + 12);
      if (!Parsed) {
        std::fprintf(stderr,
                     "quickstart: unknown transport '%s' "
                     "(threads|processes)\n",
                     Argv[Index] + 12);
        return 2;
      }
      Config.Transport = *Parsed;
    } else {
      Config.ProcessorCount = std::atoi(Argv[Index]);
    }
  }
  // The process transport has no cross-process work counter, so each rank
  // owns a fixed quota; the early-stop broadcast still ends the run at the
  // error target.
  if (Config.Transport == TransportKind::Processes)
    Config.DeterministicSchedule = true;

  std::printf("estimating pi on %d simulated processors over the %s "
              "transport (target: 0.1%% relative error at 3 sigma)...\n",
              Config.ProcessorCount, transportName(Config.Transport));

  Result<RunReport> Outcome = runSimulation(piRealization, Config);
  if (!Outcome) {
    std::fprintf(stderr, "quickstart: %s\n",
                 Outcome.status().toString().c_str());
    return 1;
  }
  const RunReport &Report = Outcome.value();

  ResultsStore Store(Config.WorkDir);
  const double Estimate = Store.readMeans(1, 1).value()[0];

  std::printf("  pi            ~ %.6f +- %.6f  (true 3.141593)\n", Estimate,
              Report.MaxAbsoluteError);
  std::printf("  sample volume = %lld realizations\n",
              (long long)Report.TotalSampleVolume);
  std::printf("  elapsed       = %.3f s  (%.1f ns per realization)\n",
              Report.ElapsedSeconds,
              Report.MeanRealizationSeconds * 1e9);
  std::printf("  stopped on error target: %s\n",
              Report.StoppedOnErrorTarget ? "yes" : "no");
  std::printf("  results saved under ./parmonc_data/results/\n");
  return 0;
}
