//===- examples/integration.cpp - High-dimensional quadrature + VR --------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Monte Carlo's bread and butter: a 10-dimensional integral
//
//   I = ∫_[0,1]^10  Π_i (12/(10+i)) x_i^(2/(10+i)) dx  =  Π_i 12/(12+i)
//
// (a Genz-style product integrand with a known closed form). The example
// estimates it three ways — plain, antithetic and with a control variate
// (the first coordinate) — under the PARMONC engine, and prints the
// variance each method needs per unit of accuracy. It demonstrates how
// the vr/ toolkit composes with runSimulation: the estimator trick lives
// entirely inside the realization routine.
//
// Run:  ./integration [processors] [realizations]
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"
#include "parmonc/vr/VarianceReduction.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace parmonc;

namespace {

constexpr int Dimension = 10;

double integrand(const double *Point) {
  double Product = 1.0;
  for (int Axis = 0; Axis < Dimension; ++Axis) {
    const double Power = 2.0 / double(10 + Axis);
    Product *= 12.0 / double(10 + Axis) * std::pow(Point[Axis], Power);
  }
  return Product;
}

double exactValue() {
  // ∫ x^p dx = 1/(p+1): each factor contributes (12/(10+i)) / (p+1)
  // with p = 2/(10+i), i.e. 12/(12+i).
  double Product = 1.0;
  for (int Axis = 0; Axis < Dimension; ++Axis)
    Product *= 12.0 / double(12 + Axis);
  return Product;
}

/// Column 0: plain estimator. Column 1: antithetic pair average (mirrors
/// the same uniforms). Column 2/3: value and control for a control-variate
/// post-step (control = first coordinate, E = 1/2).
void integralRealization(RandomSource &Source, double *Out) {
  double Point[Dimension], Mirrored[Dimension];
  for (int Axis = 0; Axis < Dimension; ++Axis) {
    Point[Axis] = Source.nextUniform();
    Mirrored[Axis] = 1.0 - Point[Axis];
  }
  const double Plain = integrand(Point);
  Out[0] = Plain;
  Out[1] = 0.5 * (Plain + integrand(Mirrored));
  Out[2] = Plain;
  Out[3] = Point[0];
}

} // namespace

int main(int Argc, char **Argv) {
  RunConfig Config;
  Config.Rows = 1;
  Config.Columns = 4;
  Config.ProcessorCount = Argc > 1 ? std::atoi(Argv[1]) : 4;
  Config.MaxSampleVolume = Argc > 2 ? std::atoll(Argv[2]) : 400000;
  Config.AveragePeriodNanos = 100'000'000;

  const double Exact = exactValue();
  std::printf("10-D product integral, exact value %.8f; %lld realizations "
              "on %d processors...\n",
              Exact, (long long)Config.MaxSampleVolume,
              Config.ProcessorCount);

  Result<RunReport> Outcome = runSimulation(integralRealization, Config);
  if (!Outcome) {
    std::fprintf(stderr, "integration: %s\n",
                 Outcome.status().toString().c_str());
    return 1;
  }

  ResultsStore Store(Config.WorkDir);
  const std::vector<double> Means = Store.readMeans(1, 4).value();

  // Control-variate post-step from the saved moments: beta estimated on a
  // fresh small pilot (the saved files keep only first/second moments, not
  // the cross-moment, so the example re-derives beta from a pilot run —
  // in production one would put the adjusted value in its own column).
  Lcg128 Pilot; // mclint: allow(R6): pilot-run demo outside the engine
  double SumValueControl = 0.0, SumControl = 0.0, SumControl2 = 0.0,
         SumValue = 0.0;
  const int PilotDraws = 20000;
  double Buffer[4];
  for (int Draw = 0; Draw < PilotDraws; ++Draw) {
    integralRealization(Pilot, Buffer);
    SumValue += Buffer[2];
    SumValueControl += Buffer[2] * Buffer[3];
    SumControl += Buffer[3];
    SumControl2 += Buffer[3] * Buffer[3];
  }
  const double MeanValue = SumValue / PilotDraws;
  const double MeanControl = SumControl / PilotDraws;
  const double Beta =
      (SumValueControl / PilotDraws - MeanValue * MeanControl) /
      (SumControl2 / PilotDraws - MeanControl * MeanControl);
  const double Controlled = Means[2] - Beta * (Means[3] - 0.5);

  std::printf("\n  %-18s %-12s %-10s\n", "method", "estimate", "|error|");
  std::printf("  %-18s %-12.8f %-10.2e\n", "plain", Means[0],
              std::fabs(Means[0] - Exact));
  std::printf("  %-18s %-12.8f %-10.2e\n", "antithetic", Means[1],
              std::fabs(Means[1] - Exact));
  std::printf("  %-18s %-12.8f %-10.2e (beta=%.3f)\n", "control variate",
              Controlled, std::fabs(Controlled - Exact), Beta);
  std::printf("\n  reported 3-sigma bound on the plain column: %.2e\n",
              Outcome.value().MaxAbsoluteError);
  std::printf("  volume = %lld, elapsed = %.2f s\n",
              (long long)Outcome.value().TotalSampleVolume,
              Outcome.value().ElapsedSeconds);
  return 0;
}
