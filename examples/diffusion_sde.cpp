//===- examples/diffusion_sde.cpp - The paper's §4 performance test -------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The paper's own example, end-to-end: a 2-D system of SDEs over [0, 100]
// integrated with the generalized Euler scheme (eq. 9); each realization
// is the 1000 x 2 matrix [ζ_ij] = y_j(t_i) sampled at t_i = i/10, and the
// averaged matrix estimates E y_j(t_i). For this constant-coefficient
// system the exact expectations are known (E y(t) = y0 + C t), so the
// example checks itself.
//
// The paper runs mesh h = 1e-6 (τ ≈ 7.7 s per realization on 2011
// hardware); this demo defaults to h = 2e-3 so it finishes in seconds.
//
// Run:  ./diffusion_sde [processors] [realizations] [mesh]
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"
#include "parmonc/sde/EulerMaruyama.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace parmonc;

static double MeshSize = 2e-3;

static void difftraj(RandomSource &Source, double *Out) {
  PaperDiffusionProblem::simulateRealization(Source, MeshSize, Out);
}

int main(int Argc, char **Argv) {
  RunConfig Config;
  Config.Rows = PaperDiffusionProblem::OutputCount; // 1000
  Config.Columns = PaperDiffusionProblem::Dimension; // 2
  Config.MaxSampleVolume = Argc > 2 ? std::atoll(Argv[2]) : 400;
  Config.ProcessorCount = Argc > 1 ? std::atoi(Argv[1]) : 4;
  if (Argc > 3)
    MeshSize = std::atof(Argv[3]);
  Config.AveragePeriodNanos = 100'000'000;

  std::printf("simulating %lld diffusion trajectories (mesh h=%g) on %d "
              "simulated processors...\n",
              (long long)Config.MaxSampleVolume, MeshSize,
              Config.ProcessorCount);

  Result<RunReport> Outcome = runSimulation(difftraj, Config);
  if (!Outcome) {
    std::fprintf(stderr, "diffusion_sde: %s\n",
                 Outcome.status().toString().c_str());
    return 1;
  }
  const RunReport &Report = Outcome.value();

  ResultsStore Store(Config.WorkDir);
  const std::vector<double> Means =
      Store.readMeans(Config.Rows, Config.Columns).value();

  const LinearSdeSystem System = PaperDiffusionProblem::makeSystem();
  std::printf("\n  %-8s %-12s %-12s %-12s %-12s\n", "t", "Ey1(est)",
              "Ey1(exact)", "Ey2(est)", "Ey2(exact)");
  for (size_t Row : {9u, 99u, 299u, 499u, 749u, 999u}) {
    const double Time = double(Row + 1) * 0.1;
    std::printf("  %-8.1f %-12.4f %-12.4f %-12.4f %-12.4f\n", Time,
                Means[Row * 2 + 0], System.exactMean(0, Time),
                Means[Row * 2 + 1], System.exactMean(1, Time));
  }

  std::printf("\n  sample volume        = %lld\n",
              (long long)Report.TotalSampleVolume);
  std::printf("  mean tau/realization = %.4f s\n",
              Report.MeanRealizationSeconds);
  std::printf("  max abs error        = %.4f\n", Report.MaxAbsoluteError);
  std::printf("  elapsed              = %.2f s\n", Report.ElapsedSeconds);
  std::printf("  per-processor volumes l_m:");
  for (int64_t Volume : Report.PerProcessorVolumes)
    std::printf(" %lld", (long long)Volume);
  std::printf("\n");
  return 0;
}
