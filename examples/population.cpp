//===- examples/population.cpp - Branching-process population model -------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Population biology was a major user of PARMONC's predecessor MONC (the
// Omsk probability-theory lab, §1). This example simulates a
// Galton–Watson branching process with Poisson(m) offspring and estimates,
// per generation g = 1..Generations,
//
//   column 0: expected population size  E Z_g = m^g
//   column 1: extinction probability    P(Z_g = 0)
//
// The extinction probabilities converge to the smallest root of
// q = exp(m (q - 1)); for m = 1.2 that limit is ~0.6863, and E Z_g grows
// geometrically — both printed against the estimates.
//
// Run:  ./population [processors] [realizations]
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"
#include "parmonc/sde/Distributions.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace parmonc;

namespace {

constexpr double OffspringMean = 1.2;
constexpr int Generations = 12;
constexpr int64_t PopulationCap = 100000; // guard against explosion

/// One realization: a full family tree, recorded per generation.
void branchingRealization(RandomSource &Source, double *Out) {
  int64_t Population = 1;
  for (int Generation = 0; Generation < Generations; ++Generation) {
    int64_t Next = 0;
    for (int64_t Individual = 0; Individual < Population; ++Individual)
      Next += samplePoisson(Source, OffspringMean);
    Population = Next < PopulationCap ? Next : PopulationCap;
    Out[Generation * 2 + 0] = double(Population);
    Out[Generation * 2 + 1] = Population == 0 ? 1.0 : 0.0;
    if (Population == 0) {
      // Extinct: all later generations are empty too.
      for (int Rest = Generation + 1; Rest < Generations; ++Rest) {
        Out[Rest * 2 + 0] = 0.0;
        Out[Rest * 2 + 1] = 1.0;
      }
      return;
    }
  }
}

/// Smallest root of q = exp(m(q-1)) by fixed-point iteration.
double ultimateExtinctionProbability(double Mean) {
  double Q = 0.0;
  for (int Iteration = 0; Iteration < 200; ++Iteration)
    Q = std::exp(Mean * (Q - 1.0));
  return Q;
}

} // namespace

int main(int Argc, char **Argv) {
  RunConfig Config;
  Config.Rows = Generations;
  Config.Columns = 2;
  Config.ProcessorCount = Argc > 1 ? std::atoi(Argv[1]) : 4;
  Config.MaxSampleVolume = Argc > 2 ? std::atoll(Argv[2]) : 20000;
  Config.AveragePeriodNanos = 50'000'000;

  std::printf("Galton-Watson process, Poisson(%.1f) offspring, %d "
              "generations, %lld realizations on %d processors...\n",
              OffspringMean, Generations,
              (long long)Config.MaxSampleVolume, Config.ProcessorCount);

  Result<RunReport> Outcome = runSimulation(branchingRealization, Config);
  if (!Outcome) {
    std::fprintf(stderr, "population: %s\n",
                 Outcome.status().toString().c_str());
    return 1;
  }

  ResultsStore Store(Config.WorkDir);
  const std::vector<double> Means =
      Store.readMeans(Generations, 2).value();

  std::printf("\n  %-4s %-12s %-12s %-12s\n", "gen", "E[Z] est",
              "E[Z] exact", "P(extinct)");
  for (int Generation : {0, 1, 3, 5, 7, 9, 11}) {
    std::printf("  %-4d %-12.3f %-12.3f %-12.4f\n", Generation + 1,
                Means[size_t(Generation) * 2 + 0],
                std::pow(OffspringMean, Generation + 1),
                Means[size_t(Generation) * 2 + 1]);
  }
  std::printf("\n  ultimate extinction probability (theory): %.4f\n",
              ultimateExtinctionProbability(OffspringMean));
  std::printf("  volume = %lld, elapsed = %.2f s\n",
              (long long)Outcome.value().TotalSampleVolume,
              Outcome.value().ElapsedSeconds);
  return 0;
}
